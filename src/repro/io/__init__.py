"""Serialisation: networks to/from JSON, experiment results to files."""

from repro.io.network_json import load_network, save_network
from repro.io.results import tables_to_csv, tables_to_json, tables_to_markdown
from repro.io.trace_json import trace_to_json

__all__ = [
    "save_network",
    "load_network",
    "tables_to_csv",
    "tables_to_json",
    "tables_to_markdown",
    "trace_to_json",
]
