"""Serialisation: networks to/from JSON, experiment results to files."""

from repro.io.network_json import load_network, save_network
from repro.io.results import (
    fault_sweep_from_json,
    fault_sweep_to_json,
    robustness_from_json,
    robustness_to_json,
    tables_to_csv,
    tables_to_json,
    tables_to_markdown,
)
from repro.io.trace_json import trace_to_json

__all__ = [
    "save_network",
    "load_network",
    "fault_sweep_from_json",
    "fault_sweep_to_json",
    "robustness_from_json",
    "robustness_to_json",
    "tables_to_csv",
    "tables_to_json",
    "tables_to_markdown",
    "trace_to_json",
]
