"""Export simulator transmission traces as JSON.

Turns a :class:`~repro.sim.trace.TraceRecorder` into a machine-readable
document (one record per transmission with the message type and payload
summary) so external tools — plotters, protocol analysers, diff tools —
can consume the exact on-air history of a run.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Union

from repro.sim.trace import TraceRecorder

PathLike = Union[str, Path]


def _jsonable(value):
    """Convert message payload values to JSON-encodable forms."""
    if isinstance(value, frozenset):
        return sorted(value, key=repr)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    return value


def trace_to_json(trace: TraceRecorder, path: PathLike) -> int:
    """Write ``trace`` to ``path``; returns the number of records written."""
    records = []
    for entry in trace.entries:
        payload = {
            k: _jsonable(v)
            for k, v in dataclasses.asdict(entry.message).items()
        }
        records.append(
            {
                "time": entry.time,
                "sender": entry.sender,
                "type": type(entry.message).__name__,
                "size": entry.message.size(),
                "payload": payload,
            }
        )
    doc = {
        "format": "repro-trace",
        "version": 1,
        "total_messages": trace.total_messages,
        "total_volume": trace.total_volume,
        "transmissions": records,
    }
    Path(path).write_text(json.dumps(doc, indent=2))
    return len(records)
