"""Experiment results as CSV / JSON files.

JSON documents that accumulate or gate history (the perf trajectory, sweep
snapshots) are written atomically — serialised to a temp file in the target
directory, fsync'd, then ``os.replace``d — so a crash mid-write can never
truncate a previously valid file.
"""

from __future__ import annotations

import csv
import json
import os
import tempfile
from pathlib import Path
from typing import Iterable, List, Union

from repro.errors import ConfigurationError
from repro.metrics.series import SeriesTable
from repro.workload.faultsweep import FaultSweepPoint
from repro.workload.robustness import RobustnessPoint

PathLike = Union[str, Path]

_FIELDS = ["table", "series", "n", "mean", "half_width", "confidence", "samples"]


def _atomic_write_text(path: PathLike, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp file + replace.

    ``os.replace`` is atomic on POSIX within one filesystem, so readers
    (and crash recovery) only ever see the old or the new complete file.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent) or ".",
                               prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def tables_to_csv(tables: Iterable[SeriesTable], path: PathLike) -> int:
    """Write the flattened records of ``tables`` as CSV.

    Returns:
        The number of data rows written.
    """
    records: List[dict] = []
    for table in tables:
        records.extend(table.to_records())
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_FIELDS)
        writer.writeheader()
        for rec in records:
            writer.writerow({k: rec.get(k, "") for k in _FIELDS})
    return len(records)


def tables_to_json(tables: Iterable[SeriesTable], path: PathLike) -> int:
    """Write the flattened records of ``tables`` as a JSON array.

    Returns:
        The number of records written.
    """
    records: List[dict] = []
    for table in tables:
        records.extend(table.to_records())
    _atomic_write_text(path, json.dumps(records, indent=2))
    return len(records)


ROBUSTNESS_FORMAT = "repro-robustness-sweep"
FAULT_SWEEP_FORMAT = "repro-fault-sweep"
_SWEEP_VERSION = 1


def _load_sweep_document(path: PathLike, fmt: str) -> List[dict]:
    try:
        doc = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path} is not valid JSON: {exc}") from None
    if not isinstance(doc, dict) or doc.get("format") != fmt:
        raise ConfigurationError(f"{path} is not a {fmt} document")
    if doc.get("version") != _SWEEP_VERSION:
        raise ConfigurationError(
            f"unsupported {fmt} version {doc.get('version')!r}"
        )
    points = doc.get("points")
    if not isinstance(points, list):
        raise ConfigurationError(f"{path}: malformed points array")
    return points


def robustness_to_json(points: Iterable[RobustnessPoint],
                       path: PathLike) -> int:
    """Save a robustness sweep; inverse of :func:`robustness_from_json`.

    Returns:
        The number of points written.
    """
    records = [
        {"loss_probability": p.loss_probability,
         "delivery": dict(p.delivery), "forwards": dict(p.forwards)}
        for p in points
    ]
    _atomic_write_text(path, json.dumps(
        {"format": ROBUSTNESS_FORMAT, "version": _SWEEP_VERSION,
         "points": records},
        indent=2,
    ))
    return len(records)


def robustness_from_json(path: PathLike) -> List[RobustnessPoint]:
    """Load a robustness sweep saved by :func:`robustness_to_json`."""
    points: List[RobustnessPoint] = []
    for rec in _load_sweep_document(path, ROBUSTNESS_FORMAT):
        try:
            points.append(RobustnessPoint(
                loss_probability=float(rec["loss_probability"]),
                delivery={str(k): float(v)
                          for k, v in rec["delivery"].items()},
                forwards={str(k): float(v)
                          for k, v in rec["forwards"].items()},
            ))
        except (KeyError, TypeError, ValueError, AttributeError):
            raise ConfigurationError(
                f"{path}: malformed robustness point {rec!r}"
            ) from None
    return points


def fault_sweep_to_json(points: Iterable[FaultSweepPoint],
                        path: PathLike) -> int:
    """Save a fault sweep; inverse of :func:`fault_sweep_from_json`.

    Returns:
        The number of points written.
    """
    records = [
        {"loss_probability": p.loss_probability,
         "delivery": dict(p.delivery), "overhead": dict(p.overhead),
         "latency": dict(p.latency), "trials": p.trials}
        for p in points
    ]
    _atomic_write_text(path, json.dumps(
        {"format": FAULT_SWEEP_FORMAT, "version": _SWEEP_VERSION,
         "points": records},
        indent=2,
    ))
    return len(records)


def fault_sweep_from_json(path: PathLike) -> List[FaultSweepPoint]:
    """Load a fault sweep saved by :func:`fault_sweep_to_json`."""
    points: List[FaultSweepPoint] = []
    for rec in _load_sweep_document(path, FAULT_SWEEP_FORMAT):
        try:
            points.append(FaultSweepPoint(
                loss_probability=float(rec["loss_probability"]),
                delivery={str(k): float(v)
                          for k, v in rec["delivery"].items()},
                overhead={str(k): float(v)
                          for k, v in rec["overhead"].items()},
                latency={str(k): float(v)
                         for k, v in rec["latency"].items()},
                trials=int(rec["trials"]),
            ))
        except (KeyError, TypeError, ValueError, AttributeError):
            raise ConfigurationError(
                f"{path}: malformed fault sweep point {rec!r}"
            ) from None
    return points


PERF_TRAJECTORY_FORMAT = "repro-perf-trajectory"


def load_perf_trajectory(path: PathLike) -> List[dict]:
    """The recorded benchmark points of ``path``, oldest first.

    A missing file is an empty trajectory (the first benchmark run of a
    fresh checkout); a malformed one raises
    :class:`~repro.errors.ConfigurationError` — CI must not silently reset
    history.
    """
    if not Path(path).exists():
        return []
    points = _load_sweep_document(path, PERF_TRAJECTORY_FORMAT)
    for rec in points:
        if not isinstance(rec, dict) or not isinstance(rec.get("label"), str):
            raise ConfigurationError(
                f"{path}: malformed trajectory point {rec!r}"
            )
    return points


def append_perf_point(path: PathLike, point: dict) -> int:
    """Append one benchmark measurement to the trajectory at ``path``.

    ``point`` must carry a string ``"label"`` identifying the benchmark
    configuration (comparisons only ever look at points with the same
    label); everything else is the benchmark's own business.

    Returns:
        The trajectory length after appending.
    """
    if not isinstance(point.get("label"), str):
        raise ConfigurationError(
            f"a trajectory point needs a string 'label', got {point!r}"
        )
    points = load_perf_trajectory(path)
    points.append(point)
    _atomic_write_text(path, json.dumps(
        {"format": PERF_TRAJECTORY_FORMAT, "version": _SWEEP_VERSION,
         "points": points},
        indent=2,
    ) + "\n")
    return len(points)


def latest_perf_point(path: PathLike, label: str) -> Union[dict, None]:
    """The most recent trajectory point with ``label``, or ``None``.

    The comparison anchor for regression gates: benchmarks compare their
    fresh measurement against this before appending it.
    """
    for rec in reversed(load_perf_trajectory(path)):
        if rec.get("label") == label:
            return rec
    return None


def tables_to_markdown(tables: Iterable[SeriesTable],
                       path: PathLike) -> int:
    """Write each table as a GitHub-flavoured markdown table.

    Returns:
        The number of tables written.
    """
    blocks: List[str] = []
    count = 0
    for table in tables:
        count += 1
        xs = sorted({x for s in table.series for x in s.xs()})
        header = [table.x_label] + [s.label for s in table.series]
        lines = [f"### {table.title}", ""]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "|".join("---" for _ in header) + "|")
        for x in xs:
            row = [f"{x:g}"]
            for s_ in table.series:
                point = next((p for p in s_.points if p.x == x), None)
                row.append("-" if point is None else f"{point.mean:.2f}")
            lines.append("| " + " | ".join(row) + " |")
        blocks.append("\n".join(lines))
    Path(path).write_text("\n\n".join(blocks) + "\n")
    return count
