"""Experiment results as CSV / JSON files."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.metrics.series import SeriesTable

PathLike = Union[str, Path]

_FIELDS = ["table", "series", "n", "mean", "half_width", "confidence", "samples"]


def tables_to_csv(tables: Iterable[SeriesTable], path: PathLike) -> int:
    """Write the flattened records of ``tables`` as CSV.

    Returns:
        The number of data rows written.
    """
    records: List[dict] = []
    for table in tables:
        records.extend(table.to_records())
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_FIELDS)
        writer.writeheader()
        for rec in records:
            writer.writerow({k: rec.get(k, "") for k in _FIELDS})
    return len(records)


def tables_to_json(tables: Iterable[SeriesTable], path: PathLike) -> int:
    """Write the flattened records of ``tables`` as a JSON array.

    Returns:
        The number of records written.
    """
    records: List[dict] = []
    for table in tables:
        records.extend(table.to_records())
    Path(path).write_text(json.dumps(records, indent=2))
    return len(records)


def tables_to_markdown(tables: Iterable[SeriesTable],
                       path: PathLike) -> int:
    """Write each table as a GitHub-flavoured markdown table.

    Returns:
        The number of tables written.
    """
    blocks: List[str] = []
    count = 0
    for table in tables:
        count += 1
        xs = sorted({x for s in table.series for x in s.xs()})
        header = [table.x_label] + [s.label for s in table.series]
        lines = [f"### {table.title}", ""]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "|".join("---" for _ in header) + "|")
        for x in xs:
            row = [f"{x:g}"]
            for s_ in table.series:
                point = next((p for p in s_.points if p.x == x), None)
                row.append("-" if point is None else f"{point.mean:.2f}")
            lines.append("| " + " | ".join(row) + " |")
        blocks.append("\n".join(lines))
    Path(path).write_text("\n\n".join(blocks) + "\n")
    return count
