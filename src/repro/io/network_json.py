"""Network snapshots as JSON documents.

The format is versioned and self-contained (positions, radius, area), so a
saved sample can be re-analysed later or shared as a repro case.  The graph
is not stored — it is recomputed from positions and radius, which keeps the
file canonical (an inconsistent adjacency cannot be expressed).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import ConfigurationError
from repro.geometry.area import Area
from repro.graph.network import Network

FORMAT_VERSION = 1

PathLike = Union[str, Path]


def save_network(network: Network, path: PathLike) -> None:
    """Write ``network`` to ``path`` as JSON."""
    doc = {
        "format": "repro-network",
        "version": FORMAT_VERSION,
        "radius": network.radius,
        "area": {"width": network.area.width, "height": network.area.height},
        "nodes": [
            {"id": v, "x": x, "y": y}
            for v, (x, y) in sorted(network.positions.items())
        ],
    }
    Path(path).write_text(json.dumps(doc, indent=2))


def load_network(path: PathLike) -> Network:
    """Read a network previously written by :func:`save_network`.

    Raises:
        ConfigurationError: on an unrecognised or malformed document.
    """
    try:
        doc = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path}: not valid JSON: {exc}") from exc
    if doc.get("format") != "repro-network":
        raise ConfigurationError(f"{path}: not a repro network document")
    if doc.get("version") != FORMAT_VERSION:
        raise ConfigurationError(
            f"{path}: unsupported version {doc.get('version')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    try:
        area = Area(float(doc["area"]["width"]), float(doc["area"]["height"]))
        nodes = doc["nodes"]
        ids = [int(rec["id"]) for rec in nodes]
        positions = [(float(rec["x"]), float(rec["y"])) for rec in nodes]
        radius = float(doc["radius"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"{path}: malformed network document: {exc}") from exc
    import numpy as np

    return Network.from_positions(
        np.array(positions, dtype=float), radius, ids=ids, area=area
    )
