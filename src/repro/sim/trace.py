"""Transmission traces and message statistics.

Every transmission through the medium is recorded here.  The per-type counts
and volumes are what the message-complexity benches fit against ``n``, and
``render()`` produces the human-readable protocol trace used by the
``distributed_trace`` example (mirroring the paper's Section 3 walkthrough).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.sim.messages import Message
from repro.types import NodeId


@dataclass(frozen=True, slots=True)
class TraceEntry:
    """One transmission: when, who, what."""

    time: float
    sender: NodeId
    message: Message


@dataclass
class TraceRecorder:
    """Accumulates transmissions and derives statistics."""

    entries: List[TraceEntry] = field(default_factory=list)

    def record(self, time: float, sender: NodeId, message: Message) -> None:
        """Append one transmission."""
        self.entries.append(TraceEntry(time=time, sender=sender, message=message))

    @property
    def total_messages(self) -> int:
        """Number of transmissions (the O(n) claim's unit)."""
        return len(self.entries)

    @property
    def total_volume(self) -> int:
        """Sum of message sizes in id units."""
        return sum(e.message.size() for e in self.entries)

    def count_by_type(self) -> Dict[str, int]:
        """Transmission counts keyed by message class name."""
        return dict(Counter(type(e.message).__name__ for e in self.entries))

    def volume_by_type(self) -> Dict[str, int]:
        """Message volume keyed by message class name."""
        volumes: Counter[str] = Counter()
        for e in self.entries:
            volumes[type(e.message).__name__] += e.message.size()
        return dict(volumes)

    def messages_from(self, sender: NodeId) -> List[TraceEntry]:
        """All transmissions by ``sender`` in order."""
        return [e for e in self.entries if e.sender == sender]

    def completion_time(self) -> float:
        """Time of the last transmission (0.0 for an empty trace)."""
        return self.entries[-1].time if self.entries else 0.0

    def render(self, limit: int | None = None) -> str:
        """Human-readable trace listing, optionally truncated to ``limit``."""
        lines = []
        shown = self.entries if limit is None else self.entries[:limit]
        for e in shown:
            lines.append(f"t={e.time:6.1f}  node {e.sender:>4}  {e.message}")
        if limit is not None and len(self.entries) > limit:
            lines.append(f"... {len(self.entries) - limit} more transmissions")
        return "\n".join(lines)
