"""Per-host simulation nodes with typed message dispatch."""

from __future__ import annotations

from typing import Callable, Dict, Type

from repro.errors import ProtocolError
from repro.sim.medium import WirelessMedium
from repro.sim.messages import Message
from repro.types import NodeId

#: Handler signature: (node, sender, message) -> None.
Handler = Callable[["SimNode", NodeId, Message], None]


class SimNode:
    """One wireless host: a handler table plus free-form protocol state.

    Protocols attach handlers keyed by message type and keep their per-node
    state in namespaced attributes on :attr:`state` (a plain dict) so that
    independently-developed protocol phases do not trample each other.
    """

    __slots__ = ("id", "medium", "_handlers", "state")

    def __init__(self, node_id: NodeId, medium: WirelessMedium) -> None:
        self.id = node_id
        self.medium = medium
        self._handlers: Dict[Type[Message], Handler] = {}
        self.state: Dict[str, object] = {}
        medium.attach(node_id, self._deliver)

    def on(self, message_type: Type[Message], handler: Handler) -> None:
        """Register ``handler`` for ``message_type`` (one per type)."""
        if message_type in self._handlers:
            raise ProtocolError(
                f"node {self.id}: handler for {message_type.__name__} already set"
            )
        self._handlers[message_type] = handler

    def replace_handler(self, message_type: Type[Message], handler: Handler) -> None:
        """Swap the handler for ``message_type`` (protocol phase change)."""
        self._handlers[message_type] = handler

    def send(self, message: Message) -> None:
        """Broadcast ``message`` to all neighbours."""
        self.medium.transmit(self.id, message)

    def _deliver(self, receiver: NodeId, sender: NodeId, message: Message) -> None:
        if receiver != self.id:  # pragma: no cover - wiring error guard
            raise ProtocolError(
                f"node {self.id} received a delivery addressed to {receiver}"
            )
        handler = self._handlers.get(type(message))
        if handler is not None:
            handler(self, sender, message)
        # Messages with no registered handler are silently ignored: a node
        # not participating in a phase simply does not react.
