"""The simulation engine: a run loop over the event queue."""

from __future__ import annotations

from typing import Optional

from repro.errors import SimulationError
from repro.sim.events import EventQueue, Priority


class Simulator:
    """Deterministic discrete-event simulator.

    Args:
        max_events: Safety valve — a single :meth:`run` call is allowed at
            most this many events; the guard raises *before* executing the
            first event past the budget, catching accidental infinite
            message loops in protocol code (the paper's protocols are all
            O(n) messages).
    """

    def __init__(self, max_events: int = 5_000_000) -> None:
        self._queue = EventQueue()
        self._now: float = 0.0
        self._processed = 0
        self.max_events = max_events

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events executed since construction."""
        return self._processed

    @property
    def pending(self) -> int:
        """Events still queued."""
        return len(self._queue)

    def schedule(self, delay: float, action, priority: Priority = ()) -> None:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._queue.push(self._now + delay, action, priority)

    def run(self, until: Optional[float] = None) -> int:
        """Process events (optionally only up to time ``until``).

        The ``max_events`` guard is applied **per call** and **before**
        executing the offending event: a call never processes more than
        ``max_events`` events, and the event that would exceed the budget
        stays queued (previously the guard fired only after executing event
        ``max_events + 1``, and counted events from all previous calls).

        Returns:
            Number of events processed by this call.

        Raises:
            SimulationError: when this call would process more than
                ``max_events`` events.
        """
        start = self._processed
        while self._queue:
            next_time = self._queue.peek_time()
            assert next_time is not None
            if until is not None and next_time > until:
                break
            if self._processed - start >= self.max_events:
                raise SimulationError(
                    f"exceeded {self.max_events} events in one run — "
                    f"runaway protocol?"
                )
            event = self._queue.pop()
            self._now = event.time
            event.action()
            self._processed += 1
        if until is not None and self._now < until:
            self._now = until
        return self._processed - start

    def run_to_quiescence(self) -> int:
        """Run until no events remain (phase completion)."""
        return self.run(until=None)
