"""The simulation engine: a run loop over the event queue."""

from __future__ import annotations

from typing import Optional

from repro.errors import SimulationError
from repro.sim.events import EventQueue, Priority


class Simulator:
    """Deterministic discrete-event simulator.

    Args:
        max_events: Safety valve — a run processing more events than this
            raises, catching accidental infinite message loops in protocol
            code (the paper's protocols are all O(n) messages).
    """

    def __init__(self, max_events: int = 5_000_000) -> None:
        self._queue = EventQueue()
        self._now: float = 0.0
        self._processed = 0
        self.max_events = max_events

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events executed since construction."""
        return self._processed

    @property
    def pending(self) -> int:
        """Events still queued."""
        return len(self._queue)

    def schedule(self, delay: float, action, priority: Priority = ()) -> None:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._queue.push(self._now + delay, action, priority)

    def run(self, until: Optional[float] = None) -> int:
        """Process events (optionally only up to time ``until``).

        Returns:
            Number of events processed by this call.
        """
        start = self._processed
        while self._queue:
            next_time = self._queue.peek_time()
            assert next_time is not None
            if until is not None and next_time > until:
                break
            event = self._queue.pop()
            self._now = event.time
            event.action()
            self._processed += 1
            if self._processed > self.max_events:
                raise SimulationError(
                    f"exceeded {self.max_events} events — runaway protocol?"
                )
        if until is not None and self._now < until:
            self._now = until
        return self._processed - start

    def run_to_quiescence(self) -> int:
        """Run until no events remain (phase completion)."""
        return self.run(until=None)
