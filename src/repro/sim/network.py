"""Assembly of a simulated network from a topology."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, Optional

from repro.graph.adjacency import Graph

if TYPE_CHECKING:  # pragma: no cover - layering: channel imports stay lazy
    from repro.channel.model import ChannelModel
from repro.rng import RngLike
from repro.sim.engine import Simulator
from repro.sim.medium import CollisionMedium, WirelessMedium
from repro.sim.node import SimNode
from repro.sim.trace import TraceRecorder
from repro.types import NodeId


class SimNetwork:
    """A simulator, a medium over ``graph``, and one :class:`SimNode` per host.

    Args:
        graph: The network topology.
        latency: Medium transmission delay.
        loss_probability: Per-delivery loss for robustness experiments.
        rng: Seed or generator (losses only).
        collisions: Use a :class:`~repro.sim.medium.CollisionMedium`, where
            packets arriving at a host in the same slot destroy each other
            (broadcast-storm experiments).
        channel: Optional :class:`~repro.channel.model.ChannelModel` —
            SINR/interference reception and MAC contention (mutually
            exclusive with ``collisions``; see docs/channel.md).
    """

    def __init__(
        self,
        graph: Graph,
        *,
        latency: float = 1.0,
        loss_probability: float = 0.0,
        rng: RngLike = None,
        trace: Optional[TraceRecorder] = None,
        collisions: bool = False,
        channel: Optional["ChannelModel"] = None,
    ) -> None:
        self.graph = graph
        self.sim = Simulator()
        medium_cls = CollisionMedium if collisions else WirelessMedium
        self.medium = medium_cls(
            self.sim,
            graph,
            latency=latency,
            loss_probability=loss_probability,
            rng=rng,
            trace=trace,
            channel=channel,
        )
        self.nodes: Dict[NodeId, SimNode] = {
            v: SimNode(v, self.medium) for v in graph.nodes()
        }

    @property
    def trace(self) -> TraceRecorder:
        """The shared transmission trace."""
        return self.medium.trace

    def __iter__(self) -> Iterator[SimNode]:
        for v in sorted(self.nodes):
            yield self.nodes[v]

    def node(self, node_id: NodeId) -> SimNode:
        """Look up a node by id."""
        return self.nodes[node_id]

    def run_phase(self) -> int:
        """Run the simulator to quiescence (one protocol phase)."""
        return self.sim.run_to_quiescence()
