"""Event queue primitives.

Events are ordered by ``(time, priority, seq)``.  ``priority`` is an
arbitrary comparable tuple — the medium uses ``(sender, receiver)`` so that
simultaneous deliveries replay in the same order as the centralised
algorithms' tie-breaking — and ``seq`` is a monotonically increasing tiebreak
that keeps ordering total and insertion-stable.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

from repro.errors import SimulationError

#: Priority tuples must be comparable against each other; plain int tuples.
Priority = Tuple[int, ...]


@dataclass(frozen=True, slots=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: Simulation time at which the action fires.
        priority: Secondary ordering key for same-time events.
        seq: Insertion sequence number (total-order tiebreak).
        action: Zero-argument callable executed at ``time``.
    """

    time: float
    priority: Priority
    seq: int
    action: Callable[[], None]

    @property
    def sort_key(self) -> Tuple[float, Priority, int]:
        """The total ordering key."""
        return (self.time, self.priority, self.seq)


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects."""

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: list[Tuple[Tuple[float, Priority, int], Event]] = []
        self._counter = itertools.count()

    def push(self, time: float, action: Callable[[], None],
             priority: Priority = ()) -> Event:
        """Enqueue ``action`` at ``time``; returns the created event."""
        if time < 0:
            raise SimulationError(f"cannot schedule at negative time {time}")
        event = Event(time=time, priority=priority,
                      seq=next(self._counter), action=action)
        heapq.heappush(self._heap, (event.sort_key, event))
        return event

    def pop(self) -> Event:
        """Dequeue the earliest event."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)[1]

    def peek_time(self) -> Optional[float]:
        """Time of the earliest event, or ``None`` when empty."""
        return self._heap[0][1].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
