"""Typed protocol messages.

One frozen dataclass per message of the paper's protocol suite.  ``size()``
estimates the over-the-air payload in id-sized units, letting the ablation
benches compare message *volume* (not just count) between the 2.5-hop and
3-hop coverage exchanges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Mapping, Optional, Tuple

from repro.types import NodeId


@dataclass(frozen=True, slots=True)
class Message:
    """Base class; concrete messages add their payloads."""

    origin: NodeId  #: the node whose protocol state generated the message

    def size(self) -> int:
        """Payload size in node-id units (subclasses add their fields)."""
        return 1


@dataclass(frozen=True, slots=True)
class Hello(Message):
    """Neighbour discovery beacon."""


@dataclass(frozen=True, slots=True)
class ClusterHead(Message):
    """Clusterhead declaration of the lowest-ID algorithm."""


@dataclass(frozen=True, slots=True)
class NonClusterHead(Message):
    """Membership announcement; carries the joined head."""

    head: NodeId = -1

    def size(self) -> int:
        return 2


@dataclass(frozen=True, slots=True)
class ChHop1(Message):
    """A non-clusterhead's 1-hop neighbouring clusterheads.

    ``heads`` is the CH_HOP1 content; ``own_head`` marks the sender's own
    clusterhead (the starred entry in the paper's notation).
    """

    heads: FrozenSet[NodeId] = frozenset()
    own_head: NodeId = -1

    def size(self) -> int:
        return 1 + len(self.heads)


@dataclass(frozen=True, slots=True)
class ChHop2(Message):
    """A non-clusterhead's 2-hop clusterhead entries.

    ``entries`` maps a clusterhead ``ch`` to the via-nodes ``w`` through
    which the sender reaches it (the paper's ``ch[w]`` notation).
    """

    entries: Mapping[NodeId, FrozenSet[NodeId]] = field(default_factory=dict)

    def size(self) -> int:
        return 1 + sum(1 + len(ws) for ws in self.entries.values())


@dataclass(frozen=True, slots=True)
class Gateway(Message):
    """A clusterhead's gateway designation, flooded with TTL=2.

    Attributes:
        selected: The gateway nodes this head selected.
        ttl: Remaining hops; selected nodes forward while ``ttl > 0``.
    """

    selected: FrozenSet[NodeId] = frozenset()
    ttl: int = 2

    def size(self) -> int:
        return 2 + len(self.selected)


@dataclass(frozen=True, slots=True)
class BroadcastPacket(Message):
    """The data broadcast packet with the SD-CDS piggyback.

    Attributes:
        source: The broadcast's originating node.
        head: The clusterhead whose selection produced this copy (``None``
            before the first head processed it).
        coverage: Piggybacked ``C(u)`` of that head.
        forward_set: Piggybacked ``F(u)``.
        relay_heads: Clusterheads adjacent to relays on this copy's path
            (the ``N(r)`` pruning information).
    """

    source: NodeId = -1
    head: Optional[NodeId] = None
    coverage: FrozenSet[NodeId] = frozenset()
    forward_set: FrozenSet[NodeId] = frozenset()
    relay_heads: FrozenSet[NodeId] = frozenset()

    def size(self) -> int:
        return (
            3
            + len(self.coverage)
            + len(self.forward_set)
            + len(self.relay_heads)
        )
