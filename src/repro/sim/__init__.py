"""Discrete-event simulator for the distributed protocols.

A small, deterministic event-driven kernel: an event queue ordered by
``(time, priority, sequence)``, a :class:`~repro.sim.engine.Simulator`, an
ideal unit-disk broadcast :class:`~repro.sim.medium.WirelessMedium` (the
paper assumes the MAC handles collisions), per-host
:class:`~repro.sim.node.SimNode` objects dispatching typed messages, and a
:class:`~repro.sim.trace.TraceRecorder` counting every transmission — the
evidence behind the paper's O(n) message-complexity claim.

Determinism contract: simultaneous deliveries are ordered by
``(sender id, receiver id)``, matching the tie-breaking of the centralised
algorithms, so distributed and centralised constructions are comparable
structure-for-structure.
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.medium import WirelessMedium
from repro.sim.messages import (
    BroadcastPacket,
    ChHop1,
    ChHop2,
    ClusterHead,
    Gateway,
    Hello,
    Message,
    NonClusterHead,
)
from repro.sim.network import SimNetwork
from repro.sim.node import SimNode
from repro.sim.trace import TraceRecorder

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "WirelessMedium",
    "SimNetwork",
    "SimNode",
    "TraceRecorder",
    "Message",
    "Hello",
    "ClusterHead",
    "NonClusterHead",
    "ChHop1",
    "ChHop2",
    "Gateway",
    "BroadcastPacket",
]
