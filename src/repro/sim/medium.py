"""The unit-disk wireless broadcast medium and its realism overlays.

A transmission by node ``s`` is delivered to every unit-disk neighbour of
``s`` after ``latency`` time units.  By default that reproduces the paper's
assumption of collision/contention handling below the network layer; three
*overlay* knobs degrade it without ever mutating the :class:`Graph`:

* an i.i.d. per-delivery **loss probability** (the robustness experiments'
  knob — delivery becomes a property of the protocol, not a guarantee);
* a :class:`FaultHook` (crashes, link cuts, loss/duplication windows —
  :class:`repro.faults.injector.FaultInjector` is the implementation),
  consulted at transmit and delivery time;
* a :class:`~repro.channel.model.ChannelModel` (the PHY/MAC seam, same
  overlay style): a contention MAC decides *when* a transmission airs, and
  an interference model such as :class:`~repro.channel.sinr.SinrChannel`
  decides per copy whether it survives the air.  The identity
  :class:`~repro.channel.model.IdealChannel` leaves the medium bit-exact.

Composition order is fixed and deterministic: the fault hook gates the
sender first (a crashed radio airs nothing and interferes with nothing),
the loss draw and the hook's per-link copies apply at air time, and at
delivery time the receiver's crash gate runs before the channel's capture
decision.  Simultaneous deliveries fire in ``(sender id, receiver id)``
order, matching the centralised algorithms' tie-breaking (see
:mod:`repro.sim.events`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Iterator, Optional, Tuple

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - layering: channel imports stay lazy
    from repro.channel.model import ChannelModel
from repro.graph.adjacency import Graph
from repro.rng import RngLike, ensure_rng
from repro.sim.engine import Simulator
from repro.sim.messages import Message
from repro.sim.trace import TraceRecorder
from repro.types import NodeId

#: A receiver callback: (receiver, sender, message) -> None.
DeliveryHandler = Callable[[NodeId, NodeId, Message], None]


class FaultHook:
    """Duck-typed hook consulted by the medium on every transmission.

    A hook models faults *above* the i.i.d. loss knob without mutating the
    topology.  :meth:`can_transmit` gates the sender at transmit time (a
    crashed radio emits nothing — the transmission is not even traced);
    :meth:`copies` decides, per receiver, how many copies of the packet
    cross the link (``0`` for a cut link or a loss-window drop, ``2`` for a
    duplication fault, ``1`` normally), sampled at transmit time because
    that is when the signal crosses the channel; :meth:`can_deliver` gates
    the receiver at **delivery** time — a node that crashes while a packet
    is in flight hears nothing, even though the packet was validly sent.
    :class:`repro.faults.injector.FaultInjector` is the implementation;
    this base class is the identity hook.
    """

    def can_transmit(self, sender: NodeId) -> bool:
        """Whether ``sender``'s radio is currently able to transmit."""
        return True

    def copies(self, sender: NodeId, receiver: NodeId) -> int:
        """Number of copies crossing the ``sender -> receiver`` link."""
        return 1

    def can_deliver(self, receiver: NodeId) -> bool:
        """Whether ``receiver`` is up at the moment of delivery."""
        return True


def _validate_loss(probability: float) -> None:
    if not (0.0 <= probability <= 1.0):
        raise SimulationError(
            f"loss probability must be in [0, 1], got {probability}"
        )


class WirelessMedium:
    """Broadcast channel bound to a simulator and a topology.

    Args:
        sim: The event engine.
        graph: The unit disk graph defining who hears whom.
        latency: Transmission delay in time units (the paper's unit delay).
        loss_probability: Per-delivery drop chance (0 = ideal channel).
        rng: Seed or generator (used only when losses are enabled).
        trace: Optional shared recorder; one is created when omitted.
        channel: Optional :class:`~repro.channel.model.ChannelModel`
            overlay (PHY/MAC realism); ``None`` keeps the bare medium.
    """

    def __init__(
        self,
        sim: Simulator,
        graph: Graph,
        *,
        latency: float = 1.0,
        loss_probability: float = 0.0,
        rng: RngLike = None,
        trace: Optional[TraceRecorder] = None,
        channel: Optional["ChannelModel"] = None,
    ) -> None:
        if latency <= 0:
            raise SimulationError(f"latency must be positive, got {latency}")
        _validate_loss(loss_probability)
        self.sim = sim
        self.graph = graph
        self.latency = latency
        self.loss_probability = loss_probability
        self._rng = ensure_rng(rng) if loss_probability > 0.0 else None
        self.trace = trace if trace is not None else TraceRecorder()
        self._receivers: Dict[NodeId, DeliveryHandler] = {}
        #: Optional fault filter (see :class:`FaultHook`); ``None`` = ideal.
        self.fault_hook: Optional[FaultHook] = None
        #: Optional PHY/MAC overlay; ``None`` = the bare instant medium.
        self.channel: Optional["ChannelModel"] = None
        if channel is not None:
            self.set_channel(channel)

    def set_channel(self, channel: Optional["ChannelModel"]) -> None:
        """Attach (or with ``None`` detach) the channel-model overlay.

        Binding hands the model the medium so it can read the topology,
        latency and clock; the unit-disk graph itself is never mutated, so
        detaching restores the bare medium bit-for-bit.
        """
        self.channel = channel
        if channel is not None:
            channel.bind(self)

    def update_graph(self, graph: Graph) -> None:
        """Swap the topology under a running simulation (mobility).

        In-flight deliveries already scheduled are unaffected (they were
        physically transmitted under the old topology); future
        transmissions use the new adjacency.  The node set must not change.
        """
        if set(graph.nodes()) != set(self.graph.nodes()):
            raise SimulationError(
                "update_graph must preserve the node set"
            )
        self.graph = graph

    def set_loss(self, probability: float, rng: RngLike = None) -> None:
        """Reconfigure the loss model mid-run.

        Used by robustness experiments that build structures on an ideal
        channel and then degrade the data plane.
        """
        _validate_loss(probability)
        self.loss_probability = probability
        self._rng = ensure_rng(rng) if probability > 0.0 else None

    def attach(self, node: NodeId, handler: DeliveryHandler) -> None:
        """Register the delivery handler for ``node``."""
        if node not in self.graph:
            raise SimulationError(f"cannot attach unknown node {node}")
        self._receivers[node] = handler

    def _plan_deliveries(
        self, sender: NodeId
    ) -> Iterator[Tuple[NodeId, int]]:
        """Yield ``(receiver, copies)`` in ascending receiver order.

        Applies the i.i.d. loss draw first (the signal is corrupted at the
        receiver) and then the fault hook (``copies`` may be 0 for a crashed
        receiver / cut link, or 2 under a duplication fault).  Draw order is
        fixed — sorted receivers, loss before fault — so a seeded run is
        bit-reproducible.
        """
        hook = self.fault_hook
        for receiver in sorted(self.graph.neighbours_view(sender)):
            if self._rng is not None and \
                    self._rng.random() < self.loss_probability:
                continue
            copies = 1 if hook is None else hook.copies(sender, receiver)
            if copies > 0:
                yield receiver, copies

    def transmit(self, sender: NodeId, message: Message) -> None:
        """Broadcast ``message`` from ``sender`` to all its neighbours.

        With a channel attached, its MAC may defer the on-air instant (the
        wait is scheduled through the event engine) or drop the packet
        outright; a zero delay airs inline, preserving the bare medium's
        event structure exactly.
        """
        if sender not in self.graph:
            raise SimulationError(f"unknown sender {sender}")
        if self.fault_hook is not None and \
                not self.fault_hook.can_transmit(sender):
            return  # crashed radio: nothing on the air, nothing traced
        if self.channel is None:
            self._air(sender, message)
            return
        delay = self.channel.air_delay(sender)
        if delay is None:
            return  # MAC attempt budget exhausted; counted by the MAC
        if delay <= 0.0:
            self._air(sender, message)
        else:
            self.sim.schedule(
                delay,
                lambda s=sender, m=message: self._air(s, m),
                priority=(sender,),
            )

    def _air(self, sender: NodeId, message: Message) -> None:
        """Put ``message`` on the air *now* and plan its deliveries."""
        if self.channel is not None:
            self.channel.on_air(sender, self.sim.now)
        self.trace.record(self.sim.now, sender, message)
        air_time = self.sim.now
        for receiver, copies in self._plan_deliveries(sender):
            handler = self._receivers.get(receiver)
            if handler is None:
                continue  # node exists but runs no protocol — silent sink
            for _ in range(copies):
                self.sim.schedule(
                    self.latency,
                    # bind loop variables explicitly
                    lambda h=handler, r=receiver, s=sender, m=message,
                           t=air_time: self._deliver_if_up(h, r, s, m, t),
                    priority=(sender, receiver),
                )

    def _deliver_if_up(self, handler: DeliveryHandler, receiver: NodeId,
                       sender: NodeId, message: Message,
                       air_time: float = 0.0) -> None:
        """Hand the packet over unless the receiver is down *right now*.

        Gate order is part of the determinism contract: the fault hook's
        crash gate runs before the channel's capture decision (a packet a
        dead node never hears cannot count as a collision).
        """
        if self.fault_hook is not None and \
                not self.fault_hook.can_deliver(receiver):
            return
        if self.channel is not None and \
                not self.channel.accepts(sender, receiver, air_time):
            return
        handler(receiver, sender, message)


class CollisionMedium(WirelessMedium):
    """A slotted medium where simultaneous arrivals at a receiver collide.

    Models the half of the broadcast-storm problem the paper assumes away:
    two packets arriving at a host in the same time slot destroy each other
    (neither is delivered; both count as :attr:`collisions`).  Transmissions
    are recorded at transmit time, so every arrival at a given slot is known
    before the first delivery of that slot fires (the engine processes
    events in time order and ``latency > 0``), making the collision check
    exact rather than probabilistic.

    Protocols that want to *survive* on this medium must desynchronise
    their relays — see the ``jitter_slots`` option of the distributed
    broadcast protocols.
    """

    def set_channel(self, channel: Optional["ChannelModel"]) -> None:
        """Reject channel overlays — the slot-collision rule *is* the PHY.

        :class:`CollisionMedium` and :class:`~repro.channel.model.ChannelModel`
        are alternative realism layers; compose a
        :class:`~repro.channel.sinr.SinrChannel` with a plain
        :class:`WirelessMedium` for the SINR treatment of the same effect.
        """
        if channel is not None:
            raise SimulationError(
                "CollisionMedium cannot carry a ChannelModel — attach the "
                "channel to a plain WirelessMedium instead"
            )
        super().set_channel(channel)

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: (arrival time, receiver) -> number of packets arriving together.
        self._arrivals: Dict[tuple, int] = {}
        self.collisions = 0
        #: Collision accounting can be suspended (e.g. while construction
        #: phases run under the paper's perfect-MAC assumption) and enabled
        #: only for the data plane under study.
        self.enabled = True

    def transmit(self, sender: NodeId, message: Message) -> None:
        """Broadcast; deliveries that share a (slot, receiver) collide.

        Fault semantics differ from the loss knob on purpose: a cut link
        means *no signal* at that receiver (no arrival is counted), whereas
        a lossy delivery was physically transmitted and still occupies the
        slot.  A duplicated packet counts as two arrivals — a multipath
        echo destroys itself on a collision MAC.  A crashed receiver is
        handled at delivery time (:meth:`FaultHook.can_deliver`): the
        signal reaches its antenna but nobody is listening.
        """
        if not self.enabled:
            super().transmit(sender, message)
            return
        if sender not in self.graph:
            raise SimulationError(f"unknown sender {sender}")
        hook = self.fault_hook
        if hook is not None and not hook.can_transmit(sender):
            return
        self.trace.record(self.sim.now, sender, message)
        arrival = self.sim.now + self.latency
        for receiver in sorted(self.graph.neighbours_view(sender)):
            lost = self._rng is not None and \
                self._rng.random() < self.loss_probability
            copies = 1 if hook is None else hook.copies(sender, receiver)
            if copies <= 0:
                continue  # no signal reaches this receiver at all
            key = (arrival, receiver)
            self._arrivals[key] = self._arrivals.get(key, 0) + copies
            if lost:
                continue
            handler = self._receivers.get(receiver)
            if handler is None:
                continue
            for _ in range(copies):
                self.sim.schedule(
                    self.latency,
                    lambda h=handler, r=receiver, s=sender, m=message,
                           k=key: self._deliver_or_collide(h, r, s, m, k),
                    priority=(sender, receiver),
                )

    def _deliver_or_collide(self, handler: DeliveryHandler, receiver: NodeId,
                            sender: NodeId, message: Message, key: tuple) -> None:
        if self._arrivals.get(key, 0) > 1:
            self.collisions += 1
            return
        self._deliver_if_up(handler, receiver, sender, message)
