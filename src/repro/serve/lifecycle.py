"""Request lifecycle: states, the on-disk layout, and progress streaming.

A request moves ``queued -> running -> {done | failed | cancelled}``.
Terminal transitions are **first-wins**: the deadline watchdog, a cancel,
and the runner thread may all race to finish one request, and exactly one
of them succeeds — the others observe ``False`` and write nothing.  That
single rule is what keeps a late-completing runner from overwriting a
deadline failure the client has already been told about.

On disk each request owns one directory under ``<root>/requests/<id>/``:

* ``request.json`` — the manifest, written **atomically before** the
  client hears ``accepted``.  Acceptance therefore *is* durability: a
  daemon SIGKILLed one instruction after responding still finds the
  request on restart (see :mod:`repro.serve.recovery`).
* ``journal.jsonl`` — the request's crash-safe
  :class:`~repro.exec.journal.RunJournal`; every folded trial lands here
  before it counts, so a replayed request resumes **bit-identically**.
* ``result.json`` / ``error.json`` — the terminal record, written
  atomically by whichever transition won.  Their presence is what the
  recovery scan keys on: a manifest without a terminal file is work the
  daemon still owes.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional

from repro.exec.journal import PointJournal, RunJournal
from repro.exec.supervise import ExecEvent
from repro.metrics.confidence import confidence_interval

# -- states -----------------------------------------------------------------

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: Terminal states — once entered, a request never leaves.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

# -- on-disk layout ---------------------------------------------------------

MANIFEST_FILE = "request.json"
JOURNAL_FILE = "journal.jsonl"
RESULT_FILE = "result.json"
ERROR_FILE = "error.json"

MANIFEST_FORMAT = "repro-serve-request"
MANIFEST_VERSION = 1

#: Cap on retained per-request exec events; older ones are summarised by
#: count so a retry storm cannot grow a request without bound.
MAX_EVENTS = 500


def write_json_atomic(path: Path, payload: Mapping) -> None:
    """Durably write ``payload`` as JSON via temp file + ``os.replace``.

    The file is never observable half-written: a crash leaves either the
    old content or the new, and the fsync before the rename makes the
    rename itself the commit point.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent) or ".",
                               prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True, separators=(",", ":"))
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class RequestAborted(Exception):
    """Internal control flow: the request lost its race while running.

    Raised out of the streaming journal's fold hook once a deadline or a
    cancel has already finished the request — the cheapest place to stop
    a runner between waves without a cooperative hook in the trial loop.
    Never crosses the service boundary.
    """


class _PointProgress:
    """Running per-metric samples of one experiment point."""

    __slots__ = ("count", "values")

    def __init__(self) -> None:
        self.count = 0
        self.values: Dict[str, List[float]] = {}

    def fold(self, values: Mapping[str, float]) -> None:
        self.count += 1
        for label, value in values.items():
            self.values.setdefault(str(label), []).append(float(value))

    def snapshot(self, confidence: float = 0.99) -> dict:
        estimates = {}
        for label, vals in self.values.items():
            ci = confidence_interval(vals, confidence)
            estimates[label] = {
                "mean": ci.mean, "half_width": ci.half_width,
                "samples": ci.samples,
            }
        return {"trials": self.count, "estimates": estimates}


class ServeRequest:
    """One accepted request: identity, lifecycle state, streamed progress.

    Thread-safe: the executor, the deadline watchdog, cancel calls and any
    number of streaming connections all observe one condition-guarded
    ``version`` counter that bumps on every state or progress change, so
    streamers coalesce naturally (they read the latest snapshot, not a
    backlog of events).
    """

    def __init__(self, *, request_id: str, experiment: str, params: dict,
                 seq: int, directory: Path,
                 deadline: Optional[float] = None, urgent: bool = False,
                 recovered: bool = False) -> None:
        self.id = request_id
        self.experiment = experiment
        self.params = params
        self.seq = seq
        self.directory = Path(directory)
        self.deadline = deadline
        self.urgent = urgent
        self.recovered = recovered
        self.state = QUEUED
        self.result = None
        self.error: Optional[dict] = None
        self.events: List[ExecEvent] = []
        self._events_dropped = 0
        self.version = 0
        self._cond = threading.Condition()
        self._points: Dict[str, _PointProgress] = {}

    # -- identity ----------------------------------------------------------

    @property
    def run_key(self) -> dict:
        """What determines the trial streams — the journal's identity."""
        return {"experiment": self.experiment, "params": self.params}

    def manifest(self) -> dict:
        """The durable acceptance record (written before ``accepted``)."""
        return {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "id": self.id,
            "experiment": self.experiment,
            "params": self.params,
            "seq": self.seq,
            "deadline": self.deadline,
            "urgent": self.urgent,
        }

    # -- transitions -------------------------------------------------------

    def begin(self) -> bool:
        """``queued -> running``; ``False`` if something finished it first."""
        with self._cond:
            if self.state != QUEUED:
                return False
            self.state = RUNNING
            self._bump()
            return True

    def complete(self, result) -> bool:
        """Terminal success (first-wins)."""
        return self._finish(DONE, result=result)

    def fail(self, code: str, message: str, *, retryable: bool) -> bool:
        """Terminal failure (first-wins)."""
        return self._finish(FAILED, error={
            "code": code, "message": message, "retryable": retryable,
        })

    def cancel_terminal(self) -> bool:
        """Terminal cancellation (first-wins)."""
        from repro.serve import protocol

        return self._finish(CANCELLED, error={
            "code": protocol.CANCELLED,
            "message": "request cancelled by client",
            "retryable": False,
        })

    def _finish(self, state: str, *, result=None,
                error: Optional[dict] = None) -> bool:
        with self._cond:
            if self.state in TERMINAL_STATES:
                return False
            self.state = state
            self.result = result
            self.error = error
            self._bump()
            return True

    @property
    def terminal(self) -> bool:
        """Whether the request reached a terminal state."""
        return self.state in TERMINAL_STATES

    def abort_requested(self) -> bool:
        """Whether a still-executing runner should stop between folds."""
        return self.terminal

    # -- progress / events -------------------------------------------------

    def on_fold(self, label: str, index: int,
                values: Mapping[str, float]) -> None:
        """One folded trial of ``label`` (called by the streaming journal)."""
        del index  # folds arrive in trial order; the count is the index
        with self._cond:
            self._points.setdefault(label, _PointProgress()).fold(values)
            self._bump()

    def add_event(self, event: ExecEvent) -> None:
        """Record one supervision event (bounded; overflow is counted)."""
        with self._cond:
            if len(self.events) < MAX_EVENTS:
                self.events.append(event)
            else:
                self._events_dropped += 1
            self._bump()

    def event_summary(self) -> Dict[str, int]:
        """Event counts by kind (including any dropped past the cap)."""
        with self._cond:
            counts: Dict[str, int] = {}
            for event in self.events:
                counts[event.kind] = counts.get(event.kind, 0) + 1
            if self._events_dropped:
                counts["dropped"] = self._events_dropped
            return counts

    def progress(self) -> Dict[str, dict]:
        """Per-point incremental CI snapshot (label -> trials/estimates)."""
        with self._cond:
            return {label: p.snapshot() for label, p in self._points.items()}

    def snapshot(self) -> dict:
        """The ``status`` view of this request."""
        with self._cond:
            out = {
                "id": self.id,
                "experiment": self.experiment,
                "state": self.state,
                "version": self.version,
                "recovered": self.recovered,
                "points": {label: p.snapshot()
                           for label, p in self._points.items()},
                "events": self.event_summary_locked(),
            }
            if self.error is not None:
                out["error"] = self.error
            return out

    def event_summary_locked(self) -> Dict[str, int]:
        """:meth:`event_summary` for callers already holding the lock."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        if self._events_dropped:
            counts["dropped"] = self._events_dropped
        return counts

    # -- waiting -----------------------------------------------------------

    def _bump(self) -> None:
        self.version += 1
        self._cond.notify_all()

    def wait_change(self, seen_version: int,
                    timeout: Optional[float] = None) -> int:
        """Block until ``version`` moves past ``seen_version`` (or timeout);
        returns the current version either way."""
        with self._cond:
            if self.version == seen_version and not self.terminal:
                self._cond.wait(timeout)
            return self.version

    def wait_terminal(self, timeout: Optional[float] = None) -> bool:
        """Block until terminal; ``False`` on timeout."""
        deadline = (None if timeout is None
                    else threading.TIMEOUT_MAX if timeout < 0
                    else timeout)
        with self._cond:
            self._cond.wait_for(lambda: self.terminal, deadline)
            return self.terminal


class StreamingJournal:
    """A :class:`RunJournal` proxy that narrates folds as they happen.

    Experiment runners take the journal they always took; this wrapper
    additionally calls ``on_fold(label, index, values)`` after every
    durable append (and for every replayed record, so a resumed request's
    progress snapshot starts from its journaled prefix, not from zero)
    and raises :class:`RequestAborted` between folds once ``should_abort``
    reports the request already finished — the seam that stops a runner
    whose deadline fired without a cooperative hook inside the trial loop.
    """

    def __init__(self, inner: RunJournal,
                 on_fold: Callable[[str, int, Mapping[str, float]], None],
                 should_abort: Optional[Callable[[], bool]] = None) -> None:
        self.inner = inner
        self._on_fold = on_fold
        self._should_abort = should_abort or (lambda: False)

    def point(self, label: str) -> "_StreamingPoint":
        """The per-point view the runners hand to ``paired_trials``."""
        return _StreamingPoint(self, self.inner.point(label))

    def close(self) -> None:
        """Close the wrapped journal."""
        self.inner.close()


class _StreamingPoint:
    """One point's :class:`PointJournal` with fold narration attached."""

    def __init__(self, stream: StreamingJournal,
                 inner: PointJournal) -> None:
        self._stream = stream
        self._inner = inner
        self.label = inner.label

    def replay_prefix(self) -> List[Mapping[str, float]]:
        values = self._inner.replay_prefix()
        for index, vals in enumerate(values):
            self._stream._on_fold(self.label, index, vals)
        return values

    def record(self, index: int, values: Mapping[str, float]) -> None:
        if self._stream._should_abort():
            raise RequestAborted(self.label)
        self._inner.record(index, values)
        self._stream._on_fold(self.label, index, values)
