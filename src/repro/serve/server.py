"""The unix-socket shell around :class:`~repro.serve.service.ServeService`.

JSON lines over ``AF_UNIX``: each connection sends one request per line
and reads one or more response frames per request.  The server is
deliberately thin — parsing, validation, backpressure and execution all
live in the protocol and service layers; this module only moves bytes
and enforces the connection-level contracts:

* an oversized line (no newline within :data:`MAX_REQUEST_BYTES`) gets a
  structured ``bad-request`` and the connection is closed (the rest of
  the line cannot be re-synchronised);
* a malformed line gets a structured error and the connection stays
  usable;
* a streamed submit receives coalesced ``update`` frames (latest
  snapshot, never a backlog) and exactly one terminal frame;
* a dying client never takes the daemon with it — broken pipes end that
  connection's thread and nothing else.
"""

from __future__ import annotations

import os
import socket
import threading
from pathlib import Path
from typing import Optional

from repro.serve import protocol
from repro.serve.lifecycle import ServeRequest
from repro.serve.protocol import MAX_REQUEST_BYTES, ServeError
from repro.serve.service import ServeService

#: Streaming poll interval: how often a streamer re-checks for progress
#: (frames are only sent when the request version actually moved).
_STREAM_TICK = 0.25


class ServeServer:
    """Accept loop + per-connection threads over one :class:`ServeService`."""

    def __init__(self, service: ServeService, socket_path) -> None:
        self.service = service
        self.socket_path = Path(socket_path)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: list = []
        self._conn_lock = threading.Lock()
        self._closing = threading.Event()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Bind the socket (replacing a stale one) and start accepting."""
        try:
            self.socket_path.unlink()
        except OSError:
            pass
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(self.socket_path))
        listener.listen(64)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True,
        )
        self._accept_thread.start()

    def shutdown(self, grace: Optional[float] = None) -> bool:
        """Graceful stop: drain the service, then tear the socket down.

        Returns:
            ``True`` if the drain finished all accepted work in time
            (``False`` leftovers stay journaled for the next start).
        """
        drained = self.service.drain(grace)
        self._closing.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        try:
            self.socket_path.unlink()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        with self._conn_lock:
            threads = list(self._conn_threads)
        for thread in threads:
            thread.join(timeout=5.0)
        self.service.stop()
        return drained

    # -- accept / dispatch -------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True,
                name="repro-serve-conn",
            )
            with self._conn_lock:
                self._conn_threads = [
                    t for t in self._conn_threads if t.is_alive()
                ]
                self._conn_threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            reader = conn.makefile("rb")
            while True:
                line = reader.readline(MAX_REQUEST_BYTES + 1)
                if not line:
                    return
                if len(line) > MAX_REQUEST_BYTES or not line.endswith(b"\n"):
                    # Either provably oversized, or EOF mid-line; neither
                    # can be framed, so answer and hang up.
                    self._send(conn, protocol.error_response(
                        protocol.BAD_REQUEST,
                        f"request line exceeds {MAX_REQUEST_BYTES} bytes",
                        retryable=False,
                    ))
                    return
                if line.strip() == b"":
                    continue
                if not self._handle_line(conn, line):
                    return
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client went away; its request (if accepted) lives on
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _handle_line(self, conn: socket.socket, line: bytes) -> bool:
        """Dispatch one request line; ``False`` ends the connection."""
        try:
            request = protocol.parse_request(line)
        except ServeError as exc:
            self._send(conn, exc.to_response())
            return True
        try:
            return self._dispatch(conn, request)
        except ServeError as exc:
            self._send(conn, exc.to_response(request.get("id")))
            return True
        except Exception as exc:  # noqa: BLE001 - no-traceback contract
            self._send(conn, protocol.error_response(
                protocol.INTERNAL, f"{type(exc).__name__}: {exc}",
                request_id=request.get("id"), retryable=False,
            ))
            return True

    def _dispatch(self, conn: socket.socket, request: dict) -> bool:
        op = request["op"]
        if op == "health":
            self._send(conn, self.service.health())
            return True
        if op == "submit":
            served = self.service.submit(request)
            self._send(conn, protocol.accepted_response(served.id))
            if request.get("stream"):
                self._stream(conn, served)
            return True
        if op == "status":
            served = self.service.get(request["id"])
            self._send(conn, {"type": "status", **served.snapshot()})
            return True
        if op == "result":
            served = self.service.get(request["id"])
            if not served.wait_terminal(request.get("timeout")):
                raise ServeError(
                    protocol.TIMEOUT,
                    f"request {served.id!r} still {served.state} after "
                    f"the wait timeout",
                )
            self._send_terminal(conn, served)
            return True
        if op == "cancel":
            served = self.service.cancel(request["id"])
            self._send(conn, {"type": "cancelled", "id": served.id,
                              "state": served.state})
            return True
        raise ServeError(protocol.BAD_REQUEST, f"unhandled op {op!r}")

    # -- streaming ---------------------------------------------------------

    def _stream(self, conn: socket.socket, request: ServeRequest) -> None:
        """Send coalesced progress frames until the request is terminal."""
        seen = -1
        while True:
            version = request.wait_change(seen, timeout=_STREAM_TICK)
            if version != seen and not request.terminal:
                seen = version
                self._send(conn, protocol.update_response(
                    request.id, state=request.state, version=version,
                    points=request.progress(),
                ))
            if request.terminal:
                self._send_terminal(conn, request)
                return

    def _send_terminal(self, conn: socket.socket,
                       request: ServeRequest) -> None:
        if request.error is not None:
            self._send(conn, protocol.error_response(
                request.error["code"], request.error["message"],
                request_id=request.id,
                retryable=request.error["retryable"],
            ))
        else:
            self._send(conn, protocol.result_response(
                request.id, result=request.result,
                events=request.event_summary(),
            ))

    @staticmethod
    def _send(conn: socket.socket, message: dict) -> None:
        conn.sendall(protocol.encode(message))
