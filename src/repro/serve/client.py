"""A small blocking client for the serve socket.

Used by the CLI (``repro serve-request``), the chaos harness and the
benchmark; it is intentionally dumb — one connection per call unless a
stream is held open — because the protocol does all the hard work.
"""

from __future__ import annotations

import json
import socket
from pathlib import Path
from typing import Iterator, Optional

from repro.serve.protocol import MAX_REQUEST_BYTES, ServeError


class ServeClient:
    """Talk JSON lines to a running serve daemon."""

    def __init__(self, socket_path, *, connect_timeout: float = 5.0) -> None:
        self.socket_path = Path(socket_path)
        self.connect_timeout = connect_timeout

    def _connect(self, timeout: Optional[float]) -> socket.socket:
        conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        conn.settimeout(self.connect_timeout)
        conn.connect(str(self.socket_path))
        conn.settimeout(timeout)
        return conn

    def request(self, payload: dict,
                timeout: Optional[float] = 60.0) -> dict:
        """Send one request, return its first response frame."""
        with self._connect(timeout) as conn:
            conn.sendall(json.dumps(payload).encode("utf-8") + b"\n")
            reader = conn.makefile("rb")
            line = reader.readline(MAX_REQUEST_BYTES + 1)
        if not line:
            raise ServeError("internal", "connection closed without response")
        return json.loads(line)

    def submit(self, experiment: str, params: Optional[dict] = None, *,
               request_id: Optional[str] = None,
               deadline: Optional[float] = None,
               urgent: bool = False,
               timeout: Optional[float] = 60.0) -> dict:
        """Submit without streaming; returns the ``accepted`` (or error)
        frame."""
        payload: dict = {"op": "submit", "experiment": experiment,
                         "params": params or {}}
        if request_id is not None:
            payload["id"] = request_id
        if deadline is not None:
            payload["deadline"] = deadline
        if urgent:
            payload["urgent"] = True
        return self.request(payload, timeout)

    def stream(self, experiment: str, params: Optional[dict] = None, *,
               request_id: Optional[str] = None,
               deadline: Optional[float] = None,
               urgent: bool = False,
               timeout: Optional[float] = None) -> Iterator[dict]:
        """Submit with streaming; yields every frame up to the terminal
        one (``result`` or ``error``), then returns."""
        payload: dict = {"op": "submit", "experiment": experiment,
                         "params": params or {}, "stream": True}
        if request_id is not None:
            payload["id"] = request_id
        if deadline is not None:
            payload["deadline"] = deadline
        if urgent:
            payload["urgent"] = True
        with self._connect(timeout) as conn:
            conn.sendall(json.dumps(payload).encode("utf-8") + b"\n")
            reader = conn.makefile("rb")
            while True:
                line = reader.readline(MAX_REQUEST_BYTES + 1)
                if not line:
                    return  # daemon died mid-stream; caller re-polls
                frame = json.loads(line)
                yield frame
                if frame.get("type") in ("result", "error"):
                    return

    def result(self, request_id: str, *,
               wait: Optional[float] = None,
               timeout: Optional[float] = None) -> dict:
        """Block for a request's terminal frame (``wait``: server-side
        bound in seconds; omit it to wait until the request finishes)."""
        payload: dict = {"op": "result", "id": request_id}
        if wait is not None:
            payload["timeout"] = wait
        return self.request(payload, timeout)

    def status(self, request_id: str,
               timeout: Optional[float] = 60.0) -> dict:
        """One ``status`` snapshot."""
        return self.request({"op": "status", "id": request_id}, timeout)

    def cancel(self, request_id: str,
               timeout: Optional[float] = 60.0) -> dict:
        """Cancel a request."""
        return self.request({"op": "cancel", "id": request_id}, timeout)

    def health(self, timeout: Optional[float] = 10.0) -> dict:
        """The daemon's health/readiness view."""
        return self.request({"op": "health"}, timeout)
