"""Restart recovery: find the requests a killed daemon still owes.

The acceptance contract (manifest written atomically *before* the client
hears ``accepted``, terminal file written atomically at completion) makes
recovery a pure directory scan: a request directory whose manifest parses
but which has neither ``result.json`` nor ``error.json`` is accepted,
unfinished work.  The scan re-queues those — in their original admission
order (the manifest ``seq``) — and each re-run resumes from its journal's
contiguous prefix, so the replayed request completes **bit-identically**
to the run the crash interrupted.

Half-written debris is treated conservatively: a directory with a torn or
unreadable manifest was never acknowledged (the atomic write means the
client cannot have seen ``accepted``), so it is skipped rather than
guessed at; a torn *journal header* is handled downstream by the service,
which restarts that request's run from nothing — still bit-identical,
because the journal prefix was empty.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional

from repro.serve.lifecycle import (
    ERROR_FILE,
    MANIFEST_FILE,
    MANIFEST_FORMAT,
    MANIFEST_VERSION,
    RESULT_FILE,
)


def load_manifest(path: Path) -> Optional[dict]:
    """Parse one ``request.json``; ``None`` for anything not a manifest.

    Unreadable, torn, or foreign files yield ``None`` — recovery must
    never crash the daemon on debris it cannot interpret.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(data, dict) or \
            data.get("format") != MANIFEST_FORMAT or \
            data.get("version") != MANIFEST_VERSION:
        return None
    if not isinstance(data.get("id"), str) or \
            not isinstance(data.get("experiment"), str) or \
            not isinstance(data.get("params"), dict):
        return None
    return data


def scan_incomplete(requests_dir: Path) -> List[dict]:
    """Manifests of accepted-but-unfinished requests, in admission order.

    Args:
        requests_dir: The ``<root>/requests`` directory.

    Returns:
        Parsed manifests sorted by their admission ``seq`` (ties broken
        by id for determinism); empty when the directory does not exist.
    """
    requests_dir = Path(requests_dir)
    if not requests_dir.is_dir():
        return []
    pending: List[dict] = []
    for entry in sorted(requests_dir.iterdir()):
        if not entry.is_dir():
            continue
        if (entry / RESULT_FILE).exists() or (entry / ERROR_FILE).exists():
            continue  # finished before the crash
        manifest = load_manifest(entry / MANIFEST_FILE)
        if manifest is None:
            continue  # never acknowledged; not owed
        if manifest["id"] != entry.name:
            continue  # moved/renamed debris — identity no longer trustworthy
        pending.append(manifest)
    pending.sort(key=lambda m: (m.get("seq", 0), m["id"]))
    return pending


def max_seq(requests_dir: Path) -> int:
    """The largest admission ``seq`` on disk (0 for an empty root).

    The service resumes its admission counter past this so recovered and
    new requests never collide on ordering.
    """
    requests_dir = Path(requests_dir)
    if not requests_dir.is_dir():
        return 0
    best = 0
    for entry in requests_dir.iterdir():
        if not entry.is_dir():
            continue
        manifest = load_manifest(entry / MANIFEST_FILE)
        if manifest is not None and isinstance(manifest.get("seq"), int):
            best = max(best, manifest["seq"])
    return best
