"""The serve engine: admission, execution, deadlines, recovery, drain.

:class:`ServeService` is the transport-free core of the daemon (the unix
socket in :mod:`repro.serve.server` is a thin shell over it, and the
tests drive it directly).  The robustness rules, in one place:

* **Admission is explicit backpressure.**  The queue is bounded twice:
  normal requests shed with a retryable ``overloaded`` error once depth
  reaches the *watermark*, urgent ones only at the hard *queue limit* —
  load shedding that keeps headroom for operator traffic instead of
  buffering unboundedly and falling over later.
* **Acceptance is durable.**  The request manifest is written atomically
  *before* ``submit`` returns; from that moment a SIGKILLed daemon owes
  the request and the restart recovery scan will re-queue and finish it
  (bit-identically, by resuming its journal's contiguous prefix).
* **Execution is supervised per request.**  Every request gets a fresh
  :class:`~repro.exec.supervise.SupervisedBackend` over the *shared* warm
  pool (``owns_inner=False``): crashes/hangs retry with backoff, the
  broken pool is abandoned and rebuilt lazily, and execution degrades
  process → thread → serial — while the supervision event stream lands on
  the request for clients to inspect.
* **Deadlines are enforced, not advisory.**  The executor joins the
  runner thread with the request deadline; on expiry the request fails
  first (first-wins), the shared pool is abandoned to unwedge a stuck
  chunk, and the late runner's eventual completion loses the race.  A
  failed-by-deadline request is ``retryable``: resubmitting the same id
  reuses its journaled prefix.
* **Journal failures are classified.**  A full disk (``ENOSPC`` and kin)
  fails the request with retryable ``journal-unavailable`` — the daemon
  stays up and keeps serving what it still can.
* **Drain is graceful.**  ``drain()`` stops admission (``draining``
  rejections) and waits for accepted work; whatever the grace period
  does not cover stays journaled for the next start to recover.
"""

from __future__ import annotations

import errno
import threading
import uuid
from collections import deque
from pathlib import Path
from typing import Deque, Dict, Mapping, Optional

from repro.errors import (
    ChunkRetryExhaustedError,
    ConfigurationError,
    JournalError,
)
from repro.exec.backends import ExecutionBackend, as_backend
from repro.exec.journal import RunJournal
from repro.exec.supervise import SupervisedBackend
from repro.serve import protocol
from repro.serve.lifecycle import (
    ERROR_FILE,
    JOURNAL_FILE,
    MANIFEST_FILE,
    RESULT_FILE,
    DONE,
    RequestAborted,
    ServeRequest,
    StreamingJournal,
    write_json_atomic,
)
from repro.serve.protocol import ServeError
from repro.serve.recovery import max_seq, scan_incomplete
from repro.workload.serve_adapters import RunContext, get_adapter

#: Errnos that mean "the journal disk is the problem, not the request".
_JOURNAL_ERRNOS = frozenset({
    errno.ENOSPC, errno.EROFS, errno.EDQUOT, errno.EACCES, errno.EPERM,
})


class ServeService:
    """The experiment service core; see the module docstring.

    Args:
        root: Durable state directory (request manifests + journals).
        backend: Warm-pool backend name or instance shared across
            requests; requests supervise it without owning it.
        workers: Worker count for a name-specified backend.
        queue_limit: Hard admission bound (urgent requests shed here).
        watermark: Depth at which normal requests start shedding
            (default: half the limit, at least 1).
        retries: Supervised retry budget per wave chunk.
        chunk_timeout: Supervised per-chunk deadline in seconds.
        default_deadline: Deadline applied to requests that specify none
            (``None``: unbounded).
        abandon_grace: Seconds to wait for a runner after abandoning the
            pool on deadline expiry before leaking the thread.
    """

    def __init__(
        self,
        root,
        *,
        backend="serial",
        workers: int = 1,
        queue_limit: int = 16,
        watermark: Optional[int] = None,
        retries: int = 2,
        chunk_timeout: Optional[float] = None,
        default_deadline: Optional[float] = None,
        abandon_grace: float = 5.0,
    ) -> None:
        if queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be >= 1, got {queue_limit}"
            )
        self.root = Path(root)
        self.requests_dir = self.root / "requests"
        self.queue_limit = queue_limit
        self.watermark = (max(1, queue_limit // 2) if watermark is None
                          else watermark)
        if not (1 <= self.watermark <= queue_limit):
            raise ConfigurationError(
                f"watermark must be in [1, queue_limit], got "
                f"{self.watermark}"
            )
        self.workers = workers
        self.retries = retries
        self.chunk_timeout = chunk_timeout
        self.default_deadline = default_deadline
        self.abandon_grace = abandon_grace
        self._pool: ExecutionBackend = as_backend(backend, workers)
        self._lock = threading.Condition()
        self._queue: Deque[ServeRequest] = deque()
        self._requests: Dict[str, ServeRequest] = {}
        self._draining = False
        self._stopped = False
        self._executor: Optional[threading.Thread] = None
        self._running: Optional[ServeRequest] = None
        self._seq = 0
        self.stats = {"accepted": 0, "recovered": 0, "completed": 0,
                      "failed": 0, "cancelled": 0, "shed": 0}

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> int:
        """Recover owed requests, then start the executor.

        Returns:
            Number of requests recovered from a previous incarnation.
        """
        self.requests_dir.mkdir(parents=True, exist_ok=True)
        self._seq = max_seq(self.requests_dir)
        recovered = 0
        for manifest in scan_incomplete(self.requests_dir):
            request = ServeRequest(
                request_id=manifest["id"],
                experiment=manifest["experiment"],
                params=manifest["params"],
                seq=int(manifest.get("seq", 0)),
                directory=self.requests_dir / manifest["id"],
                deadline=manifest.get("deadline"),
                urgent=bool(manifest.get("urgent", False)),
                recovered=True,
            )
            with self._lock:
                self._requests[request.id] = request
                self._queue.append(request)
            recovered += 1
        self.stats["recovered"] = recovered
        self._executor = threading.Thread(
            target=self._executor_loop, name="repro-serve-executor",
            daemon=True,
        )
        self._executor.start()
        return recovered

    def stop(self) -> None:
        """Stop the executor (whatever is queued stays journaled)."""
        with self._lock:
            self._stopped = True
            self._lock.notify_all()
        if self._executor is not None:
            self._executor.join(timeout=30.0)

    def drain(self, grace: Optional[float] = None) -> bool:
        """Stop admission and wait up to ``grace`` for accepted work.

        Returns:
            ``True`` if everything accepted finished inside the grace
            period; ``False`` means leftovers stay journaled for the next
            start to recover.
        """
        with self._lock:
            self._draining = True
            self._lock.notify_all()

        def quiesced() -> bool:
            with self._lock:
                return not self._queue and self._running is None

        deadline_event = threading.Event()
        waited = 0.0
        step = 0.05
        while not quiesced():
            if grace is not None and waited >= grace:
                return False
            deadline_event.wait(step)
            waited += step
        return True

    # -- admission ---------------------------------------------------------

    def submit(self, payload: Mapping) -> ServeRequest:
        """Admit one request (the ``submit`` op): validate, journal, queue.

        Raises:
            ServeError: ``draining``/``overloaded`` backpressure,
                ``unknown-experiment``/``bad-param`` validation,
                ``bad-request`` id conflicts, ``journal-unavailable``
                when the manifest cannot be made durable.
        """
        experiment = payload["experiment"]
        urgent = bool(payload.get("urgent", False))
        deadline = payload.get("deadline", self.default_deadline)
        adapter = get_adapter(experiment)
        params = adapter.validate(payload.get("params", {}))
        request_id = payload.get("id") or uuid.uuid4().hex[:12]

        with self._lock:
            self._check_admission(request_id, urgent)
            self._seq += 1
            seq = self._seq
        request = ServeRequest(
            request_id=request_id, experiment=experiment, params=params,
            seq=seq, directory=self.requests_dir / request_id,
            deadline=deadline, urgent=urgent,
        )
        self._prepare_directory(request)
        with self._lock:
            try:
                self._check_admission(request_id, urgent)
            except ServeError:
                # Lost a race (drain/burst) after the manifest landed:
                # withdraw it so recovery cannot resurrect an unaccepted
                # request, then reject as usual.
                (request.directory / MANIFEST_FILE).unlink(missing_ok=True)
                raise
            self._requests[request_id] = request
            self._queue.append(request)
            self.stats["accepted"] += 1
            self._lock.notify_all()
        return request

    def _check_admission(self, request_id: str, urgent: bool) -> None:
        """Backpressure + identity checks; caller holds the lock."""
        if self._stopped or self._draining:
            raise ServeError(protocol.DRAINING,
                             "service is draining; resubmit elsewhere/later")
        active = self._requests.get(request_id)
        if active is not None and not active.terminal:
            raise ServeError(
                protocol.BAD_REQUEST,
                f"request id {request_id!r} is already "
                f"{active.state}; ids are reusable only after a "
                f"terminal state", retryable=False,
            )
        depth = len(self._queue)
        if depth >= self.queue_limit:
            self.stats["shed"] += 1
            raise ServeError(
                protocol.OVERLOADED,
                f"queue full ({depth}/{self.queue_limit}); retry with "
                f"backoff",
            )
        if not urgent and depth >= self.watermark:
            self.stats["shed"] += 1
            raise ServeError(
                protocol.OVERLOADED,
                f"queue past watermark ({depth}/{self.watermark}); "
                f"shedding normal traffic (urgent bypasses up to "
                f"{self.queue_limit})",
            )

    def _prepare_directory(self, request: ServeRequest) -> None:
        """Materialise the request dir + manifest (atomically, durably).

        A resubmission of a terminal id with the same run key keeps the
        journal — the retry resumes the previous attempt's prefix
        bit-identically; a different run key under a reused id is
        refused (the journal would lie about what it holds).
        """
        directory = request.directory
        try:
            directory.mkdir(parents=True, exist_ok=True)
            manifest_path = directory / MANIFEST_FILE
            from repro.serve.recovery import load_manifest

            existing = load_manifest(manifest_path)
            if existing is not None and (
                existing.get("experiment") != request.experiment
                or existing.get("params") != request.params
            ):
                raise ServeError(
                    protocol.BAD_REQUEST,
                    f"request id {request.id!r} was previously used for a "
                    f"different run; pick a fresh id", retryable=False,
                )
            # A retry of a terminal request: clear the old verdict so the
            # directory reads as owed work again.
            (directory / RESULT_FILE).unlink(missing_ok=True)
            (directory / ERROR_FILE).unlink(missing_ok=True)
            write_json_atomic(manifest_path, request.manifest())
        except OSError as exc:
            raise ServeError(
                protocol.JOURNAL_UNAVAILABLE,
                f"cannot persist request manifest: {exc}",
            ) from exc

    # -- lookup / cancel / health -----------------------------------------

    def get(self, request_id: str) -> ServeRequest:
        """Resolve an id or raise structured ``not-found``."""
        with self._lock:
            request = self._requests.get(request_id)
        if request is None:
            raise ServeError(protocol.NOT_FOUND,
                             f"no request {request_id!r}", retryable=False)
        return request

    def cancel(self, request_id: str) -> ServeRequest:
        """Cancel a queued or running request (terminal ones are no-ops).

        A running request is finished first (first-wins) and its pool
        abandoned so a wave in flight fails fast; the runner observes the
        terminal state at the next fold and stops.
        """
        request = self.get(request_id)
        if request.cancel_terminal():
            self.stats["cancelled"] += 1
            self._write_terminal(request)
            with self._lock:
                was_running = self._running is request
            if was_running:
                self._pool.abandon()
        return request

    def health(self) -> dict:
        """The ``health`` op: liveness, readiness and load counters."""
        with self._lock:
            depth = len(self._queue)
            running = self._running.id if self._running else None
            draining = self._draining or self._stopped
        return {
            "type": "health",
            "healthz": "ok",
            "readyz": (not draining) and depth < self.watermark,
            "draining": draining,
            "queue_depth": depth,
            "watermark": self.watermark,
            "queue_limit": self.queue_limit,
            "running": running,
            "stats": dict(self.stats),
        }

    # -- execution ---------------------------------------------------------

    def _executor_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._stopped:
                    self._lock.wait(0.5)
                if self._stopped:
                    return
                request = self._queue.popleft()
                if request.terminal:  # cancelled while queued
                    self._running = None
                    continue
                self._running = request
            try:
                self._run_request(request)
            finally:
                with self._lock:
                    self._running = None
                    self._lock.notify_all()

    def _run_request(self, request: ServeRequest) -> None:
        if not request.begin():
            return
        runner = threading.Thread(
            target=self._runner, args=(request,), daemon=True,
            name=f"repro-serve-run-{request.id}",
        )
        runner.start()
        runner.join(request.deadline)
        if runner.is_alive():
            # Deadline expired with the runner still going: the request
            # fails NOW (first-wins — a late completion loses), the pool
            # is abandoned to unwedge a stuck chunk, and the journaled
            # prefix stays for a retry to resume.
            if request.fail(
                protocol.DEADLINE,
                f"request exceeded its {request.deadline:g}s deadline "
                f"(journaled progress is kept; resubmit the same id to "
                f"resume)", retryable=True,
            ):
                self.stats["failed"] += 1
                self._write_terminal(request)
            self._pool.abandon()
            runner.join(self.abandon_grace)

    def _runner(self, request: ServeRequest) -> None:
        journal = None
        supervised = SupervisedBackend(
            self._pool, owns_inner=False, retries=self.retries,
            chunk_timeout=self.chunk_timeout, on_event=request.add_event,
        )
        try:
            journal = self._open_journal(request)
            streaming = StreamingJournal(
                journal, on_fold=request.on_fold,
                should_abort=request.abort_requested,
            )
            adapter = get_adapter(request.experiment)
            result = adapter.run(request.params, RunContext(
                backend=supervised, parallel=self.workers,
                journal=streaming,
            ))
        except RequestAborted:
            return  # deadline/cancel already finished the request
        except ServeError as exc:
            self._fail(request, exc.code, str(exc),
                       retryable=exc.retryable)
        except ChunkRetryExhaustedError as exc:
            self._fail(request, protocol.EXECUTION,
                       f"execution kept failing ({exc.failure}) after "
                       f"{exc.attempts} attempts: {exc.cause!r}",
                       retryable=True)
        except JournalError as exc:
            self._fail(request, protocol.JOURNAL_UNAVAILABLE, str(exc),
                       retryable=True)
        except OSError as exc:
            retryable = exc.errno in _JOURNAL_ERRNOS
            code = (protocol.JOURNAL_UNAVAILABLE if retryable
                    else protocol.INTERNAL)
            self._fail(request, code,
                       f"{type(exc).__name__}: {exc}", retryable=retryable)
        except Exception as exc:  # noqa: BLE001 - the no-traceback contract
            self._fail(request, protocol.INTERNAL,
                       f"{type(exc).__name__}: {exc}", retryable=False)
        else:
            if request.complete(result):
                self.stats["completed"] += 1
                self._write_terminal(request)
        finally:
            supervised.close()
            if journal is not None:
                journal.close()

    def _fail(self, request: ServeRequest, code: str, message: str, *,
              retryable: bool) -> None:
        if request.fail(code, message, retryable=retryable):
            self.stats["failed"] += 1
            self._write_terminal(request)

    def _open_journal(self, request: ServeRequest) -> RunJournal:
        """Open (resuming) the request journal; torn journals start over.

        A journal whose header was torn by a crash cannot prove its run
        key, so its prefix is worthless — deleting it and starting fresh
        is still bit-identical (the prefix was empty as far as anyone can
        trust).  A *locked* journal is a real double-writer bug and is
        re-raised.
        """
        path = request.directory / JOURNAL_FILE
        try:
            return RunJournal.open(path, request.run_key,
                                   resume=path.exists())
        except JournalError as exc:
            if "writer" in str(exc):
                raise
            path.unlink(missing_ok=True)
            return RunJournal.open(path, request.run_key, resume=False)

    def _write_terminal(self, request: ServeRequest) -> None:
        """Persist the terminal verdict (atomic; failures downgrade).

        If the verdict itself cannot be written (disk full), the
        in-memory state still serves connected clients, and the next
        daemon start simply re-runs the request — bit-identical by the
        journal-resume contract, so the worst case is wasted work, never
        a wrong or lost answer.
        """
        if request.state == DONE:
            path = request.directory / RESULT_FILE
            payload = {"id": request.id, "result": request.result,
                       "events": request.event_summary()}
        else:
            path = request.directory / ERROR_FILE
            payload = {"id": request.id, "error": request.error,
                       "events": request.event_summary()}
        try:
            write_json_atomic(path, payload)
        except OSError:
            pass
