"""The serve wire protocol: JSON lines, validated before anything runs.

One request per line, one or more JSON responses per request.  Every
client-visible failure is a structured ``{"type": "error", "code": ...}``
response — a malformed payload, an unknown experiment or an out-of-range
parameter never surfaces as a traceback, and every error carries a
``retryable`` flag so clients know whether backing off and resubmitting
can help (``overloaded``, ``draining``, ``deadline``) or cannot
(``bad-request``, ``unknown-experiment``, ``bad-param``).

Requests are capped at :data:`MAX_REQUEST_BYTES`: an oversized line is
rejected (and the connection dropped — the remainder of the line cannot
be parsed as anything) before any of it is buffered into the daemon.
"""

from __future__ import annotations

import json
import math
import re
from typing import Mapping, Optional, Union

from repro.errors import ReproError

#: Hard cap on one request line (1 MiB) — nothing the daemon accepts
#: needs more, and unbounded lines are an allocation attack.
MAX_REQUEST_BYTES = 1 << 20

PROTOCOL_VERSION = 1

# -- error codes ------------------------------------------------------------

BAD_REQUEST = "bad-request"
UNKNOWN_EXPERIMENT = "unknown-experiment"
BAD_PARAM = "bad-param"
OVERLOADED = "overloaded"
DRAINING = "draining"
DEADLINE = "deadline"
CANCELLED = "cancelled"
EXECUTION = "execution"
INTERNAL = "internal"
JOURNAL_UNAVAILABLE = "journal-unavailable"
NOT_FOUND = "not-found"
TIMEOUT = "timeout"

#: Codes a client may reasonably retry (after backoff); the rest are
#: deterministic rejections that will fail identically on resubmission.
RETRYABLE_CODES = frozenset({
    OVERLOADED, DRAINING, DEADLINE, EXECUTION, JOURNAL_UNAVAILABLE, TIMEOUT,
})

#: Operations a request line may carry.
OPS = ("submit", "status", "result", "cancel", "health")

_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class ServeError(ReproError):
    """A structured, client-visible service failure.

    Attributes:
        code: One of the error-code constants above.
        retryable: Whether resubmitting (after backoff) can succeed.
            Defaults from :data:`RETRYABLE_CODES` when not given.
    """

    def __init__(self, code: str, message: str, *,
                 retryable: Optional[bool] = None) -> None:
        super().__init__(message)
        self.code = code
        self.retryable = (code in RETRYABLE_CODES if retryable is None
                          else bool(retryable))

    def to_response(self, request_id: Optional[str] = None) -> dict:
        """The wire representation of this error."""
        return error_response(self.code, str(self), request_id=request_id,
                              retryable=self.retryable)


def _require_str(obj: Mapping, key: str) -> str:
    value = obj.get(key)
    if not isinstance(value, str) or not value:
        raise ServeError(BAD_REQUEST,
                         f"request field {key!r} must be a non-empty string")
    return value


def _validate_id(value: str) -> str:
    if not _ID_PATTERN.match(value):
        raise ServeError(
            BAD_REQUEST,
            f"request id {value[:80]!r} must match [A-Za-z0-9._-]{{1,64}} "
            f"and start with an alphanumeric",
        )
    return value


def parse_request(line: Union[str, bytes]) -> dict:
    """Validate one request line into a normalised request dict.

    Raises:
        ServeError: ``bad-request`` for anything that is not a JSON object
            with a known ``op`` and well-typed fields.  Never raises a
            bare ``json.JSONDecodeError`` — the daemon's contract is that
            malformed input yields a structured error, not a traceback.
    """
    if isinstance(line, bytes):
        if len(line) > MAX_REQUEST_BYTES:
            raise ServeError(
                BAD_REQUEST,
                f"request exceeds {MAX_REQUEST_BYTES} bytes",
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ServeError(BAD_REQUEST,
                             f"request is not UTF-8: {exc}") from None
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServeError(BAD_REQUEST,
                         f"request is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ServeError(BAD_REQUEST, "request must be a JSON object")

    op = obj.get("op", "submit" if "experiment" in obj else None)
    if op not in OPS:
        raise ServeError(
            BAD_REQUEST,
            f"unknown op {op!r}; expected one of {list(OPS)} "
            f"(a submit may omit 'op' when 'experiment' is present)",
        )
    out: dict = {"op": op}

    if "id" in obj:
        out["id"] = _validate_id(_require_str(obj, "id"))
    elif op in ("status", "result", "cancel"):
        raise ServeError(BAD_REQUEST, f"op {op!r} requires an 'id'")

    if op == "submit":
        out["experiment"] = _require_str(obj, "experiment")
        params = obj.get("params", {})
        if not isinstance(params, dict):
            raise ServeError(BAD_PARAM, "'params' must be a JSON object")
        out["params"] = params
        for key in ("deadline",):
            if obj.get(key) is not None:
                value = obj[key]
                if not isinstance(value, (int, float)) or \
                        isinstance(value, bool) or \
                        not math.isfinite(value) or value <= 0:
                    raise ServeError(
                        BAD_REQUEST,
                        f"{key!r} must be a positive finite number",
                    )
                out[key] = float(value)
        for key in ("urgent", "stream"):
            if key in obj:
                if not isinstance(obj[key], bool):
                    raise ServeError(BAD_REQUEST,
                                     f"{key!r} must be a boolean")
                out[key] = obj[key]
    elif op == "result" and obj.get("timeout") is not None:
        value = obj["timeout"]
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or not math.isfinite(value) or value < 0:
            raise ServeError(BAD_REQUEST,
                             "'timeout' must be a non-negative number")
        out["timeout"] = float(value)
    return out


# -- response builders ------------------------------------------------------

def encode(message: Mapping) -> bytes:
    """One response as a JSON line (the only framing the protocol has)."""
    return (json.dumps(message, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def error_response(code: str, message: str, *,
                   request_id: Optional[str] = None,
                   retryable: Optional[bool] = None) -> dict:
    """A structured error; the only failure shape clients ever see."""
    out = {
        "type": "error",
        "code": code,
        "message": message,
        "retryable": (code in RETRYABLE_CODES if retryable is None
                      else bool(retryable)),
    }
    if request_id is not None:
        out["id"] = request_id
    return out


def accepted_response(request_id: str) -> dict:
    """Admission acknowledgement: the request is journaled and queued."""
    return {"type": "accepted", "id": request_id,
            "protocol": PROTOCOL_VERSION}


def update_response(request_id: str, *, state: str, version: int,
                    points: Mapping) -> dict:
    """One coalesced incremental-progress frame of a streamed request."""
    return {"type": "update", "id": request_id, "state": state,
            "version": version, "points": dict(points)}


def result_response(request_id: str, *, result, events: Mapping) -> dict:
    """The terminal success frame."""
    return {"type": "result", "id": request_id, "result": result,
            "events": dict(events)}
