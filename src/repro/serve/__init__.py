"""repro.serve: a crash-safe, backpressured experiment service.

A long-lived daemon around the experiment harness: clients submit figure
sweeps, fault sweeps and contention runs over a unix-socket JSON-lines
protocol; the daemon keeps the scenario cache and one warm execution pool
across requests, journals every accepted request so a ``kill -9`` costs
the trials in flight rather than the request, and applies explicit
backpressure (bounded queue, watermark shedding) instead of unbounded
buffering.  See docs/serving.md for the protocol and the recovery
semantics, and :mod:`repro.serve.service` for the lifecycle internals.
"""

from repro.serve.protocol import MAX_REQUEST_BYTES, ServeError, parse_request
from repro.serve.service import ServeService
from repro.serve.server import ServeServer

__all__ = [
    "MAX_REQUEST_BYTES",
    "ServeError",
    "ServeServer",
    "ServeService",
    "parse_request",
]
