"""The :class:`CoverageSet` value object.

Holds, for one clusterhead ``u``:

* ``c2`` / ``c3`` — the 2-hop and 3-hop target clusterheads;
* ``direct_witnesses[ch]`` — neighbours ``v`` of ``u`` with ``ch ∈ N(v)``
  (the nodes whose CH_HOP1 announced ``ch``);
* ``indirect_witnesses[ch]`` — relay pairs ``(v, w)`` with
  ``u–v–w–ch`` a path (the CH_HOP2 entries ``ch[w]`` heard via ``v``).

Invariants enforced at construction: ``c2`` and ``c3`` are disjoint, ``u``
appears in neither, every target has at least one witness, and witness
endpoints are consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Tuple

from repro.errors import CoverageError
from repro.types import CoveragePolicy, NodeId

#: A 3-hop relay pair ``(v, w)``: ``u`` is adjacent to ``v``, ``v`` to ``w``,
#: and ``w`` to the target clusterhead.
WitnessPair = Tuple[NodeId, NodeId]


@dataclass(frozen=True)
class CoverageSet:
    """Coverage set of one clusterhead under one policy.

    Attributes:
        head: The owning clusterhead ``u``.
        policy: Which definition produced this set.
        c2: Clusterheads two hops from ``u``.
        c3: Distance-3 clusterheads included by the policy.
        direct_witnesses: For each ``ch ∈ c2``, the neighbours of ``u``
            adjacent to ``ch``.
        indirect_witnesses: For each ``ch ∈ c3``, the relay pairs reaching it.
    """

    head: NodeId
    policy: CoveragePolicy
    c2: FrozenSet[NodeId]
    c3: FrozenSet[NodeId]
    direct_witnesses: Mapping[NodeId, FrozenSet[NodeId]]
    indirect_witnesses: Mapping[NodeId, FrozenSet[WitnessPair]]

    def __post_init__(self) -> None:
        if self.c2 & self.c3:
            raise CoverageError(
                f"C2 and C3 of head {self.head} overlap: {sorted(self.c2 & self.c3)}"
            )
        if self.head in self.c2 or self.head in self.c3:
            raise CoverageError(f"head {self.head} appears in its own coverage set")
        if set(self.direct_witnesses) != set(self.c2):
            raise CoverageError(
                f"direct witnesses of head {self.head} do not match C2"
            )
        if set(self.indirect_witnesses) != set(self.c3):
            raise CoverageError(
                f"indirect witnesses of head {self.head} do not match C3"
            )
        for ch, vs in self.direct_witnesses.items():
            if not vs:
                raise CoverageError(f"2-hop target {ch} of {self.head} has no witness")
        for ch, pairs in self.indirect_witnesses.items():
            if not pairs:
                raise CoverageError(f"3-hop target {ch} of {self.head} has no witness")

    @property
    def all_targets(self) -> FrozenSet[NodeId]:
        """``C(u) = C2(u) ∪ C3(u)``."""
        return self.c2 | self.c3

    @property
    def size(self) -> int:
        """Number of target clusterheads ``|C(u)|``."""
        return len(self.c2) + len(self.c3)

    def maintenance_cost(self) -> int:
        """A proxy for the state a real clusterhead must keep refreshed.

        Counts one unit per target plus one per recorded witness; the paper's
        motivation for the 2.5-hop policy is exactly that this is smaller
        than for the 3-hop policy.
        """
        return (
            self.size
            + sum(len(v) for v in self.direct_witnesses.values())
            + sum(len(p) for p in self.indirect_witnesses.values())
        )

    def restricted(self, targets: FrozenSet[NodeId]) -> "CoverageSet":
        """The coverage set with targets intersected with ``targets``.

        Used by the SD-CDS broadcast after pruning: the remaining coverage
        obligations keep their original witnesses.
        """
        c2 = self.c2 & targets
        c3 = self.c3 & targets
        return CoverageSet(
            head=self.head,
            policy=self.policy,
            c2=c2,
            c3=c3,
            direct_witnesses={ch: self.direct_witnesses[ch] for ch in c2},
            indirect_witnesses={ch: self.indirect_witnesses[ch] for ch in c3},
        )


def freeze_witnesses(
    direct: Dict[NodeId, set],
    indirect: Dict[NodeId, set],
) -> Tuple[Dict[NodeId, FrozenSet[NodeId]], Dict[NodeId, FrozenSet[WitnessPair]]]:
    """Freeze mutable witness accumulators into the immutable mapping form."""
    return (
        {ch: frozenset(vs) for ch, vs in direct.items()},
        {ch: frozenset(pairs) for ch, pairs in indirect.items()},
    )
