"""The 2.5-hop coverage set (CH_HOP1 / CH_HOP2 semantics).

This module computes, centrally, exactly what the paper's message exchange
gives a clusterhead ``u``:

* every non-clusterhead ``v`` broadcasts ``CH_HOP1(v)`` — its 1-hop
  neighbouring clusterheads;
* on hearing ``CH_HOP1(w)`` from a neighbour ``w``, node ``v`` records the
  entry ``head(w)[w]`` **unless** ``head(w)`` is itself a neighbour of ``v``;
  ``v`` then broadcasts the entries as ``CH_HOP2(v)``;
* ``u`` assembles ``C2(u)`` from its neighbours' CH_HOP1 and ``C3(u)`` from
  their CH_HOP2, dropping from ``C3`` anything already in ``C2`` (and ``u``).

Note the fine point visible in the paper's example ("node 4 is not added to
node 5's 2-hop neighbor clusterhead set"): CH_HOP2 entries carry only the
*clusterhead of the announcing member* — a distance-3 clusterhead enters the
2.5-hop set only when one of its own members sits within ``N^2(u)``.

The distributed implementation in :mod:`repro.protocols.coverage` is
property-tested to agree with this function.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Set

from repro.cluster.state import ClusterStructure
from repro.coverage.entries import CoverageSet, WitnessPair, freeze_witnesses
from repro.errors import CoverageError
from repro.types import CoveragePolicy, NodeId

if TYPE_CHECKING:
    from repro.topology.view import TopologyView


def two_five_hop_coverage(
    structure: ClusterStructure,
    head: NodeId,
    *,
    view: Optional["TopologyView"] = None,
) -> CoverageSet:
    """Compute clusterhead ``head``'s 2.5-hop coverage set.

    Args:
        structure: A finished clustering of the network.
        head: The clusterhead whose coverage set to build.
        view: Topology view to serve the neighbourhood queries (must wrap a
            graph equal to ``structure.graph``).  Defaults to the
            structure's shared view.

    Returns:
        The :class:`~repro.coverage.entries.CoverageSet` with witnesses.

    Raises:
        CoverageError: if ``head`` is not a clusterhead.
    """
    if not structure.is_clusterhead(head):
        raise CoverageError(f"node {head} is not a clusterhead")
    if view is None:
        view = structure.topology

    c2: Set[NodeId] = set()
    direct: Dict[NodeId, Set[NodeId]] = {}
    # C2(u): union of CH_HOP1(v) over u's neighbours v, minus u itself.
    # (All neighbours of a clusterhead are non-clusterheads, so each really
    # does send a CH_HOP1.)
    for v in view.neighbours(head):
        for ch in view.neighbours(v):
            if not structure.is_clusterhead(ch) or ch == head:
                continue
            c2.add(ch)
            direct.setdefault(ch, set()).add(v)

    c3: Set[NodeId] = set()
    indirect: Dict[NodeId, Set[WitnessPair]] = {}
    # C3(u): union of CH_HOP2(v) entries.  v's CH_HOP2 holds head(w)[w] for
    # each non-clusterhead neighbour w whose own head is not adjacent to v.
    for v in view.neighbours(head):
        for w in view.neighbours(v):
            if structure.is_clusterhead(w):
                continue  # CH_HOP1 of clusterheads does not exist
            ch = structure.head_of[w]
            if ch in view.neighbours(v):
                continue  # v ignores entries whose head it already neighbours
            if ch == head:
                continue  # defensive; implied by the previous test since v ~ head
            c3.add(ch)
            indirect.setdefault(ch, set()).add((v, w))

    # "If a clusterhead appears in both C2(u) and C3(u), the one in C3(u) is
    # removed."
    for ch in c2:
        c3.discard(ch)
        indirect.pop(ch, None)

    dfz, ifz = freeze_witnesses(direct, indirect)
    return CoverageSet(
        head=head,
        policy=CoveragePolicy.TWO_FIVE_HOP,
        c2=frozenset(c2),
        c3=frozenset(c3),
        direct_witnesses=dfz,
        indirect_witnesses=ifz,
    )
