"""The 2.5-hop coverage set (CH_HOP1 / CH_HOP2 semantics).

This module computes, centrally, exactly what the paper's message exchange
gives a clusterhead ``u``:

* every non-clusterhead ``v`` broadcasts ``CH_HOP1(v)`` — its 1-hop
  neighbouring clusterheads;
* on hearing ``CH_HOP1(w)`` from a neighbour ``w``, node ``v`` records the
  entry ``head(w)[w]`` **unless** ``head(w)`` is itself a neighbour of ``v``;
  ``v`` then broadcasts the entries as ``CH_HOP2(v)``;
* ``u`` assembles ``C2(u)`` from its neighbours' CH_HOP1 and ``C3(u)`` from
  their CH_HOP2, dropping from ``C3`` anything already in ``C2`` (and ``u``).

Note the fine point visible in the paper's example ("node 4 is not added to
node 5's 2-hop neighbor clusterhead set"): CH_HOP2 entries carry only the
*clusterhead of the announcing member* — a distance-3 clusterhead enters the
2.5-hop set only when one of its own members sits within ``N^2(u)``.

The distributed implementation in :mod:`repro.protocols.coverage` is
property-tested to agree with this function.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Set, Tuple

import numpy as np

from repro.cluster.state import ClusterStructure
from repro.coverage.arrays import CoverageArrays
from repro.coverage.entries import CoverageSet, WitnessPair, freeze_witnesses
from repro.errors import CoverageError
from repro.graph.csr import (
    CSRGraph,
    grouped_cartesian,
    mask_unique_rows,
    searchsorted_membership,
    sort_quads,
    sort_triples,
)
from repro.types import CoveragePolicy, NodeId

if TYPE_CHECKING:
    from repro.topology.view import TopologyView


def two_five_hop_coverage(
    structure: ClusterStructure,
    head: NodeId,
    *,
    view: Optional["TopologyView"] = None,
) -> CoverageSet:
    """Compute clusterhead ``head``'s 2.5-hop coverage set.

    Args:
        structure: A finished clustering of the network.
        head: The clusterhead whose coverage set to build.
        view: Topology view to serve the neighbourhood queries (must wrap a
            graph equal to ``structure.graph``).  Defaults to the
            structure's shared view.

    Returns:
        The :class:`~repro.coverage.entries.CoverageSet` with witnesses.

    Raises:
        CoverageError: if ``head`` is not a clusterhead.
    """
    if not structure.is_clusterhead(head):
        raise CoverageError(f"node {head} is not a clusterhead")
    if view is None:
        view = structure.topology

    c2: Set[NodeId] = set()
    direct: Dict[NodeId, Set[NodeId]] = {}
    # C2(u): union of CH_HOP1(v) over u's neighbours v, minus u itself.
    # (All neighbours of a clusterhead are non-clusterheads, so each really
    # does send a CH_HOP1.)
    for v in view.neighbours(head):
        for ch in view.neighbours(v):
            if not structure.is_clusterhead(ch) or ch == head:
                continue
            c2.add(ch)
            direct.setdefault(ch, set()).add(v)

    c3: Set[NodeId] = set()
    indirect: Dict[NodeId, Set[WitnessPair]] = {}
    # C3(u): union of CH_HOP2(v) entries.  v's CH_HOP2 holds head(w)[w] for
    # each non-clusterhead neighbour w whose own head is not adjacent to v.
    for v in view.neighbours(head):
        for w in view.neighbours(v):
            if structure.is_clusterhead(w):
                continue  # CH_HOP1 of clusterheads does not exist
            ch = structure.head_of[w]
            if ch in view.neighbours(v):
                continue  # v ignores entries whose head it already neighbours
            if ch == head:
                continue  # defensive; implied by the previous test since v ~ head
            c3.add(ch)
            indirect.setdefault(ch, set()).add((v, w))

    # "If a clusterhead appears in both C2(u) and C3(u), the one in C3(u) is
    # removed."
    for ch in c2:
        c3.discard(ch)
        indirect.pop(ch, None)

    dfz, ifz = freeze_witnesses(direct, indirect)
    return CoverageSet(
        head=head,
        policy=CoveragePolicy.TWO_FIVE_HOP,
        c2=frozenset(c2),
        c3=frozenset(c3),
        direct_witnesses=dfz,
        indirect_witnesses=ifz,
    )


def two_five_hop_arrays(csr: CSRGraph, head_row: np.ndarray) -> CoverageArrays:
    """2.5-hop coverage sets of **all** clusterheads, batched.

    One vectorised pass over every node's neighbour list replaces the
    per-head set walks of :func:`two_five_hop_coverage`:

    * a direct triple ``(h, ch, v)`` is exactly an ordered pair of distinct
      clusterhead neighbours ``(h, ch)`` of some node ``v`` — the CH_HOP1
      relation read backwards;
    * an indirect quad ``(h, ch, v, w)`` pairs a clusterhead neighbour
      ``h`` of ``v`` with a non-clusterhead neighbour ``w`` whose own head
      ``ch`` is neither ``h`` nor adjacent to ``v`` (the CH_HOP2 rule),
      minus any ``(h, ch)`` already reachable directly.

    Args:
        csr: The network.
        head_row: Per-row clusterhead assignment from
            :func:`repro.cluster.lowest_id.lowest_id_rows`.

    Returns:
        The witness tables; materialising them per head is bit-identical
        to :func:`two_five_hop_coverage`.
    """
    n = csr.num_nodes
    rows = np.arange(n, dtype=np.int64)
    is_head = head_row == rows
    degrees = csr.degrees.astype(np.int64)
    flat = csr.indices.astype(np.int64)
    src = np.repeat(rows, degrees)
    nbr_is_head = is_head[flat]

    # Per-node grouped lists of clusterhead / non-clusterhead neighbours.
    # Slicing the (already row-grouped, row-sorted) flat adjacency keeps
    # both lists grouped by source node with ascending members.
    head_nbrs = flat[nbr_is_head]
    k = np.bincount(src[nbr_is_head], minlength=n)
    k_start = np.zeros(n, dtype=np.int64)
    np.cumsum(k[:-1], out=k_start[1:])
    plain_nbrs = flat[~nbr_is_head]

    # Direct triples: ordered pairs of distinct head neighbours of v.
    grp, a, b = grouped_cartesian(k, k)
    keep = a != b
    grp, a, b = grp[keep], a[keep], b[keep]
    d_head = head_nbrs[k_start[grp] + a]
    d_ch = head_nbrs[k_start[grp] + b]
    # Sort by (head, ch, v) — a packed single-key sort up to the int64
    # packing limit, an order-identical lexsort beyond (see
    # :func:`repro.graph.csr.sort_triples`).  The unique (head, ch) pairs
    # for the C3 removal rule fall out of the sorted pair keys by boundary
    # detection (pair keys never overflow: rows are int32).
    d_head, d_ch, d_v = sort_triples(n, d_head, d_ch, grp)
    d_pair = d_head * n + d_ch
    if d_pair.shape[0]:
        first = np.empty(d_pair.shape[0], dtype=bool)
        first[0] = True
        np.not_equal(d_pair[1:], d_pair[:-1], out=first[1:])
        d_keys = d_pair[first]
    else:
        d_keys = d_pair

    # Indirect quads.  First build each node's CH_HOP2 content — for every
    # non-head neighbour w of v, the entry ``head(w)[w]`` unless head(w)
    # is adjacent to v — which is independent of the receiving head, so
    # the adjacency test runs once per directed edge rather than once per
    # (head, edge) candidate.
    v_of_plain = src[~nbr_is_head]
    ch_of_plain = head_row[plain_nbrs]
    ok = ~searchsorted_membership(
        csr.edge_keys(), v_of_plain * n + ch_of_plain
    )
    entry_w = plain_nbrs[ok]
    entry_ch = ch_of_plain[ok]
    m = np.bincount(v_of_plain[ok], minlength=n)
    m_start = np.zeros(n, dtype=np.int64)
    np.cumsum(m[:-1], out=m_start[1:])
    # Then pair every head neighbour h of v with v's entries.
    grp, a, b = grouped_cartesian(k, m)
    q_head = head_nbrs[k_start[grp] + a]
    q_ch = entry_ch[m_start[grp] + b]
    keep = q_ch != q_head
    grp, b = grp[keep], b[keep]
    q_head, q_ch = q_head[keep], q_ch[keep]
    # "If a clusterhead appears in both C2(u) and C3(u), the one in C3(u)
    # is removed."
    keep = ~searchsorted_membership(d_keys, q_head * n + q_ch)
    grp, b = grp[keep], b[keep]
    q_head, q_ch = q_head[keep], q_ch[keep]
    q_v = grp
    q_w = entry_w[m_start[grp] + b]

    i_head, i_ch, i_v, i_w = sort_quads(n, q_head, q_ch, q_v, q_w)
    return CoverageArrays(
        csr=csr,
        policy=CoveragePolicy.TWO_FIVE_HOP,
        heads=np.flatnonzero(is_head),
        d_head=d_head,
        d_ch=d_ch,
        d_v=d_v,
        i_head=i_head,
        i_ch=i_ch,
        i_v=i_v,
        i_w=i_w,
    )


def two_five_hop_arrays_masked(
    csr: CSRGraph, head_row: np.ndarray, head_rows: np.ndarray
) -> Tuple[np.ndarray, ...]:
    """Witness tables of a *subset* of clusterheads only.

    The incremental maintenance kernels re-derive coverage for just the
    heads whose 2/3-hop inputs intersect a tick's edge delta; this builds
    exactly the rows :func:`two_five_hop_arrays` would produce for those
    heads — same sort order, same dedup rules — while touching only the
    subset heads' neighbourhoods.  The candidate ``v`` set shrinks to the
    subset heads' neighbours, the receiving side of each pairing to the
    subset heads among ``v``'s head neighbours; the announcing side (the
    CH_HOP1/CH_HOP2 content of ``v``) is untouched, so the per-head rows
    agree with the full kernel bit for bit.

    Args:
        csr: The network.
        head_row: Full per-row head assignment.
        head_rows: Sorted head rows to compute coverage for.

    Returns:
        ``(d_head, d_ch, d_v, i_head, i_ch, i_v, i_w)`` — the subset's
        slice of the full witness tables.
    """
    n = csr.num_nodes
    empty = np.empty(0, dtype=np.int64)
    if head_rows.shape[0] == 0:
        return (empty,) * 7
    is_head = head_row == np.arange(n, dtype=np.int64)
    flat_h, _ = csr.gather_rows(head_rows)
    vset = mask_unique_rows(flat_h, n)
    flat, counts = csr.gather_rows(vset)
    # int64 up front: the gathered neighbours seed every ``x * n + y`` key
    # product below, which wraps in the CSR's int32 once n*n exceeds int32.
    flat = flat.astype(np.int64)
    grp_of = np.repeat(np.arange(vset.shape[0], dtype=np.int64), counts)
    nbr_is_head = is_head[flat]
    in_sub = nbr_is_head & searchsorted_membership(head_rows, flat)

    sub_nbrs = flat[in_sub]
    k_sub = np.bincount(grp_of[in_sub], minlength=vset.shape[0])
    ks_start = np.zeros(vset.shape[0], dtype=np.int64)
    if vset.shape[0]:
        np.cumsum(k_sub[:-1], out=ks_start[1:])
    all_nbrs = flat[nbr_is_head]
    k_all = np.bincount(grp_of[nbr_is_head], minlength=vset.shape[0])
    ka_start = np.zeros(vset.shape[0], dtype=np.int64)
    if vset.shape[0]:
        np.cumsum(k_all[:-1], out=ka_start[1:])
    plain_nbrs = flat[~nbr_is_head]
    v_of_plain = grp_of[~nbr_is_head]

    # Direct triples: (h in subset-heads(v)) x (ch in all-heads(v)), h != ch.
    grp, a, b = grouped_cartesian(k_sub, k_all)
    d_head = sub_nbrs[ks_start[grp] + a]
    d_ch = all_nbrs[ka_start[grp] + b]
    keep = d_head != d_ch
    grp, d_head, d_ch = grp[keep], d_head[keep], d_ch[keep]
    d_head, d_ch, d_v = sort_triples(n, d_head, d_ch, vset[grp])
    d_pair = d_head * n + d_ch
    if d_pair.shape[0]:
        first = np.empty(d_pair.shape[0], dtype=bool)
        first[0] = True
        np.not_equal(d_pair[1:], d_pair[:-1], out=first[1:])
        d_keys = d_pair[first]
    else:
        d_keys = d_pair

    # CH_HOP2 entries of the candidate v's, then the subset-head pairing.
    # The C3-removal test against ``d_keys`` is per-head, so the subset's
    # direct pairs are exactly the full table's pairs for these heads.
    ch_of_plain = head_row[plain_nbrs]
    ok = ~searchsorted_membership(
        csr.edge_keys(), vset[v_of_plain] * n + ch_of_plain
    )
    entry_w = plain_nbrs[ok]
    entry_ch = ch_of_plain[ok]
    m = np.bincount(v_of_plain[ok], minlength=vset.shape[0])
    m_start = np.zeros(vset.shape[0], dtype=np.int64)
    if vset.shape[0]:
        np.cumsum(m[:-1], out=m_start[1:])
    grp, a, b = grouped_cartesian(k_sub, m)
    q_head = sub_nbrs[ks_start[grp] + a]
    q_ch = entry_ch[m_start[grp] + b]
    keep = q_ch != q_head
    grp, b = grp[keep], b[keep]
    q_head, q_ch = q_head[keep], q_ch[keep]
    keep = ~searchsorted_membership(d_keys, q_head * n + q_ch)
    grp, b = grp[keep], b[keep]
    q_head, q_ch = q_head[keep], q_ch[keep]
    q_v = vset[grp]
    q_w = entry_w[m_start[grp] + b]
    i_head, i_ch, i_v, i_w = sort_quads(n, q_head, q_ch, q_v, q_w)
    return d_head, d_ch, d_v, i_head, i_ch, i_v, i_w
