"""Policy dispatch: compute coverage sets under either definition."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro import perf
from repro.cluster.state import ClusterStructure
from repro.coverage.arrays import CoverageArrays
from repro.coverage.entries import CoverageSet
from repro.coverage.three_hop import three_hop_arrays, three_hop_coverage
from repro.coverage.two_five_hop import two_five_hop_arrays, two_five_hop_coverage
from repro.graph.csr import CSR_CUTOVER
from repro.types import CoveragePolicy, NodeId

if TYPE_CHECKING:
    from repro.topology.view import TopologyView


def compute_coverage_arrays(
    structure: ClusterStructure,
    policy: CoveragePolicy = CoveragePolicy.TWO_FIVE_HOP,
) -> CoverageArrays:
    """Batched coverage sets of every clusterhead, in array form.

    The CSR counterpart of :func:`compute_all_coverage_sets` (materialising
    the result is bit-identical to it); exposed separately so array-native
    callers can keep going without building per-head objects.
    """
    if policy is CoveragePolicy.TWO_FIVE_HOP:
        return two_five_hop_arrays(structure.csr, structure.head_row)
    if policy is CoveragePolicy.THREE_HOP:
        return three_hop_arrays(structure.csr, structure.head_row)
    raise ValueError(f"unknown coverage policy {policy!r}")


def compute_coverage_set(
    structure: ClusterStructure,
    head: NodeId,
    policy: CoveragePolicy = CoveragePolicy.TWO_FIVE_HOP,
    *,
    view: Optional["TopologyView"] = None,
) -> CoverageSet:
    """Coverage set of ``head`` under ``policy``.

    Args:
        structure: A finished clustering.
        head: The clusterhead whose set to build.
        policy: Which coverage definition to apply.
        view: Shared topology view (defaults to the structure's own).
    """
    if policy is CoveragePolicy.TWO_FIVE_HOP:
        return two_five_hop_coverage(structure, head, view=view)
    if policy is CoveragePolicy.THREE_HOP:
        return three_hop_coverage(structure, head, view=view)
    raise ValueError(f"unknown coverage policy {policy!r}")


@perf.timed("coverage")
def compute_all_coverage_sets(
    structure: ClusterStructure,
    policy: CoveragePolicy = CoveragePolicy.TWO_FIVE_HOP,
    *,
    view: Optional["TopologyView"] = None,
) -> Dict[NodeId, CoverageSet]:
    """Coverage sets for every clusterhead, keyed by head id.

    All heads share one :class:`~repro.topology.view.TopologyView` (the
    given one, or the structure's), so neighbour frozensets and BFS
    frontiers computed for one head are reused by the others.

    At ``n >= CSR_CUTOVER`` (and no caller-supplied view) the per-head set
    walks are replaced by the batched CSR kernels plus materialisation —
    same result, one vectorised pass.
    """
    if view is None and len(structure.graph) >= CSR_CUTOVER:
        return compute_coverage_arrays(structure, policy).materialise_all()
    if view is None:
        view = structure.topology
    return {
        h: compute_coverage_set(structure, h, policy, view=view)
        for h in structure.sorted_heads()
    }
