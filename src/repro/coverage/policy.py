"""Policy dispatch: compute coverage sets under either definition."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro import perf
from repro.cluster.state import ClusterStructure
from repro.coverage.entries import CoverageSet
from repro.coverage.three_hop import three_hop_coverage
from repro.coverage.two_five_hop import two_five_hop_coverage
from repro.types import CoveragePolicy, NodeId

if TYPE_CHECKING:
    from repro.topology.view import TopologyView


def compute_coverage_set(
    structure: ClusterStructure,
    head: NodeId,
    policy: CoveragePolicy = CoveragePolicy.TWO_FIVE_HOP,
    *,
    view: Optional["TopologyView"] = None,
) -> CoverageSet:
    """Coverage set of ``head`` under ``policy``.

    Args:
        structure: A finished clustering.
        head: The clusterhead whose set to build.
        policy: Which coverage definition to apply.
        view: Shared topology view (defaults to the structure's own).
    """
    if policy is CoveragePolicy.TWO_FIVE_HOP:
        return two_five_hop_coverage(structure, head, view=view)
    if policy is CoveragePolicy.THREE_HOP:
        return three_hop_coverage(structure, head, view=view)
    raise ValueError(f"unknown coverage policy {policy!r}")


@perf.timed("coverage")
def compute_all_coverage_sets(
    structure: ClusterStructure,
    policy: CoveragePolicy = CoveragePolicy.TWO_FIVE_HOP,
    *,
    view: Optional["TopologyView"] = None,
) -> Dict[NodeId, CoverageSet]:
    """Coverage sets for every clusterhead, keyed by head id.

    All heads share one :class:`~repro.topology.view.TopologyView` (the
    given one, or the structure's), so neighbour frozensets and BFS
    frontiers computed for one head are reused by the others.
    """
    if view is None:
        view = structure.topology
    return {
        h: compute_coverage_set(structure, h, policy, view=view)
        for h in structure.sorted_heads()
    }
