"""Policy dispatch: compute coverage sets under either definition."""

from __future__ import annotations

from typing import Dict

from repro.cluster.state import ClusterStructure
from repro.coverage.entries import CoverageSet
from repro.coverage.three_hop import three_hop_coverage
from repro.coverage.two_five_hop import two_five_hop_coverage
from repro.types import CoveragePolicy, NodeId


def compute_coverage_set(
    structure: ClusterStructure,
    head: NodeId,
    policy: CoveragePolicy = CoveragePolicy.TWO_FIVE_HOP,
) -> CoverageSet:
    """Coverage set of ``head`` under ``policy``."""
    if policy is CoveragePolicy.TWO_FIVE_HOP:
        return two_five_hop_coverage(structure, head)
    if policy is CoveragePolicy.THREE_HOP:
        return three_hop_coverage(structure, head)
    raise ValueError(f"unknown coverage policy {policy!r}")


def compute_all_coverage_sets(
    structure: ClusterStructure,
    policy: CoveragePolicy = CoveragePolicy.TWO_FIVE_HOP,
) -> Dict[NodeId, CoverageSet]:
    """Coverage sets for every clusterhead, keyed by head id."""
    return {
        h: compute_coverage_set(structure, h, policy)
        for h in structure.sorted_heads()
    }
