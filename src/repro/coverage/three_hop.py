"""The 3-hop coverage set: every clusterhead within graph distance 3.

``C2(u)`` is identical to the 2.5-hop case; ``C3(u)`` contains **all**
clusterheads at distance exactly 3, each with every relay pair ``(v, w)``
(``u–v–w–ch``) as witnesses.  Unlike the 2.5-hop set, a clusterhead enters
``C3`` even when none of its own members lies within ``N^2(u)`` (the ``c'``
case of the paper's Figure 1) — which is why the 3-hop set is a superset and
costs more to maintain.

The 3-hop cluster graph is symmetric (``w ∈ C(v) ⇔ v ∈ C(w)``), a property
the tests verify.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set

import numpy as np

from repro.cluster.state import ClusterStructure
from repro.coverage.arrays import CoverageArrays
from repro.coverage.entries import CoverageSet, WitnessPair, freeze_witnesses
from repro.errors import CoverageError
from repro.graph.csr import (
    CSRGraph,
    searchsorted_membership,
    sort_quads,
    sort_triples,
)
from repro.types import CoveragePolicy, NodeId

if TYPE_CHECKING:
    from repro.topology.view import TopologyView

#: Heads per batch in :func:`three_hop_arrays`.  Bounds the working set of
#: the 3-level frontier expansion to roughly ``chunk * avg_degree**3`` keys
#: regardless of network size.
_HEAD_CHUNK = 1024


def three_hop_coverage(
    structure: ClusterStructure,
    head: NodeId,
    *,
    view: Optional["TopologyView"] = None,
) -> CoverageSet:
    """Compute clusterhead ``head``'s 3-hop coverage set.

    Args:
        structure: A finished clustering of the network.
        head: The clusterhead whose coverage set to build.
        view: Topology view to serve the neighbourhood queries (must wrap a
            graph equal to ``structure.graph``).  Defaults to the
            structure's shared view, so repeated coverage builds over one
            clustering reuse each other's BFS work.

    Returns:
        The :class:`~repro.coverage.entries.CoverageSet` with witnesses.

    Raises:
        CoverageError: if ``head`` is not a clusterhead.
    """
    if not structure.is_clusterhead(head):
        raise CoverageError(f"node {head} is not a clusterhead")
    if view is None:
        view = structure.topology
    dist = view.distances_within(head, 3)

    c2: Set[NodeId] = set()
    direct: Dict[NodeId, Set[NodeId]] = {}
    c3: Set[NodeId] = set()
    indirect: Dict[NodeId, Set[WitnessPair]] = {}

    for node, d in dist.items():
        if not structure.is_clusterhead(node) or node == head:
            continue
        if d == 2:
            c2.add(node)
        elif d == 3:
            c3.add(node)
        # d == 1 is impossible: clusterheads form an independent set.

    for ch in c2:
        direct[ch] = set(view.common_neighbours(ch, head))
    for ch in c3:
        pairs: Set[WitnessPair] = set()
        for w in view.neighbours(ch):
            if dist.get(w) != 2:
                continue
            for v in view.common_neighbours(w, head):
                pairs.add((v, w))
        indirect[ch] = pairs

    dfz, ifz = freeze_witnesses(direct, indirect)
    return CoverageSet(
        head=head,
        policy=CoveragePolicy.THREE_HOP,
        c2=frozenset(c2),
        c3=frozenset(c3),
        direct_witnesses=dfz,
        indirect_witnesses=ifz,
    )


def three_hop_arrays(csr: CSRGraph, head_row: np.ndarray) -> CoverageArrays:
    """3-hop coverage sets of **all** clusterheads, batched.

    Runs the depth-3 BFS of :func:`three_hop_coverage` for every head at
    once, in chunks of :data:`_HEAD_CHUNK` heads.  Level sets are kept as
    sorted ``head_index * n + node`` key arrays, so "is this node within
    distance d of that head" is a vectorised :func:`np.searchsorted`
    instead of a per-head distance dict.

    Args:
        csr: The network.
        head_row: Per-row clusterhead assignment from
            :func:`repro.cluster.lowest_id.lowest_id_rows`.

    Returns:
        The witness tables; materialising them per head is bit-identical
        to :func:`three_hop_coverage`.
    """
    n = csr.num_nodes
    rows = np.arange(n, dtype=np.int64)
    is_head = head_row == rows
    heads = np.flatnonzero(is_head)

    d_parts: List[List[np.ndarray]] = [[], [], []]
    i_parts: List[List[np.ndarray]] = [[], [], [], []]
    for c0 in range(0, heads.shape[0], _HEAD_CHUNK):
        chunk = heads[c0 : c0 + _HEAD_CHUNK]
        c = chunk.shape[0]
        k0 = np.arange(c, dtype=np.int64) * n + chunk

        # Distance-1 level set: (head_index, v) keys, already ascending
        # because head indices ascend and rows are sorted.
        v_flat, v_cnt = csr.gather_rows(chunk)
        hi1 = np.repeat(np.arange(c, dtype=np.int64), v_cnt)
        k1 = hi1 * n + v_flat

        # Distance-2: expand the ring, dedupe, drop distance <= 1.
        w_flat, w_cnt = csr.gather_rows(v_flat)
        k2_cand = np.unique(np.repeat(hi1, w_cnt) * n + w_flat)
        k2 = k2_cand[
            ~searchsorted_membership(k1, k2_cand)
            & ~searchsorted_membership(k0, k2_cand)
        ]
        hi2 = k2 // n
        w2 = k2 % n

        # C2 plus direct witnesses: common neighbours of (head, ch).
        c2_mask = is_head[w2]
        ch2 = w2[c2_mask]
        hic2 = hi2[c2_mask]
        wv_flat, wv_cnt = csr.gather_rows(ch2)
        hiw = np.repeat(hic2, wv_cnt)
        chw = np.repeat(ch2, wv_cnt)
        sel = searchsorted_membership(k1, hiw * n + wv_flat)
        d_parts[0].append(chunk[hiw[sel]])
        d_parts[1].append(chw[sel])
        d_parts[2].append(wv_flat[sel])

        # Distance-3 clusterheads, kept per (head, ch, w) edge so each
        # witness ``w`` at distance 2 is already attached.
        y_flat, y_cnt = csr.gather_rows(w2)
        hi3 = np.repeat(hi2, y_cnt)
        w3 = np.repeat(w2, y_cnt)
        ch3 = y_flat
        near = is_head[ch3]
        hi3, w3, ch3 = hi3[near], w3[near], ch3[near]
        k3 = hi3 * n + ch3
        far = (
            ~searchsorted_membership(k2, k3)
            & ~searchsorted_membership(k1, k3)
            & ~searchsorted_membership(k0, k3)
        )
        hi3, w3, ch3 = hi3[far], w3[far], ch3[far]

        # Witness pairs (v, w): v is a common neighbour of w and the head.
        vv_flat, vv_cnt = csr.gather_rows(w3)
        hiq = np.repeat(hi3, vv_cnt)
        chq = np.repeat(ch3, vv_cnt)
        wq = np.repeat(w3, vv_cnt)
        sel = searchsorted_membership(k1, hiq * n + vv_flat)
        i_parts[0].append(chunk[hiq[sel]])
        i_parts[1].append(chq[sel])
        i_parts[2].append(vv_flat[sel])
        i_parts[3].append(wq[sel])

    empty = np.empty(0, dtype=np.int64)
    d_head, d_ch, d_v = (
        np.concatenate(p) if p else empty for p in d_parts
    )
    i_head, i_ch, i_v, i_w = (
        np.concatenate(p) if p else empty for p in i_parts
    )
    # Packed single-key sorts, as in the 2.5-hop kernel — both guarded
    # against int64 overflow past the packing limits (lexsort fallback).
    d_head, d_ch, d_v = sort_triples(n, d_head, d_ch, d_v)
    i_head, i_ch, i_v, i_w = sort_quads(n, i_head, i_ch, i_v, i_w)
    return CoverageArrays(
        csr=csr,
        policy=CoveragePolicy.THREE_HOP,
        heads=heads,
        d_head=d_head,
        d_ch=d_ch,
        d_v=d_v,
        i_head=i_head,
        i_ch=i_ch,
        i_v=i_v,
        i_w=i_w,
    )
