"""The 3-hop coverage set: every clusterhead within graph distance 3.

``C2(u)`` is identical to the 2.5-hop case; ``C3(u)`` contains **all**
clusterheads at distance exactly 3, each with every relay pair ``(v, w)``
(``u–v–w–ch``) as witnesses.  Unlike the 2.5-hop set, a clusterhead enters
``C3`` even when none of its own members lies within ``N^2(u)`` (the ``c'``
case of the paper's Figure 1) — which is why the 3-hop set is a superset and
costs more to maintain.

The 3-hop cluster graph is symmetric (``w ∈ C(v) ⇔ v ∈ C(w)``), a property
the tests verify.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Set

from repro.cluster.state import ClusterStructure
from repro.coverage.entries import CoverageSet, WitnessPair, freeze_witnesses
from repro.errors import CoverageError
from repro.types import CoveragePolicy, NodeId

if TYPE_CHECKING:
    from repro.topology.view import TopologyView


def three_hop_coverage(
    structure: ClusterStructure,
    head: NodeId,
    *,
    view: Optional["TopologyView"] = None,
) -> CoverageSet:
    """Compute clusterhead ``head``'s 3-hop coverage set.

    Args:
        structure: A finished clustering of the network.
        head: The clusterhead whose coverage set to build.
        view: Topology view to serve the neighbourhood queries (must wrap a
            graph equal to ``structure.graph``).  Defaults to the
            structure's shared view, so repeated coverage builds over one
            clustering reuse each other's BFS work.

    Returns:
        The :class:`~repro.coverage.entries.CoverageSet` with witnesses.

    Raises:
        CoverageError: if ``head`` is not a clusterhead.
    """
    if not structure.is_clusterhead(head):
        raise CoverageError(f"node {head} is not a clusterhead")
    if view is None:
        view = structure.topology
    dist = view.distances_within(head, 3)

    c2: Set[NodeId] = set()
    direct: Dict[NodeId, Set[NodeId]] = {}
    c3: Set[NodeId] = set()
    indirect: Dict[NodeId, Set[WitnessPair]] = {}

    for node, d in dist.items():
        if not structure.is_clusterhead(node) or node == head:
            continue
        if d == 2:
            c2.add(node)
        elif d == 3:
            c3.add(node)
        # d == 1 is impossible: clusterheads form an independent set.

    for ch in c2:
        direct[ch] = set(view.common_neighbours(ch, head))
    for ch in c3:
        pairs: Set[WitnessPair] = set()
        for w in view.neighbours(ch):
            if dist.get(w) != 2:
                continue
            for v in view.common_neighbours(w, head):
                pairs.add((v, w))
        indirect[ch] = pairs

    dfz, ifz = freeze_witnesses(direct, indirect)
    return CoverageSet(
        head=head,
        policy=CoveragePolicy.THREE_HOP,
        c2=frozenset(c2),
        c3=frozenset(c3),
        direct_witnesses=dfz,
        indirect_witnesses=ifz,
    )
