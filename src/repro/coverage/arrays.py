"""Batched coverage sets in array form.

The CSR coverage kernels (:func:`repro.coverage.two_five_hop.two_five_hop_arrays`,
:func:`repro.coverage.three_hop.three_hop_arrays`) compute the coverage
sets of **every** clusterhead in one vectorised pass and return them here:
flat, lexicographically sorted witness tables instead of per-head Python
sets.

* ``d_head / d_ch / d_v`` — one entry per *direct* witness: clusterhead
  ``d_ch`` is a 2-hop target of ``d_head`` reachable through its
  neighbour ``d_v``.  Sorted by ``(head, ch, v)``.
* ``i_head / i_ch / i_v / i_w`` — one entry per *indirect* witness pair:
  ``i_ch`` is a 3-hop target of ``i_head`` reachable through the relay
  pair ``(i_v, i_w)``.  Sorted by ``(head, ch, v, w)``.

All values are CSR **rows** (ranks in id order), not node ids.  The array
form is what batched gateway selection consumes directly; the bridge back
to the object layer is :meth:`CoverageArrays.materialise_all`, which
produces :class:`~repro.coverage.entries.CoverageSet` objects bit-identical
to the set-based builders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

import numpy as np

from repro.coverage.entries import CoverageSet, WitnessPair
from repro.graph.csr import CSRGraph
from repro.types import CoveragePolicy, NodeId


@dataclass(frozen=True)
class CoverageArrays:
    """All clusterheads' coverage sets as flat witness tables.

    Attributes:
        csr: The network the sets were computed over.
        policy: Which coverage definition produced them.
        heads: All clusterhead rows, ascending.
        d_head, d_ch, d_v: Direct witness triples, sorted by ``(head, ch, v)``.
        i_head, i_ch, i_v, i_w: Indirect witness quads, sorted by
            ``(head, ch, v, w)``.
    """

    csr: CSRGraph
    policy: CoveragePolicy
    heads: np.ndarray
    d_head: np.ndarray
    d_ch: np.ndarray
    d_v: np.ndarray
    i_head: np.ndarray
    i_ch: np.ndarray
    i_v: np.ndarray
    i_w: np.ndarray

    def materialise_all(self) -> Dict[NodeId, CoverageSet]:
        """Per-head :class:`CoverageSet` objects, keyed by head id ascending.

        Bit-identical to running the set-based coverage builder per head
        (the Hypothesis equivalence suite pins this).
        """
        ids = self.csr.ids
        head_ids = ids[self.heads].tolist()
        out: Dict[NodeId, CoverageSet] = {}
        direct_by_head = _group_triples(
            ids, self.d_head, self.d_ch, self.d_v
        )
        indirect_by_head = _group_quads(
            ids, self.i_head, self.i_ch, self.i_v, self.i_w
        )
        for h_row, h_id in zip(self.heads.tolist(), head_ids):
            direct = direct_by_head.get(h_row, {})
            indirect = indirect_by_head.get(h_row, {})
            out[h_id] = CoverageSet(
                head=h_id,
                policy=self.policy,
                c2=frozenset(direct),
                c3=frozenset(indirect),
                direct_witnesses=direct,
                indirect_witnesses=indirect,
            )
        return out


def _group_triples(
    ids: np.ndarray,
    t_head: np.ndarray,
    t_ch: np.ndarray,
    t_v: np.ndarray,
) -> Dict[int, Dict[NodeId, FrozenSet[NodeId]]]:
    """Group sorted direct triples into ``{head_row: {ch_id: {v_id, ...}}}``."""
    out: Dict[int, Dict[NodeId, FrozenSet[NodeId]]] = {}
    if t_head.shape[0] == 0:
        return out
    heads = t_head.tolist()
    chs = ids[t_ch].tolist()
    vs = ids[t_v].tolist()
    k = 0
    total = len(heads)
    while k < total:
        h, ch = heads[k], chs[k]
        j = k
        while j < total and heads[j] == h and chs[j] == ch:
            j += 1
        out.setdefault(h, {})[ch] = frozenset(vs[k:j])
        k = j
    return out


def _group_quads(
    ids: np.ndarray,
    t_head: np.ndarray,
    t_ch: np.ndarray,
    t_v: np.ndarray,
    t_w: np.ndarray,
) -> Dict[int, Dict[NodeId, FrozenSet[WitnessPair]]]:
    """Group sorted indirect quads into ``{head_row: {ch_id: {(v, w), ...}}}``."""
    out: Dict[int, Dict[NodeId, FrozenSet[WitnessPair]]] = {}
    if t_head.shape[0] == 0:
        return out
    heads = t_head.tolist()
    chs = ids[t_ch].tolist()
    vs = ids[t_v].tolist()
    ws = ids[t_w].tolist()
    k = 0
    total = len(heads)
    while k < total:
        h, ch = heads[k], chs[k]
        j = k
        while j < total and heads[j] == h and chs[j] == ch:
            j += 1
        out.setdefault(h, {})[ch] = frozenset(zip(vs[k:j], ws[k:j]))
        k = j
    return out
