"""Coverage sets: which clusterheads a clusterhead must reach through gateways.

A clusterhead ``u``'s coverage set ``C(u) = C2(u) ∪ C3(u)`` (paper, Section 1)
lists the nearby clusterheads it is responsible for connecting to:

* ``C2(u)`` — clusterheads exactly two hops away (learned from CH_HOP1
  messages of ``u``'s neighbours);
* ``C3(u)`` — distance-3 clusterheads.  Under the **3-hop** policy this is
  every clusterhead at distance 3; under the **2.5-hop** policy only those
  with a cluster *member* inside ``N^2(u)`` (learned from CH_HOP2 messages),
  which is cheaper to maintain.

Alongside the head sets, each coverage set records *witnesses*: for a 2-hop
head the neighbours of ``u`` that reach it directly, and for a 3-hop head the
``(v, w)`` relay pairs — exactly the information the CH_HOP1/CH_HOP2 exchange
gives a real clusterhead, and what gateway selection consumes.
"""

from repro.coverage.entries import CoverageSet
from repro.coverage.policy import compute_all_coverage_sets, compute_coverage_set
from repro.coverage.three_hop import three_hop_coverage
from repro.coverage.two_five_hop import two_five_hop_coverage

__all__ = [
    "CoverageSet",
    "compute_coverage_set",
    "compute_all_coverage_sets",
    "two_five_hop_coverage",
    "three_hop_coverage",
]
