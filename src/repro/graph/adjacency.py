"""Undirected graph stored as adjacency sets.

:class:`Graph` is the library's workhorse topology type.  Design points:

* **Integer node ids** with meaningful ordering (lowest-ID clustering).
* **Set-based adjacency** — membership tests (``v in G.neighbours(u)``) are
  the hot operation in coverage-set and gateway-selection code.
* **No silent node creation** — referencing an unknown node raises
  :class:`repro.errors.NodeNotFoundError` so off-by-one id bugs surface early.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

import numpy as np

from repro.errors import NodeNotFoundError
from repro.types import Edge, NodeId, ordered_edge


class Graph:
    """A simple undirected graph over integer node ids.

    Args:
        nodes: Initial node ids (optional).
        edges: Initial edges as ``(u, v)`` pairs; endpoints are added
            automatically.
    """

    __slots__ = ("_adj",)

    def __init__(
        self,
        nodes: Iterable[NodeId] = (),
        edges: Iterable[Tuple[NodeId, NodeId]] = (),
    ) -> None:
        self._adj: Dict[NodeId, Set[NodeId]] = {}
        for v in nodes:
            self.add_node(v)
        for u, v in edges:
            self.add_edge(u, v)

    # -- construction -----------------------------------------------------

    def add_node(self, v: NodeId) -> None:
        """Add node ``v`` (no-op if already present)."""
        self._adj.setdefault(int(v), set())

    def add_edge(self, u: NodeId, v: NodeId) -> None:
        """Add the undirected edge ``{u, v}``, creating endpoints as needed.

        Raises:
            ValueError: on a self-loop.
        """
        u, v = ordered_edge(int(u), int(v))
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)

    def add_edges(self, edges: Iterable[Tuple[NodeId, NodeId]]) -> None:
        """Bulk edge insertion (hot path of unit-disk construction).

        Semantically identical to calling :meth:`add_edge` per pair, but
        with the dict lookups hoisted; measured ~2x faster on the dense
        builder's output.
        """
        adj = self._adj
        setdefault = adj.setdefault
        for u, v in edges:
            if u == v:
                raise ValueError(
                    f"self-loop at node {u} is not a valid MANET link"
                )
            setdefault(u, set()).add(v)
            setdefault(v, set()).add(u)

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Remove edge ``{u, v}``; raises ``KeyError`` if absent."""
        if v not in self._adj.get(u, ()):  # also covers missing nodes
            raise KeyError(f"edge ({u}, {v}) is not in the graph")
        self._adj[u].discard(v)
        self._adj[v].discard(u)

    def remove_node(self, v: NodeId) -> None:
        """Remove node ``v`` and all incident edges."""
        if v not in self._adj:
            raise NodeNotFoundError(v)
        for w in self._adj.pop(v):
            self._adj[w].discard(v)

    # -- queries -----------------------------------------------------------

    def __contains__(self, v: object) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._adj)

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def nodes(self) -> List[NodeId]:
        """All node ids in ascending order."""
        return sorted(self._adj)

    def edges(self) -> List[Edge]:
        """All edges as sorted ``(u, v)`` pairs with ``u < v``, ascending."""
        out: List[Edge] = []
        for u, nbrs in self._adj.items():
            out.extend((u, v) for v in nbrs if u < v)
        out.sort()
        return out

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        return v in self._adj.get(u, ())

    def neighbours(self, v: NodeId) -> FrozenSet[NodeId]:
        """Neighbour set of ``v`` (read-only snapshot).

        Raises:
            NodeNotFoundError: if ``v`` is not in the graph.
        """
        try:
            return frozenset(self._adj[v])
        except KeyError:
            raise NodeNotFoundError(v) from None

    def neighbours_view(self, v: NodeId) -> Set[NodeId]:
        """Internal neighbour set of ``v`` — **do not mutate**.

        Avoids the copy made by :meth:`neighbours`; used by hot paths
        (coverage sets, gateway selection) that only read.
        """
        try:
            return self._adj[v]
        except KeyError:
            raise NodeNotFoundError(v) from None

    def degree(self, v: NodeId) -> int:
        """Degree of ``v``."""
        return len(self.neighbours_view(v))

    def closed_neighbourhood(self, v: NodeId) -> Set[NodeId]:
        """``N(v) ∪ {v}`` — the paper's ``N^1(v)`` convention includes ``v``."""
        out = set(self.neighbours_view(v))
        out.add(v)
        return out

    # -- conversion ----------------------------------------------------------

    def to_csr(self):
        """The immutable :class:`~repro.graph.csr.CSRGraph` form of this graph.

        A snapshot — later mutations of this graph do not propagate.  The
        bridge the array kernels use to accelerate large set-based graphs.
        """
        from repro.graph.csr import CSRGraph

        return CSRGraph.from_graph(self)

    @classmethod
    def from_csr(cls, csr) -> "Graph":
        """A mutable graph equal to the given :class:`~repro.graph.csr.CSRGraph`."""
        return csr.to_graph()

    def copy(self) -> "Graph":
        """Deep copy of the graph."""
        g = Graph()
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        return g

    def subgraph(self, nodes: Iterable[NodeId]) -> "Graph":
        """Induced subgraph on ``nodes`` (unknown ids raise)."""
        keep = set(nodes)
        for v in keep:
            if v not in self._adj:
                raise NodeNotFoundError(v)
        g = Graph()
        for v in keep:
            g.add_node(v)
            for w in self._adj[v] & keep:
                g.add_edge(v, w)
        return g

    def relabelled(self, mapping: Dict[NodeId, NodeId]) -> "Graph":
        """Graph with node ids replaced via ``mapping`` (must be a bijection
        defined on every node)."""
        missing = [v for v in self._adj if v not in mapping]
        if missing:
            raise NodeNotFoundError(missing[0])
        if len(set(mapping[v] for v in self._adj)) != len(self._adj):
            raise ValueError("relabelling mapping is not injective on the node set")
        g = Graph()
        for v in self._adj:
            g.add_node(mapping[v])
        for u, v in self.edges():
            g.add_edge(mapping[u], mapping[v])
        return g

    def adjacency_matrix(self) -> Tuple[np.ndarray, List[NodeId]]:
        """Dense boolean adjacency matrix plus the row/column id order."""
        order = self.nodes()
        index = {v: i for i, v in enumerate(order)}
        mat = np.zeros((len(order), len(order)), dtype=bool)
        for u, v in self.edges():
            i, j = index[u], index[v]
            mat[i, j] = mat[j, i] = True
        return mat, order

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self.num_nodes}, m={self.num_edges})"
