"""Set-property predicates: dominating sets, independent sets, CDSs.

These are the correctness yardsticks for everything the paper builds:
clusterheads must form an independent dominating set, and both backbones
must be connected dominating sets (Theorems 1 and 2).  Degree statistics
back the average-degree calibration checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set

import numpy as np

from repro.errors import NodeNotFoundError
from repro.graph.adjacency import Graph
from repro.graph.connectivity import is_connected
from repro.types import NodeId


def _validated(graph: Graph, nodes: Iterable[NodeId]) -> Set[NodeId]:
    out = set(nodes)
    for v in out:
        if v not in graph:
            raise NodeNotFoundError(v)
    return out


def is_dominating_set(graph: Graph, nodes: Iterable[NodeId]) -> bool:
    """Whether every node is in ``nodes`` or adjacent to a node in it."""
    dom = _validated(graph, nodes)
    for v in graph:
        if v in dom:
            continue
        if not (graph.neighbours_view(v) & dom):
            return False
    return True


def is_independent_set(graph: Graph, nodes: Iterable[NodeId]) -> bool:
    """Whether no two nodes in ``nodes`` are adjacent."""
    ind = _validated(graph, nodes)
    for v in ind:
        if graph.neighbours_view(v) & ind:
            return False
    return True


def is_connected_dominating_set(graph: Graph, nodes: Iterable[NodeId]) -> bool:
    """Whether ``nodes`` dominates the graph and induces a connected subgraph.

    By convention an empty set is a CDS only of the empty graph, and a CDS of
    a single-node graph is that node itself.
    """
    cds = _validated(graph, nodes)
    if graph.num_nodes == 0:
        return len(cds) == 0
    if not cds:
        return False
    if not is_dominating_set(graph, cds):
        return False
    return is_connected(graph.subgraph(cds))


def is_maximal_independent_set(graph: Graph, nodes: Iterable[NodeId]) -> bool:
    """Whether ``nodes`` is independent and no node can be added to it.

    For an independent set, maximality is equivalent to being dominating;
    lowest-ID clusterheads satisfy both.
    """
    ind = _validated(graph, nodes)
    return is_independent_set(graph, ind) and is_dominating_set(graph, ind)


@dataclass(frozen=True, slots=True)
class DegreeStats:
    """Summary of a graph's degree distribution."""

    mean: float
    minimum: int
    maximum: int
    std: float

    @property
    def delta(self) -> int:
        """The paper's ``Δ`` — the maximum node degree."""
        return self.maximum


def degree_stats(graph: Graph) -> DegreeStats:
    """Degree statistics of ``graph`` (empty graph yields all zeros)."""
    if graph.num_nodes == 0:
        return DegreeStats(0.0, 0, 0, 0.0)
    degrees = np.array([graph.degree(v) for v in graph], dtype=float)
    return DegreeStats(
        mean=float(degrees.mean()),
        minimum=int(degrees.min()),
        maximum=int(degrees.max()),
        std=float(degrees.std()),
    )
