"""The :class:`Network` value object: topology + geometry + parameters.

A *network* bundles what the paper's simulation environment produces for one
sample: node positions in a working area, the shared transmission range, and
the resulting unit disk graph.  Experiment code passes networks around rather
than bare graphs so that mobility and re-construction keep the geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geometry.area import Area
from repro.graph.adjacency import Graph
from repro.graph.build import unit_disk_graph
from repro.types import NodeId


@dataclass(frozen=True)
class Network:
    """An immutable snapshot of a MANET.

    Attributes:
        graph: The unit disk graph over the node ids.
        positions: Mapping node id -> ``(x, y)`` position.
        radius: The common transmission range.
        area: The working space the nodes live in.
    """

    graph: Graph
    positions: Dict[NodeId, tuple[float, float]]
    radius: float
    area: Area = field(default_factory=Area.paper)
    torus: bool = False

    def __post_init__(self) -> None:
        if set(self.positions) != set(self.graph.nodes()):
            raise GeometryError("positions and graph must cover the same node ids")
        if not (self.radius > 0.0):
            raise GeometryError(f"radius must be positive, got {self.radius}")

    @property
    def num_nodes(self) -> int:
        """Number of hosts."""
        return self.graph.num_nodes

    def position_array(self, order: Optional[Sequence[NodeId]] = None) -> np.ndarray:
        """Positions as an ``(n, 2)`` array in ``order`` (default: ascending ids)."""
        ids = list(order) if order is not None else self.graph.nodes()
        return np.array([self.positions[v] for v in ids], dtype=float)

    def moved(self, new_positions: np.ndarray,
              order: Optional[Sequence[NodeId]] = None) -> "Network":
        """A new :class:`Network` with updated positions and a rebuilt graph.

        Args:
            new_positions: ``(n, 2)`` array aligned with ``order``.
            order: Node ids corresponding to the rows; defaults to ascending.

        Returns:
            A fresh network with the same ids, radius and area.
        """
        ids = list(order) if order is not None else self.graph.nodes()
        pts = np.asarray(new_positions, dtype=float)
        if pts.shape != (len(ids), 2):
            raise GeometryError(
                f"expected positions of shape ({len(ids)}, 2), got {pts.shape}"
            )
        graph = unit_disk_graph(
            pts, self.radius, ids=ids,
            torus=self.area if self.torus else None,
        )
        return Network(
            graph=graph,
            positions={v: (float(x), float(y)) for v, (x, y) in zip(ids, pts)},
            radius=self.radius,
            area=self.area,
            torus=self.torus,
        )

    @classmethod
    def from_positions(
        cls,
        positions: np.ndarray,
        radius: float,
        *,
        ids: Optional[Sequence[NodeId]] = None,
        area: Optional[Area] = None,
        torus: bool = False,
    ) -> "Network":
        """Build a network (graph included) from raw positions.

        Args:
            positions: ``(n, 2)`` array.
            radius: Transmission range.
            ids: Node ids per row (default ``0..n-1``).
            area: Working space (default the paper's ``100 x 100``).
            torus: Wrap distances around ``area`` (border-free topology).
        """
        pts = np.asarray(positions, dtype=float)
        resolved_area = area or Area.paper()
        graph = unit_disk_graph(
            pts, radius, ids=ids, torus=resolved_area if torus else None
        )
        id_list = list(ids) if ids is not None else list(range(pts.shape[0]))
        return cls(
            graph=graph,
            positions={v: (float(x), float(y)) for v, (x, y) in zip(id_list, pts)},
            radius=radius,
            area=resolved_area,
            torus=torus,
        )
