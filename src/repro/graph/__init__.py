"""Graph substrate: adjacency structure, unit-disk construction, analysis.

A deliberately small, dependency-light graph layer.  :class:`Graph` stores
undirected adjacency sets keyed by integer node ids; everything the paper
needs (k-hop neighbourhoods, connectivity, dominating/independent-set
predicates) lives here, with a :mod:`networkx` bridge for interoperability.
"""

from repro.graph.adjacency import Graph
from repro.graph.build import unit_disk_graph
from repro.graph.connectivity import (
    connected_components,
    is_connected,
    is_strongly_connected,
    UnionFind,
)
from repro.graph.generators import (
    chain_graph,
    grid_graph,
    paper_figure3_graph,
    random_geometric_network,
    star_graph,
)
from repro.graph.network import Network
from repro.graph.nx_compat import from_networkx, to_networkx
from repro.graph.properties import (
    degree_stats,
    is_connected_dominating_set,
    is_dominating_set,
    is_independent_set,
)
from repro.graph.traversal import (
    bfs_distances,
    bfs_tree,
    k_hop_neighbourhood,
    shortest_path,
)

__all__ = [
    "Graph",
    "Network",
    "unit_disk_graph",
    "random_geometric_network",
    "paper_figure3_graph",
    "chain_graph",
    "grid_graph",
    "star_graph",
    "bfs_distances",
    "bfs_tree",
    "k_hop_neighbourhood",
    "shortest_path",
    "is_connected",
    "is_strongly_connected",
    "connected_components",
    "UnionFind",
    "is_dominating_set",
    "is_independent_set",
    "is_connected_dominating_set",
    "degree_stats",
    "to_networkx",
    "from_networkx",
]
