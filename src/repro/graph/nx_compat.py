"""Bridge to :mod:`networkx`.

The library's own :class:`~repro.graph.adjacency.Graph` keeps the core free
of heavyweight dependencies, but users analysing backbones will often want
networkx.  Import of networkx is deferred so the core works without it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.graph.adjacency import Graph

if TYPE_CHECKING:  # pragma: no cover
    import networkx as nx


def to_networkx(graph: Graph) -> "nx.Graph":
    """Convert to an undirected :class:`networkx.Graph` with the same ids."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(graph.nodes())
    g.add_edges_from(graph.edges())
    return g


def from_networkx(nx_graph: "nx.Graph") -> Graph:
    """Convert an undirected networkx graph with integer node ids.

    Raises:
        TypeError: if any node id is not an integer (the library's ordering
            semantics need ints).
    """
    g = Graph()
    for v in nx_graph.nodes():
        if not isinstance(v, (int,)) or isinstance(v, bool):
            raise TypeError(
                f"node ids must be integers for lowest-ID semantics, got {v!r}"
            )
        g.add_node(int(v))
    for u, v in nx_graph.edges():
        if u != v:  # drop self-loops rather than erroring on import
            g.add_edge(int(u), int(v))
    return g
