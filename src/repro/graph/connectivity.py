"""Connectivity predicates: components, connectedness, strong connectivity.

The paper discards disconnected random networks, and Theorem 1 rests on the
*strong* connectivity of the directed cluster graph, so both undirected and
directed checks live here.  Directed graphs are represented as plain
``dict[node, set[node]]`` successor maps (the cluster graph is tiny).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Mapping, Set

from repro.graph.adjacency import Graph
from repro.types import NodeId


class UnionFind:
    """Disjoint-set forest with path halving and union by size.

    Used by the maintenance extension to track connectivity incrementally as
    links appear.
    """

    __slots__ = ("_parent", "_size", "_components")

    def __init__(self, elements: Iterable[NodeId] = ()) -> None:
        self._parent: Dict[NodeId, NodeId] = {}
        self._size: Dict[NodeId, int] = {}
        self._components = 0
        for e in elements:
            self.add(e)

    def add(self, e: NodeId) -> None:
        """Register ``e`` as a singleton set (no-op if present)."""
        if e not in self._parent:
            self._parent[e] = e
            self._size[e] = 1
            self._components += 1

    def find(self, e: NodeId) -> NodeId:
        """Representative of ``e``'s set (with path halving)."""
        parent = self._parent
        while parent[e] != e:
            parent[e] = parent[parent[e]]
            e = parent[e]
        return e

    def union(self, a: NodeId, b: NodeId) -> bool:
        """Merge the sets of ``a`` and ``b``; returns ``True`` if they were
        previously disjoint."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._components -= 1
        return True

    def connected(self, a: NodeId, b: NodeId) -> bool:
        """Whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    @property
    def num_components(self) -> int:
        """Current number of disjoint sets."""
        return self._components


def connected_components(graph: Graph) -> List[Set[NodeId]]:
    """Connected components, each as a node set, largest-first."""
    seen: Set[NodeId] = set()
    comps: List[Set[NodeId]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        comp = {start}
        queue: deque[NodeId] = deque([start])
        while queue:
            v = queue.popleft()
            for w in graph.neighbours_view(v):
                if w not in comp:
                    comp.add(w)
                    queue.append(w)
        seen |= comp
        comps.append(comp)
    comps.sort(key=len, reverse=True)
    return comps


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (the empty graph counts as connected)."""
    n = graph.num_nodes
    if n <= 1:
        return True
    start = next(iter(graph))
    seen = {start}
    queue: deque[NodeId] = deque([start])
    while queue:
        v = queue.popleft()
        for w in graph.neighbours_view(v):
            if w not in seen:
                seen.add(w)
                queue.append(w)
    return len(seen) == n


def _directed_reach(succ: Mapping[NodeId, Set[NodeId]], start: NodeId) -> Set[NodeId]:
    seen = {start}
    queue: deque[NodeId] = deque([start])
    while queue:
        v = queue.popleft()
        for w in succ.get(v, ()):
            if w not in seen:
                seen.add(w)
                queue.append(w)
    return seen


def is_strongly_connected(successors: Mapping[NodeId, Set[NodeId]]) -> bool:
    """Strong connectivity of a directed graph given as a successor map.

    Every node must appear as a key (possibly with an empty successor set).
    Uses the classic two-BFS test: all nodes reachable from an arbitrary
    root in the graph and in its transpose.
    """
    nodes = set(successors)
    for targets in successors.values():
        stray = targets - nodes
        if stray:
            raise KeyError(f"successor {next(iter(stray))} missing from node set")
    if len(nodes) <= 1:
        return True
    root = next(iter(nodes))
    if _directed_reach(successors, root) != nodes:
        return False
    transpose: Dict[NodeId, Set[NodeId]] = {v: set() for v in nodes}
    for v, targets in successors.items():
        for w in targets:
            transpose[w].add(v)
    return _directed_reach(transpose, root) == nodes
