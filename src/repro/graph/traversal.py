"""Breadth-first traversals: distances, k-hop neighbourhoods, paths.

These primitives back the coverage-set computations.  The paper writes
``N^k(v)`` for the k-hop neighbour set *including v itself*;
:func:`k_hop_neighbourhood` follows that convention.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set

from repro.errors import NodeNotFoundError
from repro.graph.adjacency import Graph
from repro.types import NodeId, Path


def bfs_distances(graph: Graph, source: NodeId,
                  max_depth: Optional[int] = None) -> Dict[NodeId, int]:
    """Hop distances from ``source`` to every reachable node.

    Args:
        graph: The graph.
        source: Start node.
        max_depth: If given, stop exploring past this depth (distances in the
            result are then ``<= max_depth``).

    Returns:
        Mapping node -> hop distance (``source`` maps to 0).  Unreachable
        nodes are absent.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    dist: Dict[NodeId, int] = {source: 0}
    queue: deque[NodeId] = deque([source])
    while queue:
        v = queue.popleft()
        d = dist[v]
        if max_depth is not None and d >= max_depth:
            continue
        for w in graph.neighbours_view(v):
            if w not in dist:
                dist[w] = d + 1
                queue.append(w)
    return dist


def bfs_tree(graph: Graph, source: NodeId) -> Dict[NodeId, Optional[NodeId]]:
    """BFS parent pointers from ``source`` (source maps to ``None``)."""
    if source not in graph:
        raise NodeNotFoundError(source)
    parent: Dict[NodeId, Optional[NodeId]] = {source: None}
    queue: deque[NodeId] = deque([source])
    while queue:
        v = queue.popleft()
        for w in graph.neighbours_view(v):
            if w not in parent:
                parent[w] = v
                queue.append(w)
    return parent


def k_hop_neighbourhood(graph: Graph, v: NodeId, k: int) -> Set[NodeId]:
    """The paper's ``N^k(v)``: all nodes within ``k`` hops, including ``v``."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    return set(bfs_distances(graph, v, max_depth=k))


def nodes_at_distance(graph: Graph, v: NodeId, k: int) -> Set[NodeId]:
    """Nodes at hop distance **exactly** ``k`` from ``v``."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    dist = bfs_distances(graph, v, max_depth=k)
    return {w for w, d in dist.items() if d == k}


def shortest_path(graph: Graph, source: NodeId, target: NodeId) -> Optional[Path]:
    """A shortest path from ``source`` to ``target`` (BFS; ties broken by
    neighbour iteration order made deterministic via sorting).

    Returns:
        The node sequence including both endpoints, or ``None`` if
        unreachable.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    if target not in graph:
        raise NodeNotFoundError(target)
    if source == target:
        return [source]
    parent: Dict[NodeId, Optional[NodeId]] = {source: None}
    queue: deque[NodeId] = deque([source])
    while queue:
        v = queue.popleft()
        for w in sorted(graph.neighbours_view(v)):
            if w in parent:
                continue
            parent[w] = v
            if w == target:
                path: List[NodeId] = [w]
                cur: Optional[NodeId] = v
                while cur is not None:
                    path.append(cur)
                    cur = parent[cur]
                path.reverse()
                return path
            queue.append(w)
    return None


def eccentricity(graph: Graph, v: NodeId) -> int:
    """Greatest hop distance from ``v`` to any reachable node."""
    dist = bfs_distances(graph, v)
    return max(dist.values())
