"""Unit disk graph construction from node positions.

The paper models a MANET as a unit disk graph: hosts share a transmission
range ``r`` and are neighbours iff their distance is **strictly less than**
``r``.  Two construction strategies are provided and selected automatically:

* a dense vectorised ``O(n^2)`` distance-matrix pass (fast for the paper's
  ``n <= 100`` networks thanks to numpy), and
* a :class:`repro.geometry.grid.SpatialGrid` sweep with expected ``O(n)``
  work for large ``n``.

Both produce identical graphs; a test asserts the equivalence.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro import perf
from repro.errors import GeometryError
from repro.geometry.area import Area
from repro.geometry.grid import SpatialGrid
from repro.graph.adjacency import Graph
from repro.types import NodeId

#: Above this node count the grid sweep beats the dense matrix pass.
#: Re-measured 2026-08 after the batched ``SpatialGrid.pair_arrays``
#: stencil sweep replaced the per-cell Python loop: uniform placements at
#: target degree 12 (min-of-25 reps, seeds 7/11/23) put the dense pass
#: ahead through n≈40 (0.5–0.9x grid time) and behind from n≈60 on
#: (1.1–1.3x, 2x by n=150); the old Python-loop grid justified 1200.
_DENSE_CUTOVER = 48


@perf.timed("construction")
def unit_disk_graph(
    positions: np.ndarray,
    radius: float,
    *,
    ids: Optional[Sequence[NodeId]] = None,
    method: str = "auto",
    torus: Optional[Area] = None,
) -> Graph:
    """Build the unit disk graph over ``positions`` with range ``radius``.

    Args:
        positions: ``(n, 2)`` coordinate array.
        radius: Common transmission range; nodes are adjacent iff their
            Euclidean distance is strictly below ``radius``.
        ids: Node ids for the rows of ``positions``; defaults to ``0..n-1``.
            Ids drive lowest-ID clustering, so callers wanting an id
            assignment independent of position order pass a permutation here.
        method: ``"dense"``, ``"grid"`` or ``"auto"`` (pick by size).
        torus: If given, distances wrap around this area (no borders) —
            used by border-effect ablations; the analytic degree formula is
            then exact.  Only the dense construction supports it.

    Returns:
        The unit disk :class:`~repro.graph.adjacency.Graph`.
    """
    pts = np.asarray(positions, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise GeometryError(f"expected (n, 2) positions, got shape {pts.shape}")
    if not (radius > 0.0 and np.isfinite(radius)):
        raise GeometryError(f"radius must be positive and finite, got {radius}")
    n = pts.shape[0]
    if ids is None:
        id_list: Sequence[NodeId] = range(n)
    else:
        id_list = list(ids)
        if len(id_list) != n:
            raise GeometryError(
                f"got {len(id_list)} ids for {n} positions"
            )
        if len(set(id_list)) != n:
            raise GeometryError("node ids must be unique")
    if method not in ("auto", "dense", "grid"):
        raise GeometryError(f"unknown construction method {method!r}")
    if torus is not None:
        if method == "grid":
            raise GeometryError(
                "toroidal distances are only supported by the dense "
                "construction"
            )
        method = "dense"
    if method == "auto":
        method = "dense" if n <= _DENSE_CUTOVER else "grid"

    graph = Graph(nodes=id_list)
    if n < 2:
        return graph
    if method == "dense":
        _build_dense(graph, pts, radius, id_list, torus)
    else:
        _build_grid(graph, pts, radius, id_list)
    return graph


def _build_dense(graph: Graph, pts: np.ndarray, radius: float,
                 ids: Sequence[NodeId], torus: Optional[Area] = None) -> None:
    """Vectorised pairwise-distance construction (O(n^2) memory)."""
    diff = np.abs(pts[:, None, :] - pts[None, :, :])
    if torus is not None:
        extent = np.array([torus.width, torus.height])
        diff = np.minimum(diff, extent - diff)
    dist2 = np.einsum("ijk,ijk->ij", diff, diff)
    close = dist2 < radius * radius
    iu, ju = np.triu_indices(pts.shape[0], k=1)
    # .tolist() turns numpy scalars into plain ints (consistent dict keys)
    # and add_edges hoists the per-pair dict lookups — together ~2x faster
    # than an add_edge loop on this hot path.
    us = iu[close[iu, ju]].tolist()
    vs = ju[close[iu, ju]].tolist()
    graph.add_edges((ids[i], ids[j]) for i, j in zip(us, vs))


def _build_grid(graph: Graph, pts: np.ndarray, radius: float,
                ids: Sequence[NodeId]) -> None:
    """Spatial-hash construction (expected O(n) for uniform placements)."""
    grid = SpatialGrid(pts, cell_size=radius)
    us, vs = grid.pair_arrays(radius)
    graph.add_edges(
        (ids[i], ids[j]) for i, j in zip(us.tolist(), vs.tolist())
    )


@perf.timed("construction")
def unit_disk_csr(
    positions: np.ndarray,
    radius: float,
    *,
    ids: Optional[Sequence[NodeId]] = None,
    torus: Optional[Area] = None,
):
    """Build the unit disk graph directly in CSR form.

    The large-``n`` construction path: positions go straight through the
    vectorised :meth:`~repro.geometry.grid.SpatialGrid.pair_arrays` cell
    sweep into :class:`~repro.graph.csr.CSRGraph` arrays — no ``Graph``
    object, no Python edge list.  Same arguments and validation as
    :func:`unit_disk_graph` (minus ``method``: the sweep is always the
    grid one, except under ``torus`` which forces the dense pass).

    Returns:
        The unit disk :class:`~repro.graph.csr.CSRGraph`.
    """
    from repro.graph.csr import csr_from_positions

    pts = np.asarray(positions, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise GeometryError(f"expected (n, 2) positions, got shape {pts.shape}")
    if not (radius > 0.0 and np.isfinite(radius)):
        raise GeometryError(f"radius must be positive and finite, got {radius}")
    n = pts.shape[0]
    if ids is not None:
        id_list = list(ids)
        if len(id_list) != n:
            raise GeometryError(f"got {len(id_list)} ids for {n} positions")
        if len(set(id_list)) != n:
            raise GeometryError("node ids must be unique")
        ids = id_list
    return csr_from_positions(pts, radius, ids=ids, torus=torus)
