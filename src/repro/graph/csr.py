"""Immutable CSR adjacency — the array-native graph core for hot paths.

:class:`CSRGraph` stores an undirected graph in compressed sparse row form:
``indptr`` (``int32``, length ``n + 1``) and ``indices`` (``int32``, the
concatenated, per-row-sorted neighbour lists), plus the node-id array
``ids`` (ascending).  Rows are *ranks in id order*, so row comparisons are
id comparisons — exactly what lowest-ID clustering needs.

The CSR form is the substrate for the per-trial array kernels (unit-disk
construction, clustering, coverage sets, gateway selection); the set-based
:class:`~repro.graph.adjacency.Graph` remains the mutable view used by the
dynamic/mobility paths, bridged through :meth:`CSRGraph.to_graph` /
:meth:`CSRGraph.from_graph` (and ``Graph.to_csr`` / ``Graph.from_csr``).
Both directions preserve the graph exactly, and every kernel is gated on
bit-identical results against the set-based implementation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GeometryError, NodeNotFoundError
from repro.geometry.area import Area
from repro.geometry.grid import SpatialGrid, grouped_ranges
from repro.types import NodeId

if TYPE_CHECKING:
    from repro.graph.adjacency import Graph

#: Node count at which the object-layer entry points (coverage sets, static
#: backbone) convert to CSR and run the array kernels instead of the
#: dict/set implementation.  Conversion costs O(n + m) Python work, so tiny
#: paper-scale networks (n <= 100) stay on the set path; from about a
#: thousand nodes the vectorised kernels win by a growing margin (see
#: benchmarks/bench_construction_speed.py and docs/csr_core.md).
CSR_CUTOVER = 1024


class CSRGraph:
    """An immutable undirected graph in CSR form over integer node ids.

    Do not mutate the arrays; every consumer (and the bridge back to
    :class:`~repro.graph.adjacency.Graph`) assumes rows are sorted and the
    structure is fixed.  Use :meth:`to_graph` for a mutable copy.

    Args:
        indptr: ``(n + 1,)`` row-offset array.
        indices: Concatenated neighbour rows, sorted within each row.
        ids: Node id per row, strictly ascending; ``None`` means ``0..n-1``.
    """

    __slots__ = ("indptr", "indices", "_ids", "_identity_ids")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        ids: Optional[np.ndarray] = None,
    ) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int32)
        self.indices = np.ascontiguousarray(indices, dtype=np.int32)
        n = self.indptr.shape[0] - 1
        if ids is None:
            self._ids = None
            self._identity_ids = True
        else:
            ids = np.ascontiguousarray(ids, dtype=np.int64)
            if ids.shape[0] != n:
                raise GeometryError(
                    f"got {ids.shape[0]} ids for {n} CSR rows"
                )
            if n and not (np.diff(ids) > 0).all():
                raise GeometryError("CSR ids must be strictly ascending")
            self._identity_ids = bool(
                n == 0 or (ids[0] == 0 and ids[-1] == n - 1)
            )
            self._ids = None if self._identity_ids else ids

    # -- shape -------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes (rows)."""
        return self.indptr.shape[0] - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self.indices.shape[0] // 2

    @property
    def degrees(self) -> np.ndarray:
        """Degree per row."""
        return np.diff(self.indptr)

    @property
    def ids(self) -> np.ndarray:
        """Node id per row (ascending)."""
        if self._ids is None:
            return np.arange(self.num_nodes, dtype=np.int64)
        return self._ids

    @property
    def has_identity_ids(self) -> bool:
        """Whether row ``r`` is node id ``r`` (the common fast path)."""
        return self._identity_ids

    # -- queries -----------------------------------------------------------

    def row(self, r: int) -> np.ndarray:
        """Neighbour rows of row ``r`` (a sorted, read-only slice)."""
        return self.indices[self.indptr[r]:self.indptr[r + 1]]

    def row_of(self, v: NodeId) -> int:
        """Row index of node id ``v``.

        Raises:
            NodeNotFoundError: if ``v`` is not a node.
        """
        if self._ids is None:
            r = int(v)
            if 0 <= r < self.num_nodes:
                return r
            raise NodeNotFoundError(v)
        r = int(np.searchsorted(self._ids, v))
        if r < self.num_nodes and self._ids[r] == v:
            return r
        raise NodeNotFoundError(v)

    def neighbour_ids(self, v: NodeId) -> np.ndarray:
        """Neighbour node ids of node id ``v`` (ascending)."""
        rows = self.row(self.row_of(v))
        return rows.astype(np.int64) if self._ids is None else self._ids[rows]

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        try:
            ru, rv = self.row_of(u), self.row_of(v)
        except NodeNotFoundError:
            return False
        row = self.row(ru)
        k = int(np.searchsorted(row, rv))
        return k < row.shape[0] and int(row[k]) == rv

    def edge_keys(self) -> np.ndarray:
        """All directed edges as sorted int64 keys ``src_row * n + dst_row``.

        The array is globally ascending (rows ascend, neighbours ascend
        within a row), so pair-adjacency tests over many ``(u, v)`` pairs
        are one vectorised :func:`np.searchsorted` — the membership
        primitive of the coverage kernels.
        """
        n = self.num_nodes
        src = np.repeat(np.arange(n, dtype=np.int64), self.degrees)
        return src * n + self.indices

    def gather_rows(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenated neighbour lists of ``rows`` plus per-row counts.

        Returns ``(flat, counts)`` where ``flat`` holds the neighbours of
        ``rows[0]``, then ``rows[1]``, … and ``counts[k]`` is the degree of
        ``rows[k]`` — the frontier-expansion primitive of the BFS kernels.
        """
        rows = np.asarray(rows, dtype=np.int64)
        counts = (self.indptr[rows + 1] - self.indptr[rows]).astype(np.int64)
        flat = self.indices[grouped_ranges(self.indptr[rows], counts)]
        return flat, counts

    # -- derived structure -------------------------------------------------

    def subgraph_rows(self, rows: np.ndarray) -> "CSRGraph":
        """Induced subgraph on the given rows (must be sorted, unique).

        Edges leaving the row set are dropped; surviving neighbours are
        renumbered to the new compact row space.  Ids are carried over.
        """
        rows = np.asarray(rows, dtype=np.int64)
        n = self.num_nodes
        keep = np.zeros(n, dtype=bool)
        keep[rows] = True
        rank = np.empty(n, dtype=np.int64)
        rank[rows] = np.arange(rows.shape[0], dtype=np.int64)
        flat, counts = self.gather_rows(rows)
        owner = np.repeat(np.arange(rows.shape[0], dtype=np.int64), counts)
        inside = keep[flat]
        new_counts = np.bincount(owner[inside], minlength=rows.shape[0])
        indptr = np.zeros(rows.shape[0] + 1, dtype=np.int64)
        np.cumsum(new_counts, out=indptr[1:])
        indices = rank[flat[inside]]
        return CSRGraph(indptr, indices, ids=self.ids[rows])

    def connected_component_labels(self) -> np.ndarray:
        """Component label per row (labels are arbitrary small ints).

        Array BFS: repeatedly seed from the first unvisited row and expand
        whole frontiers with vectorised gathers, so the total work is
        ``O(n + m)`` plus one pass per BFS level.
        """
        n = self.num_nodes
        labels = np.full(n, -1, dtype=np.int64)
        label = 0
        cursor = 0
        while True:
            while cursor < n and labels[cursor] >= 0:
                cursor += 1
            if cursor >= n:
                break
            frontier = np.array([cursor], dtype=np.int64)
            labels[cursor] = label
            while frontier.size:
                flat, _ = self.gather_rows(frontier)
                fresh = flat[labels[flat] < 0]
                if fresh.size == 0:
                    break
                frontier = sorted_unique(fresh)
                labels[frontier] = label
            label += 1
        return labels

    def giant_component_rows(self) -> np.ndarray:
        """Rows of the largest connected component (sorted).

        Ties break toward the component with the smallest row, matching
        ``max(connected_components(graph), key=len)`` over the set-based
        implementation, whose components come out in ascending discovery
        order.
        """
        if self.num_nodes == 0:
            return np.empty(0, dtype=np.int64)
        labels = self.connected_component_labels()
        sizes = np.bincount(labels)
        return np.flatnonzero(labels == int(np.argmax(sizes)))

    # -- bridge ------------------------------------------------------------

    def to_graph(self) -> "Graph":
        """Materialise a mutable :class:`~repro.graph.adjacency.Graph`.

        The inverse of :meth:`from_graph`; round-tripping either way
        reproduces the same graph exactly.
        """
        from repro.graph.adjacency import Graph

        ids = self.ids
        graph = Graph()
        adj = graph._adj
        id_list = ids.tolist()
        indptr = self.indptr
        if self._ids is None:
            nbrs = self.indices.tolist()
        else:
            nbrs = ids[self.indices].tolist()
        for r, v in enumerate(id_list):
            adj[v] = set(nbrs[indptr[r]:indptr[r + 1]])
        return graph

    @classmethod
    def from_graph(cls, graph: "Graph") -> "CSRGraph":
        """Build the CSR form of a set-based graph."""
        id_list = graph.nodes()
        n = len(id_list)
        ids = np.asarray(id_list, dtype=np.int64)
        identity = bool(n == 0 or (ids[0] == 0 and ids[-1] == n - 1))
        adj = graph._adj
        counts = np.fromiter(
            (len(adj[v]) for v in id_list), dtype=np.int64, count=n
        )
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        flat_ids = np.fromiter(
            (w for v in id_list for w in sorted(adj[v])),
            dtype=np.int64,
            count=int(indptr[-1]),
        )
        if identity:
            indices = flat_ids
        else:
            indices = np.searchsorted(ids, flat_ids)
        return cls(indptr, indices, ids=ids)

    @classmethod
    def from_pairs(
        cls,
        n: int,
        us: np.ndarray,
        vs: np.ndarray,
        ids: Optional[Sequence[NodeId]] = None,
    ) -> "CSRGraph":
        """Build CSR from unordered edge pairs over position indices.

        Args:
            n: Number of nodes (pairs may omit isolated ones).
            us, vs: Endpoint index arrays — each unordered edge exactly once.
            ids: Node id per position index; rows come out in ascending id
                order (a permuted id assignment relabels the rows).
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        id_arr: Optional[np.ndarray] = None
        if ids is not None:
            id_arr = np.asarray(list(ids), dtype=np.int64)
            perm = np.argsort(id_arr, kind="stable")
            rank = np.empty(n, dtype=np.int64)
            rank[perm] = np.arange(n, dtype=np.int64)
            us, vs = rank[us], rank[vs]
            id_arr = id_arr[perm]
        src = np.concatenate((us, vs))
        dst = np.concatenate((vs, us))
        # Sorting the packed directed-edge keys and unpacking beats an
        # argsort-and-gather: the destination column *is* ``key % n``.
        keys = np.sort(src * n + dst)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
        return cls(indptr, keys % n, ids=id_arr)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.ids, other.ids)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(n={self.num_nodes}, m={self.num_edges})"


def csr_from_positions(
    positions: np.ndarray,
    radius: float,
    *,
    ids: Optional[Sequence[NodeId]] = None,
    torus: Optional[Area] = None,
) -> CSRGraph:
    """Unit-disk CSR adjacency straight from positions.

    The default path runs the :class:`~repro.geometry.grid.SpatialGrid`
    cell sweep fully vectorised (:meth:`SpatialGrid.pair_arrays`) — no
    intermediate Python edge list exists at any point.  With ``torus`` the
    wrapped pairwise distances are computed densely (``O(n^2)`` memory),
    matching the dense set-based builder exactly.

    Args:
        positions: ``(n, 2)`` coordinate array.
        radius: Nodes are adjacent iff strictly closer than this.
        ids: Node ids per position row; defaults to ``0..n-1``.
        torus: Wrap distances around this area (dense path).
    """
    pts = np.asarray(positions, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise GeometryError(f"expected (n, 2) positions, got shape {pts.shape}")
    n = pts.shape[0]
    if n < 2:
        us = vs = np.empty(0, dtype=np.int64)
    elif torus is not None:
        diff = np.abs(pts[:, None, :] - pts[None, :, :])
        extent = np.array([torus.width, torus.height])
        diff = np.minimum(diff, extent - diff)
        dist2 = np.einsum("ijk,ijk->ij", diff, diff)
        iu, ju = np.triu_indices(n, k=1)
        close = dist2[iu, ju] < radius * radius
        us, vs = iu[close], ju[close]
    else:
        us, vs = SpatialGrid(pts, cell_size=radius).pair_arrays(radius)
    return CSRGraph.from_pairs(n, us, vs, ids=ids)


def apply_edge_delta(
    csr: CSRGraph,
    added: np.ndarray,
    removed: np.ndarray,
) -> CSRGraph:
    """A new :class:`CSRGraph` with an undirected edge delta applied.

    The mobility maintenance hot path: instead of re-running the whole
    cell sweep after a tick, the per-tick appeared/vanished edges are
    merged into the existing adjacency.  Removals become one vectorised
    membership mask over the sorted directed-key stream; insertions merge
    in with two ``searchsorted`` passes (the classic two-sorted-array
    merge), so no per-row Python work happens and rows without a changed
    edge are a straight memcpy.

    Args:
        csr: The current adjacency.
        added: Sorted unique canonical keys ``u * n + v`` (``u < v``, CSR
            rows) of edges to insert; none may already exist.
        removed: Sorted unique canonical keys of edges to delete; all must
            exist.

    Returns:
        The updated graph (ids carried over unchanged).

    Raises:
        GeometryError: if an added edge already exists or a removed edge
            does not — a corrupted delta would otherwise silently produce
            an adjacency that no longer matches any position snapshot.
    """
    n = csr.num_nodes
    added = np.asarray(added, dtype=np.int64)
    removed = np.asarray(removed, dtype=np.int64)
    if added.shape[0] == 0 and removed.shape[0] == 0:
        return csr
    old = csr.edge_keys()
    # Both directions of every undirected delta edge, as sorted directed
    # keys in the same ``src * n + dst`` space as ``edge_keys``.
    add_dir = np.sort(
        np.concatenate([(added // n) * n + added % n,
                        (added % n) * n + added // n])
    )
    rem_dir = np.sort(
        np.concatenate([(removed // n) * n + removed % n,
                        (removed % n) * n + removed // n])
    )
    if not searchsorted_membership(old, rem_dir).all():
        raise GeometryError("edge delta removes a non-existent edge")
    if searchsorted_membership(old, add_dir).any():
        raise GeometryError("edge delta adds an already-present edge")
    kept = old[~searchsorted_membership(rem_dir, old)]
    merged = np.empty(kept.shape[0] + add_dir.shape[0], dtype=np.int64)
    merged[np.arange(kept.shape[0], dtype=np.int64)
           + np.searchsorted(add_dir, kept)] = kept
    merged[np.arange(add_dir.shape[0], dtype=np.int64)
           + np.searchsorted(kept, add_dir)] = add_dir
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(merged // n, minlength=n), out=indptr[1:])
    return CSRGraph(indptr, merged % n, ids=None if csr.has_identity_ids
                    else csr.ids)


# -- segment primitives shared by the array kernels ------------------------


def row_reduce_min(
    vals: np.ndarray, offsets: np.ndarray, empty: int
) -> np.ndarray:
    """Per-group minimum of ``vals`` split at ``offsets`` (CSR-style).

    ``offsets`` has one more entry than there are groups; empty groups
    yield ``empty``.  The sentinel append keeps ``np.minimum.reduceat``
    well-defined for trailing empty groups.
    """
    if offsets.shape[0] == 1:
        return np.empty(0, dtype=vals.dtype if vals.size else np.int64)
    total = int(offsets[-1])
    padded = np.append(vals, empty)
    out = np.minimum.reduceat(padded, np.minimum(offsets[:-1], total))
    out[offsets[1:] == offsets[:-1]] = empty
    return out


def row_reduce_max(
    vals: np.ndarray, offsets: np.ndarray, empty: int
) -> np.ndarray:
    """Per-group maximum of ``vals`` split at ``offsets`` (CSR-style)."""
    if offsets.shape[0] == 1:
        return np.empty(0, dtype=vals.dtype if vals.size else np.int64)
    total = int(offsets[-1])
    padded = np.append(vals, empty)
    out = np.maximum.reduceat(padded, np.minimum(offsets[:-1], total))
    out[offsets[1:] == offsets[:-1]] = empty
    return out


def grouped_cartesian(
    a_counts: np.ndarray, b_counts: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Index arrays for the per-group cartesian product ``A_g × B_g``.

    Given per-group sizes of two parallel grouped arrays, returns
    ``(group, a_local, b_local)`` — for every group ``g`` and every
    ``(i, j)`` in ``range(a_counts[g]) × range(b_counts[g])`` one entry.
    Local offsets are relative to each group's start.
    """
    a_counts = np.asarray(a_counts, dtype=np.int64)
    b_counts = np.asarray(b_counts, dtype=np.int64)
    prod = a_counts * b_counts
    total = int(prod.sum())
    if total == 0:
        e = np.empty(0, dtype=np.int64)
        return e, e, e
    group = np.repeat(np.arange(prod.shape[0], dtype=np.int64), prod)
    ends = np.cumsum(prod)
    local = np.arange(total, dtype=np.int64) - np.repeat(ends - prod, prod)
    b_rep = np.repeat(b_counts, prod)
    return group, local // b_rep, local % b_rep


def _pack_limit(columns: int) -> int:
    """Largest ``n`` whose ``columns``-digit base-``n`` key fits an int64.

    Derived exactly (integer arithmetic, no float rounding): the packed key
    of ``columns`` values in ``[0, n)`` is at most ``n**columns - 1``, which
    must not exceed ``2**63 - 1``.
    """
    limit = int((2**63 - 1) ** (1.0 / columns))
    while (limit + 1) ** columns <= 2**63 - 1:
        limit += 1
    while limit**columns > 2**63 - 1:
        limit -= 1
    return limit


#: Largest node count whose (head, ch, v, w) witness quads still pack into
#: one int64 key (``n**4 <= 2**63``); 55108.
_PACK4_MAX = _pack_limit(4)

#: Largest node count for three-column packed keys (``n**3 <= 2**63``);
#: 2097151.  Beyond this, even the partially packed ``(a*n + b)*n + c``
#: keys silently wrap int64 and corrupt sort order, so every user must
#: fall back to an explicit lexsort.  Two-column ``a*n + b`` keys never
#: overflow: CSR rows are int32, so ``n**2 < 2**62``.
_PACK3_MAX = _pack_limit(3)


def sort_quads(
    n: int,
    head: np.ndarray,
    ch: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The witness quads sorted by ``(head, ch, v, w)``.

    Up to :data:`_PACK4_MAX` nodes all four columns pack into a single
    int64, so one :func:`np.sort` plus integer unpacking replaces a
    two-pass lexsort and four gathers.  Up to :data:`_PACK3_MAX` a
    three-column key still packs and a two-pass lexsort finishes the job;
    beyond that only pairs pack safely.  All tiers produce the identical
    order.
    """
    # int64 up front: int32 input (CSR indices) would wrap inside the
    # packed keys long before the tier guards account for it.
    head = np.asarray(head, dtype=np.int64)
    ch = np.asarray(ch, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    w = np.asarray(w, dtype=np.int64)
    if n <= _PACK4_MAX:
        key = np.sort(((head * n + ch) * n + v) * n + w)
        rest = key // n
        rest2 = rest // n
        return rest2 // n, rest2 % n, rest % n, key % n
    if n <= _PACK3_MAX:
        order = np.lexsort((w, (head * n + ch) * n + v))
    else:
        order = np.lexsort((w, v, head * n + ch))
    return head[order], ch[order], v[order], w[order]


def sort_triples(
    n: int,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Row triples sorted by ``(a, b, c)``.

    The coverage kernels' direct-witness sort: up to :data:`_PACK3_MAX`
    nodes the three columns pack into one int64 (one :func:`np.sort` plus
    unpacking); beyond that a lexsort over the always-safe pair key
    produces the identical order instead of silently overflowing.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    c = np.asarray(c, dtype=np.int64)
    if n <= _PACK3_MAX:
        key = np.sort((a * n + b) * n + c)
        ab = key // n
        return ab // n, ab % n, key % n
    order = np.lexsort((c, a * n + b))
    return a[order], b[order], c[order]


def searchsorted_membership(haystack: np.ndarray, needles: np.ndarray) -> np.ndarray:
    """Boolean mask: which ``needles`` occur in the sorted ``haystack``."""
    if haystack.shape[0] == 0:
        return np.zeros(needles.shape[0], dtype=bool)
    pos = np.searchsorted(haystack, needles)
    pos_c = np.minimum(pos, haystack.shape[0] - 1)
    return haystack[pos_c] == needles


def sorted_unique(values: np.ndarray) -> np.ndarray:
    """Sorted unique of an integer array: stable (radix) sort + boundaries.

    ``np.unique`` routes integer input through a hash table whose fixed
    overhead dwarfs the work for the small-to-mid arrays the maintenance
    kernels produce every tick — and its output must be sorted anyway.
    """
    if values.shape[0] <= 1:
        return np.sort(values)
    out = np.sort(values, kind="stable")
    keep = np.empty(out.shape[0], dtype=bool)
    keep[0] = True
    np.not_equal(out[1:], out[:-1], out=keep[1:])
    return out[keep]


def mask_unique_rows(rows: np.ndarray, n: int) -> np.ndarray:
    """Sorted unique of row indices in ``[0, n)`` via a boolean scatter.

    O(n + len(rows)) with no sort at all — the fastest dedupe when the
    values are graph rows and ``n`` is at hand.
    """
    mask = np.zeros(n, dtype=bool)
    mask[rows] = True
    return np.flatnonzero(mask)
