"""Network and graph generators.

:func:`random_geometric_network` realises the paper's simulation environment:
uniform placement in a confined area, a shared range calibrated to a target
average degree, and **rejection of disconnected samples** ("If the generated
network is not connected, it is discarded").

:func:`paper_figure3_graph` reconstructs the 10-node worked example of the
paper's Figure 3 edge-by-edge from the CH_HOP1/CH_HOP2/GATEWAY message
listing in Section 3; integration tests replay the whole example against it.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, ExperimentError
from repro.geometry.area import Area
from repro.geometry.disk import range_for_target_degree
from repro.geometry.placement import chain_placement, uniform_placement
from repro.graph.adjacency import Graph
from repro.graph.build import unit_disk_graph
from repro.graph.connectivity import is_connected
from repro.graph.network import Network
from repro.rng import RngLike, ensure_rng
from repro.types import NodeId

#: Edges of the paper's Figure 3 example, reconstructed from the message
#: trace in Section 3 (see DESIGN.md "Figure 3 worked example").
PAPER_FIGURE3_EDGES: tuple[tuple[int, int], ...] = (
    (1, 5), (1, 6), (1, 7),      # cluster C1 members
    (2, 6), (2, 8),              # cluster C2
    (3, 7), (3, 8), (3, 9), (3, 10),  # cluster C3
    (4, 9), (4, 10),             # cluster C4 (head only)
    (5, 9),                      # the CH_HOP2(5) = {3[9]} / CH_HOP2(9) = {1[5]} link
)


def paper_figure3_graph() -> Graph:
    """The 10-node graph of the paper's Figure 3 (ids 1..10).

    Lowest-ID clustering on this graph yields clusterheads ``{1, 2, 3, 4}``
    with members 5, 6, 7 in cluster 1, member 8 in cluster 2 and members
    9, 10 in cluster 3, exactly as in the paper.
    """
    return Graph(nodes=range(1, 11), edges=PAPER_FIGURE3_EDGES)


def chain_graph(n: int) -> Graph:
    """A path ``0 - 1 - ... - n-1`` — the paper's clustering worst case.

    With monotone ids along the chain the distributed lowest-ID clustering
    needs ``Θ(n)`` rounds, which is the bound quoted in the paper's time
    complexity analysis.
    """
    if n < 1:
        raise ConfigurationError(f"chain needs n >= 1, got {n}")
    return Graph(nodes=range(n), edges=((i, i + 1) for i in range(n - 1)))


def grid_graph(rows: int, cols: int) -> Graph:
    """A ``rows x cols`` 4-neighbour lattice with row-major ids."""
    if rows < 1 or cols < 1:
        raise ConfigurationError(f"grid needs positive dims, got {rows}x{cols}")
    g = Graph(nodes=range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                g.add_edge(v, v + 1)
            if r + 1 < rows:
                g.add_edge(v, v + cols)
    return g


def star_graph(n_leaves: int) -> Graph:
    """A star: hub 0 adjacent to leaves ``1..n_leaves``."""
    if n_leaves < 0:
        raise ConfigurationError(f"star needs >= 0 leaves, got {n_leaves}")
    return Graph(nodes=range(n_leaves + 1), edges=((0, i) for i in range(1, n_leaves + 1)))


def random_geometric_network(
    n: int,
    average_degree: float,
    *,
    area: Optional[Area] = None,
    rng: RngLike = None,
    max_attempts: int = 10_000,
    shuffle_ids: bool = False,
    radius: Optional[float] = None,
    torus: bool = False,
) -> Network:
    """One connected sample from the paper's simulation environment.

    Nodes are placed uniformly in ``area``; the shared range is derived from
    ``average_degree`` via :func:`~repro.geometry.disk.range_for_target_degree`
    (or given directly); disconnected samples are discarded and re-drawn, as
    in the paper.

    Args:
        n: Number of nodes.
        average_degree: Target average degree (the paper uses 6 and 18).
        area: Working space (paper default ``100 x 100``).
        rng: Seed or generator.
        max_attempts: Rejection-sampling budget before giving up.  Sparse
            targets (e.g. ``d=6`` with ``n=20``) reject many samples, so the
            default is generous.
        shuffle_ids: If ``True``, assign node ids by a random permutation so
            the id order is independent of the position drawing order.  The
            paper's environment does not specify id assignment; uniform
            placement already decorrelates ids from geometry, so the default
            is ``False``.
        radius: Explicit transmission range, overriding the degree-derived
            one (``average_degree`` is then only documentation).
        torus: Wrap distances around the area (no border effects; the
            analytic degree calibration is then exact).

    Returns:
        A connected :class:`~repro.graph.network.Network`.

    Raises:
        ExperimentError: if no connected sample is found in ``max_attempts``.
    """
    if n < 1:
        raise ConfigurationError(f"need n >= 1, got {n}")
    if max_attempts < 1:
        raise ConfigurationError(f"max_attempts must be >= 1, got {max_attempts}")
    area = area or Area.paper()
    r = radius if radius is not None else (
        range_for_target_degree(n, average_degree, area) if n >= 2 else area.diagonal
    )
    generator = ensure_rng(rng)
    for _ in range(max_attempts):
        pts = uniform_placement(n, area, generator)
        ids: Optional[Sequence[NodeId]] = None
        if shuffle_ids:
            # Drawn even for rejected samples so the generator consumes the
            # same stream as it always has (golden tests pin the outputs).
            ids = [int(x) for x in generator.permutation(n)]
        # Connectivity only needs the unit-disk graph; the Network (its
        # positions dict and validation) is materialised only for the one
        # sample that survives rejection — at sparse settings the vast
        # majority of draws are rejected.
        graph = unit_disk_graph(
            pts, r, ids=ids, torus=area if torus else None
        )
        if not is_connected(graph):
            continue
        id_list = list(ids) if ids is not None else list(range(n))
        return Network(
            graph=graph,
            positions={
                v: (float(x), float(y)) for v, (x, y) in zip(id_list, pts)
            },
            radius=r,
            area=area,
            torus=torus,
        )
    raise ExperimentError(
        f"no connected sample with n={n}, d={average_degree} in "
        f"{max_attempts} attempts; increase the degree or the budget"
    )


def chain_network(n: int, spacing: float = 1.0, radius: float = 1.5,
                  area: Optional[Area] = None) -> Network:
    """A connected chain :class:`Network` (worst case for clustering rounds).

    ``spacing < radius < 2 * spacing`` must hold so consecutive nodes are
    neighbours but next-but-one nodes are not.
    """
    if not (spacing < radius < 2.0 * spacing):
        raise ConfigurationError(
            f"need spacing < radius < 2*spacing for a chain topology, got "
            f"spacing={spacing}, radius={radius}"
        )
    area = area or Area(max(100.0, spacing * n), max(100.0, spacing * n))
    pts = chain_placement(n, spacing, area)
    return Network.from_positions(pts, radius, area=area)
