"""Runtime fault injection over a :class:`~repro.sim.network.SimNetwork`.

The :class:`FaultInjector` is the imperative half of the fault subsystem:
the schedule compiler (:func:`repro.faults.schedule.apply_schedule`) — or a
test poking faults by hand — calls its mutators, and the injector answers
the medium's :class:`~repro.sim.medium.FaultHook` queries on every
transmission.  The key invariant is that the unit-disk :class:`Graph` is
**never mutated**: crashes and link cuts live in overlay sets consulted at
delivery-planning time, so protocols keep reading the true topology (their
neighbour knowledge is stale exactly the way a real node's is), mobility
can keep rebuilding the disk graph underneath, and removing the injector
restores the ideal medium bit-for-bit.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Set

import numpy as np

from repro.errors import SimulationError
from repro.rng import RngLike, ensure_rng
from repro.sim.medium import FaultHook
from repro.sim.network import SimNetwork
from repro.types import Edge, NodeId, ordered_edge


class FaultInjector(FaultHook):
    """Crash/link/loss/duplication faults over a running simulation.

    Args:
        network: The simulated network to attach to (its medium must not
            already carry a fault hook).
        rng: Seed or generator for the loss / duplication window draws
            (unused — and never advanced — while no window is active, so
            pure crash/partition fault runs stay draw-free deterministic).

    Attributes:
        suppressed_sends: Transmissions swallowed because the sender was
            down.
        blocked_by_node: Deliveries dropped because the receiver was down.
        blocked_by_link: Deliveries dropped on a cut link.
        window_losses: Deliveries dropped by an active loss window.
        duplications: Deliveries doubled by an active duplication window.
    """

    def __init__(self, network: SimNetwork, *, rng: RngLike = None) -> None:
        if network.medium.fault_hook is not None:
            raise SimulationError(
                "the network's medium already has a fault hook attached"
            )
        self.network = network
        self.sim = network.sim
        self._rng = ensure_rng(rng)
        self._down: Set[NodeId] = set()
        self._ever_down: Set[NodeId] = set()
        self._cut: Set[Edge] = set()
        self._loss: List[float] = []
        self._dup: List[float] = []
        self.suppressed_sends = 0
        self.blocked_by_node = 0
        self.blocked_by_link = 0
        self.window_losses = 0
        self.duplications = 0
        network.medium.fault_hook = self

    def detach(self) -> None:
        """Unhook from the medium (the ideal channel resumes)."""
        if self.network.medium.fault_hook is self:
            self.network.medium.fault_hook = None

    # -- node faults -------------------------------------------------------

    def crash(self, node: NodeId) -> None:
        """Take ``node`` down: it neither transmits nor receives."""
        if node not in self.network.graph:
            raise SimulationError(f"cannot crash unknown node {node}")
        self._down.add(node)
        self._ever_down.add(node)

    def recover(self, node: NodeId) -> None:
        """Bring ``node`` back up (a no-op if it was not down)."""
        self._down.discard(node)

    def is_up(self, node: NodeId) -> bool:
        """Whether ``node`` is currently operational."""
        return node not in self._down

    @property
    def down_nodes(self) -> FrozenSet[NodeId]:
        """Nodes currently crashed."""
        return frozenset(self._down)

    @property
    def ever_down(self) -> FrozenSet[NodeId]:
        """Nodes that were down at any point (recovered or not)."""
        return frozenset(self._ever_down)

    def live_nodes(self) -> List[NodeId]:
        """Currently-up node ids, ascending."""
        return [v for v in self.network.graph.nodes() if v not in self._down]

    # -- link faults -------------------------------------------------------

    def cut_link(self, u: NodeId, v: NodeId) -> None:
        """Force link ``{u, v}`` down, overriding the disk graph.

        The pair need not currently be a unit-disk edge — a cut is an
        overlay that applies whenever the two nodes would otherwise hear
        each other (e.g. after mobility brings them into range).
        """
        for x in (u, v):
            if x not in self.network.graph:
                raise SimulationError(f"cannot cut link at unknown node {x}")
        self._cut.add(ordered_edge(u, v))

    def restore_link(self, u: NodeId, v: NodeId) -> None:
        """Lift the fault on link ``{u, v}`` (no-op if not cut)."""
        self._cut.discard(ordered_edge(u, v))

    def link_up(self, u: NodeId, v: NodeId) -> bool:
        """Whether the ``{u, v}`` overlay allows traffic."""
        return ordered_edge(u, v) not in self._cut

    @property
    def cut_links(self) -> FrozenSet[Edge]:
        """Links currently forced down."""
        return frozenset(self._cut)

    def partition(self, nodes: Iterable[NodeId]) -> FrozenSet[Edge]:
        """Cut every current boundary link between ``nodes`` and the rest.

        Returns:
            The links actually cut by this call (pass to :meth:`heal`);
            links already down are not re-cut, so partitions compose.
        """
        region = set(nodes)
        graph = self.network.graph
        cut: Set[Edge] = set()
        for v in sorted(region):
            if v not in graph:
                raise SimulationError(
                    f"cannot partition around unknown node {v}"
                )
            for w in graph.neighbours_view(v):
                if w in region:
                    continue
                edge = ordered_edge(v, w)
                if edge not in self._cut:
                    cut.add(edge)
        self._cut |= cut
        return frozenset(cut)

    def heal(self, edges: Iterable[Edge]) -> None:
        """Restore previously-cut links (the inverse of :meth:`partition`)."""
        for u, v in edges:
            self._cut.discard(ordered_edge(u, v))

    # -- loss / duplication windows ---------------------------------------

    def push_loss(self, probability: float) -> None:
        """Open an extra-loss window (stacks with any already active)."""
        if not (0.0 <= probability <= 1.0):
            raise SimulationError(
                f"loss probability must be in [0, 1], got {probability}"
            )
        self._loss.append(probability)

    def pop_loss(self, probability: float) -> None:
        """Close one window previously opened with that probability."""
        self._loss.remove(probability)

    def push_duplication(self, probability: float) -> None:
        """Open a duplication window."""
        if not (0.0 <= probability <= 1.0):
            raise SimulationError(
                f"duplication probability must be in [0, 1], got {probability}"
            )
        self._dup.append(probability)

    def pop_duplication(self, probability: float) -> None:
        """Close one duplication window."""
        self._dup.remove(probability)

    # -- FaultHook interface ----------------------------------------------

    def can_transmit(self, sender: NodeId) -> bool:
        """A crashed radio emits nothing."""
        if sender in self._down:
            self.suppressed_sends += 1
            return False
        return True

    def copies(self, sender: NodeId, receiver: NodeId) -> int:
        """Copies crossing this link: 0 (cut/window loss), 1, or 2."""
        if self._cut and ordered_edge(sender, receiver) in self._cut:
            self.blocked_by_link += 1
            return 0
        for p in self._loss:
            if self._rng.random() < p:
                self.window_losses += 1
                return 0
        for p in self._dup:
            if self._rng.random() < p:
                self.duplications += 1
                return 2
        return 1

    def can_deliver(self, receiver: NodeId) -> bool:
        """A crashed receiver hears nothing — even packets already in
        flight when it went down (the medium asks at delivery time)."""
        if receiver in self._down:
            self.blocked_by_node += 1
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(down={len(self._down)}, cut={len(self._cut)}, "
            f"loss_windows={len(self._loss)}, dup_windows={len(self._dup)})"
        )


def assert_graph_untouched(before: "np.ndarray", network: SimNetwork) -> None:
    """Raise if the network's adjacency changed (property-test helper).

    Args:
        before: ``network.graph.adjacency_matrix()[0]`` captured before the
            faulted run.
        network: The network after the run.
    """
    after, _ = network.graph.adjacency_matrix()
    if before.shape != after.shape or not bool((before == after).all()):
        raise AssertionError(
            "fault injection mutated the underlying Graph"
        )
