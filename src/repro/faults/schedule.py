"""Declarative, seed-deterministic fault schedules.

A :class:`FaultSchedule` is an ordered list of timed fault events — node
crash/recover, link down/up, region partition/heal, message loss and
duplication windows — that can be saved/loaded as JSON (``to_spec`` /
``from_spec``) and compiled onto a running simulator with
:func:`apply_schedule`.  Event times are *relative to application time*:
applying a schedule after the control phases ran injects the faults into the
data plane only, matching the robustness experiments' split.

Determinism contract: a schedule is plain data; :func:`random_schedule`
derives one from a seed, and :func:`apply_schedule` registers its events
with an empty priority tuple, which sorts *before* every same-time delivery
(the medium uses ``(sender, receiver)`` priorities) — so fault state always
changes before the traffic of the same instant, in schedule order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Tuple

from repro.errors import ConfigurationError
from repro.graph.adjacency import Graph
from repro.rng import RngLike, ensure_rng
from repro.types import NodeId, ordered_edge

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """Base class: something happens to the infrastructure at ``time``."""

    time: float


@dataclass(frozen=True, slots=True)
class NodeDown(FaultEvent):
    """Node ``node`` crashes: it neither transmits nor receives."""

    node: NodeId


@dataclass(frozen=True, slots=True)
class NodeUp(FaultEvent):
    """Node ``node`` recovers (protocol state survives the outage)."""

    node: NodeId


@dataclass(frozen=True, slots=True)
class LinkDown(FaultEvent):
    """Link ``{u, v}`` goes down, overriding the unit-disk adjacency."""

    u: NodeId
    v: NodeId


@dataclass(frozen=True, slots=True)
class LinkUp(FaultEvent):
    """Link ``{u, v}`` comes back (if the disk graph still has it)."""

    u: NodeId
    v: NodeId


@dataclass(frozen=True, slots=True)
class Partition(FaultEvent):
    """Cut every link between ``nodes`` and the rest of the network.

    The boundary links are computed against the topology *at fire time*, and
    exactly those links are restored after ``duration`` (``math.inf`` never
    heals).
    """

    nodes: FrozenSet[NodeId]
    duration: float = math.inf


@dataclass(frozen=True, slots=True)
class LossWindow(FaultEvent):
    """Extra per-delivery loss ``probability`` for ``duration`` time units.

    Windows stack: concurrent windows drop independently (effective loss
    ``1 - prod(1 - p_i)``), on top of the medium's own loss knob.
    """

    probability: float
    duration: float


@dataclass(frozen=True, slots=True)
class DuplicationWindow(FaultEvent):
    """Deliveries arrive twice with ``probability`` for ``duration`` units."""

    probability: float
    duration: float


#: Stable JSON tag per event class.
_KINDS: Dict[str, type] = {
    "node-down": NodeDown,
    "node-up": NodeUp,
    "link-down": LinkDown,
    "link-up": LinkUp,
    "partition": Partition,
    "loss-window": LossWindow,
    "duplication-window": DuplicationWindow,
}
_TAG_OF = {cls: tag for tag, cls in _KINDS.items()}

SPEC_FORMAT = "repro-fault-schedule"
SPEC_VERSION = 1


def _check_probability(p: float, what: str) -> None:
    if not (0.0 <= p <= 1.0):
        raise ConfigurationError(f"{what} must be in [0, 1], got {p}")


class FaultSchedule:
    """An immutable, time-sorted sequence of :class:`FaultEvent` objects.

    Args:
        events: The fault events; stored sorted by time (stable, so events
            given at the same instant keep their relative order).

    Raises:
        ConfigurationError: on a negative time, a non-positive window
            duration, or an out-of-range probability.
    """

    __slots__ = ("_events",)

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        evs = sorted(events, key=lambda e: e.time)
        for e in evs:
            if e.time < 0:
                raise ConfigurationError(
                    f"fault event time must be >= 0, got {e.time}"
                )
            if isinstance(e, (LossWindow, DuplicationWindow)):
                _check_probability(e.probability, "window probability")
                if not e.duration > 0:
                    raise ConfigurationError(
                        f"window duration must be positive, got {e.duration}"
                    )
            if isinstance(e, Partition) and not e.duration > 0:
                raise ConfigurationError(
                    f"partition duration must be positive, got {e.duration}"
                )
            if isinstance(e, (LinkDown, LinkUp)):
                ordered_edge(e.u, e.v)  # rejects self-loops
        self._events: Tuple[FaultEvent, ...] = tuple(evs)

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        """The events in firing order."""
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return self._events == other._events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultSchedule({len(self._events)} events)"

    @property
    def horizon(self) -> float:
        """Time of the last scheduled state change (0.0 when empty).

        Window/partition ends count, so running the simulator past the
        horizon guarantees every transient fault has cleared (infinite
        partitions excepted).
        """
        t = 0.0
        for e in self._events:
            end = e.time
            if isinstance(e, (LossWindow, DuplicationWindow)):
                end += e.duration
            elif isinstance(e, Partition) and not math.isinf(e.duration):
                end += e.duration
            t = max(t, end)
        return t

    def crashed_nodes(self) -> FrozenSet[NodeId]:
        """Nodes that are down after the whole schedule has played out."""
        down: set = set()
        for e in self._events:
            if isinstance(e, NodeDown):
                down.add(e.node)
            elif isinstance(e, NodeUp):
                down.discard(e.node)
        return frozenset(down)

    def validate_against(self, graph: Graph) -> None:
        """Check that every referenced node exists in ``graph``."""
        for e in self._events:
            refs: Tuple[NodeId, ...] = ()
            if isinstance(e, (NodeDown, NodeUp)):
                refs = (e.node,)
            elif isinstance(e, (LinkDown, LinkUp)):
                refs = (e.u, e.v)
            elif isinstance(e, Partition):
                refs = tuple(e.nodes)
            for v in refs:
                if v not in graph:
                    raise ConfigurationError(
                        f"fault schedule references unknown node {v}"
                    )

    # -- JSON spec ---------------------------------------------------------

    def to_spec(self) -> dict:
        """The schedule as a JSON-serialisable document."""
        out: List[dict] = []
        for e in self._events:
            rec: Dict[str, object] = {"kind": _TAG_OF[type(e)],
                                      "time": e.time}
            if isinstance(e, (NodeDown, NodeUp)):
                rec["node"] = e.node
            elif isinstance(e, (LinkDown, LinkUp)):
                rec["u"], rec["v"] = e.u, e.v
            elif isinstance(e, Partition):
                rec["nodes"] = sorted(e.nodes)
                rec["duration"] = (
                    None if math.isinf(e.duration) else e.duration
                )
            else:  # loss / duplication window
                rec["probability"] = e.probability
                rec["duration"] = e.duration
            out.append(rec)
        return {"format": SPEC_FORMAT, "version": SPEC_VERSION,
                "events": out}

    @classmethod
    def from_spec(cls, spec: dict) -> "FaultSchedule":
        """Rebuild a schedule from :meth:`to_spec` output (or hand-written
        JSON)."""
        if not isinstance(spec, dict) or spec.get("format") != SPEC_FORMAT:
            raise ConfigurationError("not a repro fault schedule document")
        if spec.get("version") != SPEC_VERSION:
            raise ConfigurationError(
                f"unsupported fault schedule version {spec.get('version')!r}"
            )
        events: List[FaultEvent] = []
        for rec in spec.get("events", ()):
            try:
                kind = _KINDS[rec["kind"]]
                time = float(rec["time"])
                if kind in (NodeDown, NodeUp):
                    events.append(kind(time=time, node=int(rec["node"])))
                elif kind in (LinkDown, LinkUp):
                    events.append(kind(time=time, u=int(rec["u"]),
                                       v=int(rec["v"])))
                elif kind is Partition:
                    duration = rec.get("duration")
                    events.append(Partition(
                        time=time,
                        nodes=frozenset(int(x) for x in rec["nodes"]),
                        duration=(math.inf if duration is None
                                  else float(duration)),
                    ))
                else:
                    events.append(kind(time=time,
                                       probability=float(rec["probability"]),
                                       duration=float(rec["duration"])))
            except (KeyError, TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"malformed fault schedule event {rec!r}: {exc}"
                ) from None
        return cls(events)


def random_schedule(
    graph: Graph,
    *,
    horizon: float = 20.0,
    crash_fraction: float = 0.1,
    recovery_fraction: float = 0.0,
    link_flap_fraction: float = 0.0,
    flap_downtime: float = 4.0,
    loss_windows: int = 0,
    loss_probability: float = 0.3,
    duplication_windows: int = 0,
    duplication_probability: float = 0.2,
    protect: Iterable[NodeId] = (),
    rng: RngLike = None,
) -> FaultSchedule:
    """Sample a fault schedule for ``graph``, deterministically from a seed.

    Args:
        graph: The topology the faults will hit (node/edge population).
        horizon: Crash and flap times are drawn uniformly in
            ``[0, horizon)``.
        crash_fraction: Fraction of nodes that crash (rounded down).
        recovery_fraction: Fraction of the crashed nodes that recover,
            uniformly within ``(crash time, horizon]``.
        link_flap_fraction: Fraction of edges that go down for
            ``flap_downtime`` and then come back.
        flap_downtime: Outage length of a flapped link.
        loss_windows: Number of extra loss bursts of ``loss_probability``.
        duplication_windows: Number of duplication bursts.
        protect: Nodes exempt from crashing (e.g. the broadcast source).
        rng: Seed or generator — same seed, same schedule, always.

    Returns:
        The sampled :class:`FaultSchedule`.
    """
    if not (0.0 <= crash_fraction <= 1.0):
        raise ConfigurationError(
            f"crash_fraction must be in [0, 1], got {crash_fraction}"
        )
    generator = ensure_rng(rng)
    protected = set(protect)
    events: List[FaultEvent] = []

    candidates = [v for v in graph.nodes() if v not in protected]
    n_crash = min(len(candidates), int(crash_fraction * graph.num_nodes))
    if n_crash:
        victims = sorted(
            int(v) for v in generator.choice(candidates, size=n_crash,
                                             replace=False)
        )
        n_recover = int(recovery_fraction * n_crash)
        for i, v in enumerate(victims):
            t = float(generator.uniform(0.0, horizon))
            events.append(NodeDown(time=t, node=v))
            if i < n_recover:
                events.append(NodeUp(
                    time=float(generator.uniform(t, horizon) + 1.0), node=v,
                ))

    edges = graph.edges()
    n_flap = min(len(edges), int(link_flap_fraction * len(edges)))
    if n_flap:
        picks = sorted(
            int(i) for i in generator.choice(len(edges), size=n_flap,
                                             replace=False)
        )
        for i in picks:
            u, v = edges[i]
            t = float(generator.uniform(0.0, horizon))
            events.append(LinkDown(time=t, u=u, v=v))
            events.append(LinkUp(time=t + flap_downtime, u=u, v=v))

    for _ in range(loss_windows):
        t = float(generator.uniform(0.0, horizon))
        events.append(LossWindow(
            time=t, probability=loss_probability,
            duration=float(generator.uniform(1.0, max(2.0, horizon / 4))),
        ))
    for _ in range(duplication_windows):
        t = float(generator.uniform(0.0, horizon))
        events.append(DuplicationWindow(
            time=t, probability=duplication_probability,
            duration=float(generator.uniform(1.0, max(2.0, horizon / 4))),
        ))
    return FaultSchedule(events)


def apply_schedule(schedule: FaultSchedule,
                   injector: "FaultInjector") -> None:
    """Compile ``schedule`` to simulator events acting on ``injector``.

    Event times are relative to the simulator's *current* time, so a
    schedule applied after the control phases ran perturbs only the data
    plane.  All fault events carry an empty priority tuple and therefore
    fire before any same-time delivery; ties between fault events resolve
    in schedule order (the queue is insertion-stable).
    """
    schedule.validate_against(injector.network.graph)
    sim = injector.sim
    for event in schedule.events:
        if isinstance(event, NodeDown):
            sim.schedule(event.time,
                         lambda e=event: injector.crash(e.node))
        elif isinstance(event, NodeUp):
            sim.schedule(event.time,
                         lambda e=event: injector.recover(e.node))
        elif isinstance(event, LinkDown):
            sim.schedule(event.time,
                         lambda e=event: injector.cut_link(e.u, e.v))
        elif isinstance(event, LinkUp):
            sim.schedule(event.time,
                         lambda e=event: injector.restore_link(e.u, e.v))
        elif isinstance(event, Partition):
            def _partition(e: Partition = event) -> None:
                cut = injector.partition(e.nodes)
                if cut and not math.isinf(e.duration):
                    sim.schedule(
                        e.duration,
                        lambda edges=cut: injector.heal(edges),
                    )
            sim.schedule(event.time, _partition)
        elif isinstance(event, LossWindow):
            sim.schedule(event.time,
                         lambda e=event: injector.push_loss(e.probability))
            sim.schedule(event.time + event.duration,
                         lambda e=event: injector.pop_loss(e.probability))
        elif isinstance(event, DuplicationWindow):
            sim.schedule(
                event.time,
                lambda e=event: injector.push_duplication(e.probability))
            sim.schedule(
                event.time + event.duration,
                lambda e=event: injector.pop_duplication(e.probability))
        else:  # pragma: no cover - exhaustive over _KINDS
            raise ConfigurationError(f"unknown fault event {event!r}")
