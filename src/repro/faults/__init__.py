"""Deterministic fault injection and the reliable broadcast layer.

The subsystem has three parts, meant to be used together:

* :mod:`repro.faults.schedule` — declarative, seed-deterministic fault
  schedules (crashes, link cuts, partitions, loss/duplication windows)
  serialisable as JSON and compiled onto the simulator;
* :mod:`repro.faults.injector` — the runtime overlay answering the
  medium's :class:`~repro.sim.medium.FaultHook` queries without ever
  mutating the unit-disk :class:`~repro.graph.adjacency.Graph`;
* :mod:`repro.faults.reliable` — ACK/retransmit broadcast over the SI/SD
  backbone plans, with clusterhead-failure fallback through the
  incremental topology machinery.
"""

from repro.faults.injector import FaultInjector, assert_graph_untouched
from repro.faults.reliable import (
    BackboneFallback,
    ReliableAck,
    ReliableBroadcast,
    ReliableData,
    ReliableOutcome,
    reliable_flooding_plan,
    reliable_sd,
    reliable_si,
)
from repro.faults.schedule import (
    DuplicationWindow,
    FaultEvent,
    FaultSchedule,
    LinkDown,
    LinkUp,
    LossWindow,
    NodeDown,
    NodeUp,
    Partition,
    apply_schedule,
    random_schedule,
)

__all__ = [
    "BackboneFallback",
    "DuplicationWindow",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "LinkDown",
    "LinkUp",
    "LossWindow",
    "NodeDown",
    "NodeUp",
    "Partition",
    "ReliableAck",
    "ReliableBroadcast",
    "ReliableData",
    "ReliableOutcome",
    "apply_schedule",
    "assert_graph_untouched",
    "random_schedule",
    "reliable_flooding_plan",
    "reliable_sd",
    "reliable_si",
]
