"""Reliable SI/SD-CDS broadcast: hop-local ARQ plus backbone repair.

The plain backbone broadcasts forward on first reception and hope: on a
lossy or faulty channel a single missed delivery severs a whole subtree.
:class:`ReliableBroadcast` wraps the same forwarding plans in a
retransmission layer:

* every node that receives the packet broadcasts an acknowledgement (itself
  lossy), and data/ACK transmissions from a neighbour both count as proof
  that the neighbour holds the packet (implicit ACK);
* a forward node retransmits until every neighbour is known to hold the
  packet, with exponential backoff and a bounded retry budget — all timers
  ride the deterministic event queue (``priority=(node,)``), so a seeded
  run is bit-reproducible;
* a neighbour still silent after the whole budget is *presumed dead*.  With
  a :class:`BackboneFallback` attached, the dead node is removed from a
  private topology copy through the PR-1 machinery — an
  :class:`~repro.maintenance.incremental.IncrementalLowestIdClustering`
  whose :class:`~repro.topology.view.TopologyView` dirties only the ≤3-hop
  ball, and a :class:`~repro.topology.coverage_index.CoverageIndex` that
  re-runs gateway selection for exactly the dirtied heads — and the repaired
  backbone's nodes are promoted to relays mid-broadcast (a crashed
  clusterhead's duties fall to the survivors' new selection).

The simulated network's graph is never touched; the fallback mutates only
its own copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.backbone.static_backbone import build_static_backbone
from repro.broadcast.result import BroadcastResult
from repro.broadcast.sd_cds import broadcast_sd
from repro.cluster.state import ClusterStructure
from repro.errors import BroadcastError, NodeNotFoundError
from repro.faults.injector import FaultInjector
from repro.graph.adjacency import Graph
from repro.maintenance.incremental import IncrementalLowestIdClustering
from repro.sim.messages import Message
from repro.sim.network import SimNetwork
from repro.sim.node import SimNode
from repro.topology.coverage_index import CoverageIndex
from repro.types import CoveragePolicy, NodeId


@dataclass(frozen=True, slots=True)
class ReliableData(Message):
    """The data packet of the reliable broadcast (``attempt`` > 0 on a
    retransmission)."""

    source: NodeId = -1
    attempt: int = 0

    def size(self) -> int:
        return 2


@dataclass(frozen=True, slots=True)
class ReliableAck(Message):
    """Broadcast acknowledgement: "I hold ``source``'s packet"."""

    source: NodeId = -1

    def size(self) -> int:
        return 2


class BackboneFallback:
    """Re-derive the relay set after node failures, incrementally.

    Holds a private :class:`IncrementalLowestIdClustering` (which copies the
    graph) plus a :class:`CoverageIndex` over its shared
    :class:`~repro.topology.view.TopologyView`.  Reporting a failed node
    strips its incident edges one by one — each repair dirties only the
    local ball and feeds ``invalidate_roles`` — then rebuilds the static
    backbone through the index, recomputing coverage sets and gateway
    selections for the dirtied heads only.

    Args:
        graph: The pre-fault topology (copied; never mutated by reference).
        policy: Coverage policy of the repaired backbone.
    """

    def __init__(self, graph: Graph,
                 policy: CoveragePolicy = CoveragePolicy.TWO_FIVE_HOP) -> None:
        self._clustering = IncrementalLowestIdClustering(graph)
        self._index = CoverageIndex(self._clustering.view, policy)
        self._policy = policy
        self._removed: Set[NodeId] = set()
        # Warm the caches so mid-broadcast repairs only pay for dirty heads.
        build_static_backbone(self._clustering.structure(), policy,
                              index=self._index)

    @property
    def removed(self) -> FrozenSet[NodeId]:
        """Nodes reported dead so far."""
        return frozenset(self._removed)

    def backbone_after_failures(
        self, dead: Iterable[NodeId]
    ) -> FrozenSet[NodeId]:
        """Remove ``dead`` from the working topology; return the new CDS.

        The returned set excludes every node ever reported dead (a removed
        node ends up isolated and would otherwise elect itself head).
        """
        role_changed: Set[NodeId] = set()
        for d in sorted(set(dead)):
            if d in self._removed:
                continue
            if d not in self._clustering.graph:
                raise NodeNotFoundError(d)
            self._removed.add(d)
            for w in sorted(self._clustering.graph.neighbours_view(d)):
                role_changed |= self._clustering.remove_edge(d, w).role_changes
        if role_changed:
            self._index.invalidate_roles(role_changed)
        backbone = build_static_backbone(
            self._clustering.structure(), self._policy, index=self._index
        )
        return frozenset(backbone.nodes) - frozenset(self._removed)


@dataclass(frozen=True)
class ReliableOutcome:
    """Outcome of one reliable broadcast.

    Attributes:
        result: The generic broadcast outcome.
        data_transmissions: Data packets sent, retransmissions included.
        ack_transmissions: Acknowledgements sent.
        retransmissions: Data sends beyond each forwarder's first.
        declared_dead: Neighbours presumed dead after retry exhaustion.
        promoted: Nodes promoted to relays by the fallback repair.
        gave_up: ``(forwarder, neighbour)`` pairs abandoned at budget end.
    """

    result: BroadcastResult
    data_transmissions: int
    ack_transmissions: int
    retransmissions: int
    declared_dead: FrozenSet[NodeId]
    promoted: FrozenSet[NodeId]
    gave_up: FrozenSet[Tuple[NodeId, NodeId]]

    @property
    def overhead_factor(self) -> float:
        """Total transmissions per forward node (price of reliability)."""
        n_fwd = max(1, self.result.num_forward_nodes)
        return (self.data_transmissions + self.ack_transmissions) / n_fwd


class ReliableBroadcast:
    """ACK/retransmit wrapper over a backbone forwarding plan.

    Args:
        network: The simulated network (control phases already done).
        relays: Initial forwarding membership (e.g. the static backbone's
            nodes, or an SD forward plan); the source always forwards.
        max_retries: Per-forwarder retransmission budget.
        base_timeout: First ACK-collection window; must exceed one data+ACK
            round trip (two medium latencies).
        backoff: Multiplicative backoff factor for later windows.
        fallback: Optional :class:`BackboneFallback` consulted whenever a
            neighbour is declared dead; its repaired backbone nodes are
            promoted to relays.
        injector: Optional :class:`FaultInjector` — when given, a crashed
            forwarder's pending ARQ timers are inert while it is down (a
            dead CPU runs no retransmission logic).
        algorithm: Label recorded in the result.
    """

    RECEIVED = "rel_bcast.received_at"
    FORWARDED = "rel_bcast.forwarded"
    HAVE = "rel_bcast.have"

    def __init__(
        self,
        network: SimNetwork,
        relays: Iterable[NodeId],
        *,
        max_retries: int = 6,
        base_timeout: float = 4.0,
        backoff: float = 2.0,
        fallback: Optional[BackboneFallback] = None,
        injector: Optional[FaultInjector] = None,
        algorithm: str = "reliable-si-cds",
    ) -> None:
        if max_retries < 0:
            raise BroadcastError(f"max_retries must be >= 0, got {max_retries}")
        if base_timeout <= 2.0 * network.medium.latency:
            raise BroadcastError(
                "base_timeout must exceed one data+ACK round trip "
                f"(2 x latency = {2.0 * network.medium.latency:g})"
            )
        if backoff < 1.0:
            raise BroadcastError(f"backoff must be >= 1.0, got {backoff}")
        self.network = network
        self._relays: Set[NodeId] = set(relays)
        self.max_retries = max_retries
        self.base_timeout = base_timeout
        self.backoff = backoff
        self._fallback = fallback
        self._injector = injector
        self.algorithm = algorithm
        self.data_transmissions = 0
        self.ack_transmissions = 0
        self.retransmissions = 0
        self._presumed_dead: Set[NodeId] = set()
        self._promoted: Set[NodeId] = set()
        self.gave_up: Set[Tuple[NodeId, NodeId]] = set()
        for node in network:
            node.state[self.RECEIVED] = None
            node.state[self.FORWARDED] = False
            node.state[self.HAVE] = set()
            node.replace_handler(ReliableData, self._on_data)
            node.replace_handler(ReliableAck, self._on_ack)

    # -- driving -----------------------------------------------------------

    def start(self, source: NodeId) -> None:
        """Originate the broadcast at ``source`` at the current sim time."""
        if source not in self.network.graph:
            raise NodeNotFoundError(source)
        self.source = source
        self._relays.add(source)
        node = self.network.node(source)
        node.state[self.RECEIVED] = self.network.sim.now
        self.network.sim.schedule(
            0.0, lambda n=node: self._forward(n), priority=(source,)
        )

    # -- internals ---------------------------------------------------------

    def _node_up(self, node: SimNode) -> bool:
        return self._injector is None or self._injector.is_up(node.id)

    def _transmit_data(self, node: SimNode, attempt: int) -> None:
        self.data_transmissions += 1
        node.send(ReliableData(origin=node.id, source=self.source,
                               attempt=attempt))

    def _forward(self, node: SimNode) -> None:
        if node.state[self.FORWARDED] or not self._node_up(node):
            return
        node.state[self.FORWARDED] = True
        self._transmit_data(node, 0)
        self._await_acks(node, 0)

    def _await_acks(self, node: SimNode, attempt: int) -> None:
        delay = self.base_timeout * (self.backoff ** attempt)
        self.network.sim.schedule(
            delay,
            lambda n=node, a=attempt: self._check_acks(n, a),
            priority=(node.id,),
        )

    def _missing(self, node: SimNode) -> list:
        have: Set[NodeId] = node.state[self.HAVE]  # type: ignore[assignment]
        return [
            w for w in sorted(self.network.graph.neighbours_view(node.id))
            if w not in have and w not in self._presumed_dead
        ]

    def _check_acks(self, node: SimNode, attempt: int) -> None:
        if not self._node_up(node):
            return  # a crashed CPU runs no ARQ logic
        missing = self._missing(node)
        if not missing:
            return
        if attempt >= self.max_retries:
            for w in missing:
                self.gave_up.add((node.id, w))
            newly = [w for w in missing if w not in self._presumed_dead]
            self._presumed_dead.update(missing)
            if self._fallback is not None and newly:
                self._repair(newly)
            return
        self.retransmissions += 1
        self._transmit_data(node, attempt + 1)
        self._await_acks(node, attempt + 1)

    def _repair(self, dead: Iterable[NodeId]) -> None:
        assert self._fallback is not None
        repaired = self._fallback.backbone_after_failures(dead)
        new_relays = (repaired - self._presumed_dead) | {self.source}
        promoted = new_relays - self._relays
        self._relays |= new_relays
        self._promoted |= promoted
        # A promoted node that already holds the packet forwards right away;
        # the rest forward on first reception like any relay.
        for v in sorted(promoted):
            node = self.network.node(v)
            if node.state[self.RECEIVED] is not None \
                    and not node.state[self.FORWARDED]:
                self.network.sim.schedule(
                    0.0, lambda n=node: self._forward(n), priority=(v,)
                )

    def _send_ack(self, node: SimNode) -> None:
        self.ack_transmissions += 1
        node.send(ReliableAck(origin=node.id, source=self.source))

    def _on_data(self, node: SimNode, sender: NodeId,
                 message: Message) -> None:
        assert isinstance(message, ReliableData)
        have: Set[NodeId] = node.state[self.HAVE]  # type: ignore[assignment]
        have.add(sender)  # a data transmission is an implicit ACK
        first = node.state[self.RECEIVED] is None
        if first:
            node.state[self.RECEIVED] = self.network.sim.now
            # One broadcast ACK answers every neighbouring forwarder.
            self._send_ack(node)
        elif message.attempt > 0:
            # A retransmission means some forwarder missed our ACK.
            self._send_ack(node)
        if first and node.id in self._relays:
            self._forward(node)

    def _on_ack(self, node: SimNode, sender: NodeId,
                message: Message) -> None:
        assert isinstance(message, ReliableAck)
        have: Set[NodeId] = node.state[self.HAVE]  # type: ignore[assignment]
        have.add(sender)

    # -- outcome -----------------------------------------------------------

    def outcome(self) -> ReliableOutcome:
        """Collect the outcome after the phase ran to quiescence."""
        reception: Dict[NodeId, int] = {}
        forwarded: Set[NodeId] = set()
        for node in self.network:
            t = node.state[self.RECEIVED]
            if t is not None:
                reception[node.id] = int(t)  # type: ignore[arg-type]
            if node.state[self.FORWARDED]:
                forwarded.add(node.id)
        result = BroadcastResult(
            source=self.source,
            algorithm=self.algorithm,
            forward_nodes=frozenset(forwarded),
            received=frozenset(reception),
            reception_time=reception,
            transmissions=self.data_transmissions,
        )
        return ReliableOutcome(
            result=result,
            data_transmissions=self.data_transmissions,
            ack_transmissions=self.ack_transmissions,
            retransmissions=self.retransmissions,
            declared_dead=frozenset(self._presumed_dead),
            promoted=frozenset(self._promoted),
            gave_up=frozenset(self.gave_up),
        )


def reliable_si(
    network: SimNetwork,
    structure: ClusterStructure,
    *,
    policy: CoveragePolicy = CoveragePolicy.TWO_FIVE_HOP,
    fallback: bool = True,
    injector: Optional[FaultInjector] = None,
    **arq: float,
) -> ReliableBroadcast:
    """Reliable broadcast over the static (source-independent) backbone.

    The relay set is the static backbone's CDS — identical forwarding plan
    to :func:`~repro.broadcast.si_cds.broadcast_si` — plus the ARQ layer
    and, with ``fallback=True``, mid-broadcast backbone repair.
    """
    backbone = build_static_backbone(structure, policy)
    return ReliableBroadcast(
        network,
        backbone.nodes,
        fallback=BackboneFallback(structure.graph, policy) if fallback
        else None,
        injector=injector,
        algorithm=f"reliable-si-cds[{policy.label}]",
        **arq,
    )


def reliable_sd(
    network: SimNetwork,
    structure: ClusterStructure,
    source: NodeId,
    *,
    policy: CoveragePolicy = CoveragePolicy.TWO_FIVE_HOP,
    fallback: bool = True,
    injector: Optional[FaultInjector] = None,
    **arq: float,
) -> ReliableBroadcast:
    """Reliable broadcast over the dynamic (source-dependent) forward plan.

    The initial relay set is the SD-CDS forward-node set for ``source`` on
    the pre-fault topology (a dry run of
    :func:`~repro.broadcast.sd_cds.broadcast_sd`); faults striking the plan
    are absorbed by retransmission and, with ``fallback=True``, by
    re-entering gateway selection on the survivor topology.  ``start`` must
    be called with the same ``source``.
    """
    plan = broadcast_sd(structure, source, policy=policy).result
    protocol = ReliableBroadcast(
        network,
        plan.forward_nodes,
        fallback=BackboneFallback(structure.graph, policy) if fallback
        else None,
        injector=injector,
        algorithm=f"reliable-sd-cds[{policy.label}]",
        **arq,
    )
    protocol.planned_source = source
    return protocol


def reliable_flooding_plan(graph: Graph, source: NodeId) -> FrozenSet[NodeId]:
    """Relay set for a reliable flood (every node forwards) — convenience
    for benchmarks that compare against the redundancy ceiling."""
    if source not in graph:
        raise NodeNotFoundError(source)
    return frozenset(graph.nodes())


__all__ = [
    "BackboneFallback",
    "ReliableAck",
    "ReliableBroadcast",
    "ReliableData",
    "ReliableOutcome",
    "reliable_flooding_plan",
    "reliable_sd",
    "reliable_si",
]
