"""Unicast routing over the cluster backbone (extension).

The paper frames the backbone as general infrastructure — its Section 2
discusses CBRP, a *routing* protocol over the same cluster structure.  This
package provides the routing view: a source routes to its clusterhead, the
packet follows cluster-graph hops (each expanded through the selecting
head's gateway connectors), and descends to the target from the target's
clusterhead.  Path-stretch analysis quantifies the detour relative to the
true shortest path — small in practice, bounded by construction.
"""

from repro.routing.cluster_routing import RouteFailure, backbone_route
from repro.routing.stretch import RouteStretchReport, route_stretch_study

__all__ = [
    "backbone_route",
    "RouteFailure",
    "route_stretch_study",
    "RouteStretchReport",
]
