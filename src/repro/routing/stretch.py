"""Route-stretch study: backbone routes vs true shortest paths."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.backbone.static_backbone import Backbone, build_static_backbone
from repro.cluster.lowest_id import lowest_id_clustering
from repro.graph.generators import random_geometric_network
from repro.graph.traversal import bfs_distances
from repro.routing.cluster_routing import backbone_route
from repro.rng import RngLike, ensure_rng


@dataclass(frozen=True, slots=True)
class RouteStretchReport:
    """Stretch statistics over sampled source/target pairs.

    Attributes:
        pairs: Number of routed pairs.
        mean_stretch: Mean (route hops / shortest-path hops).
        max_stretch: Worst observed stretch.
        mean_backbone_fraction: Mean fraction of route-interior nodes that
            are backbone members (1.0 by construction; asserted in tests).
    """

    pairs: int
    mean_stretch: float
    max_stretch: float
    mean_backbone_fraction: float


def route_stretch_study(
    *,
    n: int = 60,
    average_degree: float = 10.0,
    networks: int = 8,
    pairs_per_network: int = 20,
    rng: RngLike = None,
) -> RouteStretchReport:
    """Sample networks and pairs; measure backbone-route stretch.

    Args:
        n: Nodes per network.
        average_degree: Density of the samples.
        networks: Number of network samples.
        pairs_per_network: Routed (source, target) pairs per sample.
        rng: Seed or generator.

    Returns:
        The aggregated :class:`RouteStretchReport`.
    """
    generator = ensure_rng(rng)
    stretches: List[float] = []
    fractions: List[float] = []
    for _ in range(networks):
        net = random_geometric_network(n, average_degree, rng=generator)
        backbone = build_static_backbone(lowest_id_clustering(net.graph))
        nodes = net.graph.nodes()
        for _ in range(pairs_per_network):
            s, t = (int(x) for x in generator.choice(nodes, 2, replace=False))
            route = backbone_route(backbone, s, t)
            optimal = bfs_distances(net.graph, s)[t]
            stretches.append((len(route) - 1) / optimal)
            interior = route[1:-1]
            if interior:
                fractions.append(
                    sum(1 for v in interior if v in backbone.nodes)
                    / len(interior)
                )
    return RouteStretchReport(
        pairs=len(stretches),
        mean_stretch=float(np.mean(stretches)),
        max_stretch=float(np.max(stretches)),
        mean_backbone_fraction=float(np.mean(fractions)) if fractions else 1.0,
    )
