"""Cluster-based unicast routing.

Route construction (CBRP-flavoured, using this library's structures):

1. ascend: the source hands the packet to its clusterhead (one hop at
   most — every node is adjacent to its head);
2. traverse: BFS over the **cluster graph** from the source's head to the
   target's head; each head-to-head hop expands to the connector path (one
   or two gateways) the selecting head's gateway selection already provides;
3. descend: the target's clusterhead delivers to the target (one hop).

The raw route is then **smoothed**: a greedy shortcut pass repeatedly jumps
from each position to the farthest later node it is directly linked to,
removing the detours the cluster abstraction introduces (e.g. ascending to
a head when the neighbour was already on the path).

All relay nodes of a route (everything strictly between source and target)
belong to the static backbone — routing rides exactly the infrastructure
the paper builds.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.backbone.static_backbone import Backbone
from repro.errors import BroadcastError, NodeNotFoundError, ReproError
from repro.types import NodeId


class RouteFailure(ReproError):
    """No route exists between the endpoints (disconnected clusters)."""


def _cluster_path(backbone: Backbone, from_head: NodeId,
                  to_head: NodeId) -> List[Tuple[NodeId, Tuple[NodeId, ...]]]:
    """BFS over the cluster graph; returns [(head, connector-from-parent)].

    The first entry is ``(from_head, ())``; each subsequent entry carries
    the gateway path from the previous head.
    """
    parent: Dict[NodeId, Optional[Tuple[NodeId, Tuple[NodeId, ...]]]] = {
        from_head: None
    }
    queue: deque[NodeId] = deque([from_head])
    while queue:
        head = queue.popleft()
        if head == to_head:
            break
        selection = backbone.selections[head]
        for child in sorted(selection.connectors):
            if child not in parent:
                parent[child] = (head, selection.connectors[child])
                queue.append(child)
    if to_head not in parent:
        raise RouteFailure(
            f"no cluster path from head {from_head} to head {to_head}"
        )
    chain: List[Tuple[NodeId, Tuple[NodeId, ...]]] = []
    cur: Optional[NodeId] = to_head
    while cur is not None:
        entry = parent[cur]
        if entry is None:
            chain.append((cur, ()))
            cur = None
        else:
            chain.append((cur, entry[1]))
            cur = entry[0]
    chain.reverse()
    return chain


def _smooth(graph, path: List[NodeId]) -> List[NodeId]:
    """Greedy shortcutting: from each hop, jump to the farthest neighbour."""
    if len(path) <= 2:
        return path
    out = [path[0]]
    i = 0
    while i < len(path) - 1:
        current = path[i]
        best = i + 1
        for j in range(len(path) - 1, i, -1):
            if graph.has_edge(current, path[j]):
                best = j
                break
        out.append(path[best])
        i = best
    return out


def backbone_route(backbone: Backbone, source: NodeId,
                   target: NodeId) -> List[NodeId]:
    """A source-to-target route riding the static backbone.

    Args:
        backbone: The static backbone (its selections define the cluster
            links used for traversal).
        source: Origin node.
        target: Destination node.

    Returns:
        The node sequence from ``source`` to ``target``; consecutive
        entries are always adjacent in the network, and interior nodes are
        backbone members.

    Raises:
        RouteFailure: if the heads are in different components.
    """
    graph = backbone.structure.graph
    if source not in graph:
        raise NodeNotFoundError(source)
    if target not in graph:
        raise NodeNotFoundError(target)
    if source == target:
        return [source]
    if graph.has_edge(source, target):
        return [source, target]
    head_of = backbone.structure.head_of
    hs, ht = head_of[source], head_of[target]
    raw: List[NodeId] = [source]
    if hs != source:
        raw.append(hs)
    for head, connector in _cluster_path(backbone, hs, ht)[1:]:
        raw.extend(connector)
        raw.append(head)
    if ht != target:
        raw.append(target)
    # Drop accidental immediate repeats (e.g. source == hs handled above,
    # but a connector may end adjacent to a repeated head id).
    deduped: List[NodeId] = [raw[0]]
    for v in raw[1:]:
        if v != deduped[-1]:
            deduped.append(v)
    path = _smooth(graph, deduped)
    for a, b in zip(path, path[1:]):
        if not graph.has_edge(a, b):  # pragma: no cover - internal guard
            raise BroadcastError(
                f"constructed route contains non-link ({a}, {b})"
            )
    return path
