"""Unit-disk range computations and average-degree calibration.

The paper fixes the *average node degree* ``d`` (6 for common, 18 for highly
dense networks) rather than the transmission range.  Ignoring border effects,
a node placed uniformly in an area ``A`` with ``n - 1`` other uniform nodes
has expected degree ``(n - 1) * pi * r^2 / A``; solving for ``r`` gives the
analytic calibration used by default.  Because the confined ``100 x 100``
square truncates disks at the border, an empirical bisection calibrator is
also provided for studies that need the *measured* mean degree to match.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro.errors import ConfigurationError, GeometryError
from repro.geometry.area import Area
from repro.rng import RngLike, ensure_rng


def pairwise_distances(positions: np.ndarray) -> np.ndarray:
    """Dense ``(n, n)`` Euclidean distance matrix (vectorised, no SciPy).

    Suitable for the paper's network sizes; for very large ``n`` use
    :class:`repro.geometry.grid.SpatialGrid` instead of materialising this.
    """
    pts = np.asarray(positions, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise GeometryError(f"expected (n, 2) positions, got shape {pts.shape}")
    diff = pts[:, None, :] - pts[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def expected_degree(n: int, radius: float, area: Area) -> float:
    """Borderless expected degree ``(n - 1) * pi * r^2 / A``."""
    if n < 1:
        raise ConfigurationError(f"need at least one node, got n={n}")
    if radius <= 0.0:
        raise GeometryError(f"radius must be positive, got {radius}")
    return (n - 1) * math.pi * radius * radius / area.size


def range_for_target_degree(n: int, degree: float, area: Optional[Area] = None) -> float:
    """Transmission range giving expected average degree ``degree``.

    Inverts the borderless expectation: ``r = sqrt(d * A / ((n - 1) * pi))``.
    This is the calibration the paper's environment implies (nodes uniform in
    ``100 x 100``, fixed average degree, range shared by all nodes).

    Args:
        n: Number of nodes (must be >= 2 — a single node has no degree).
        degree: Target average degree, ``0 < degree <= n - 1``.
        area: Working space; defaults to the paper's ``100 x 100`` square.

    Returns:
        The common transmission range ``r``.
    """
    if area is None:
        area = Area.paper()
    if n < 2:
        raise ConfigurationError(f"degree calibration needs n >= 2, got n={n}")
    if not (0.0 < degree <= n - 1):
        raise ConfigurationError(
            f"target degree must be in (0, n-1] = (0, {n - 1}], got {degree}"
        )
    return math.sqrt(degree * area.size / ((n - 1) * math.pi))


def mean_degree_of(positions: np.ndarray, radius: float) -> float:
    """Measured mean degree of the unit disk graph over ``positions``.

    Two nodes are neighbours iff their distance is strictly less than
    ``radius`` (the paper: "neighbors if and only if their geographic
    distance is less than r").
    """
    dist = pairwise_distances(positions)
    n = dist.shape[0]
    if n < 2:
        return 0.0
    adj = dist < radius
    np.fill_diagonal(adj, False)
    return float(adj.sum()) / n


def calibrate_range_empirical(
    n: int,
    degree: float,
    area: Optional[Area] = None,
    *,
    samples: int = 32,
    tolerance: float = 0.05,
    max_iterations: int = 48,
    rng: RngLike = None,
    placement: Optional[Callable[[int, Area, np.random.Generator], np.ndarray]] = None,
) -> float:
    """Bisection calibration of the range against the *measured* mean degree.

    The analytic formula ignores border truncation, which depresses the real
    mean degree by several percent at the paper's densities.  This calibrator
    averages the measured mean degree over ``samples`` random placements and
    bisects the range until the relative error is within ``tolerance``.

    Args:
        n: Number of nodes.
        degree: Target measured mean degree.
        area: Working space (paper default).
        samples: Placements averaged per bisection probe.
        tolerance: Acceptable relative error of the measured mean degree.
        max_iterations: Bisection iteration cap.
        rng: Seed or generator (the same placement batch is reused across
            probes so the bisection target is a fixed monotone function).
        placement: Placement function; defaults to uniform placement.

    Returns:
        A calibrated range.  Falls back to the bracketing midpoint if the
        iteration cap is hit (monotonicity makes this a sound estimate).
    """
    if area is None:
        area = Area.paper()
    if samples < 1:
        raise ConfigurationError(f"samples must be >= 1, got {samples}")
    if not (0.0 < tolerance < 1.0):
        raise ConfigurationError(f"tolerance must be in (0, 1), got {tolerance}")
    generator = ensure_rng(rng)
    if placement is None:
        from repro.geometry.placement import uniform_placement

        placement = uniform_placement
    batches = [placement(n, area, generator) for _ in range(samples)]

    def measured(r: float) -> float:
        return float(np.mean([mean_degree_of(b, r) for b in batches]))

    lo = 0.0
    hi = range_for_target_degree(n, degree, area)
    # Border effects only *reduce* degree, so the analytic r is a lower-side
    # starting point; grow hi until it overshoots the target.
    while measured(hi) < degree and hi < area.diagonal:
        lo = hi
        hi = min(hi * 1.5, area.diagonal)
    for _ in range(max_iterations):
        mid = 0.5 * (lo + hi)
        m = measured(mid)
        if abs(m - degree) <= tolerance * degree:
            return mid
        if m < degree:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
