"""Geometric substrate: working areas, placements, unit-disk range, mobility.

The paper's simulation environment is a ``100 x 100`` confined working space
with uniformly random node placement and a common transmission range chosen
to hit a target average degree.  This package provides those pieces plus a
spatial hash grid used to build unit disk graphs in near-linear time and
mobility models for the maintenance extension.
"""

from repro.geometry.area import Area
from repro.geometry.disk import (
    expected_degree,
    pairwise_distances,
    range_for_target_degree,
    calibrate_range_empirical,
)
from repro.geometry.grid import SpatialGrid
from repro.geometry.placement import (
    chain_placement,
    grid_placement,
    hotspot_placement,
    uniform_placement,
)
from repro.geometry.mobility import (
    MobilityModel,
    RandomWalk,
    RandomWaypoint,
    clamp_to_area,
)

__all__ = [
    "Area",
    "SpatialGrid",
    "expected_degree",
    "pairwise_distances",
    "range_for_target_degree",
    "calibrate_range_empirical",
    "uniform_placement",
    "grid_placement",
    "chain_placement",
    "hotspot_placement",
    "MobilityModel",
    "RandomWaypoint",
    "RandomWalk",
    "clamp_to_area",
]
