"""Rectangular working areas.

The paper confines nodes to a ``100 x 100`` square.  :class:`Area` is a small
value object describing an axis-aligned rectangle ``[0, width] x [0, height]``
with helpers for containment checks, sampling-domain size and clamping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GeometryError


@dataclass(frozen=True, slots=True)
class Area:
    """An axis-aligned rectangular working space anchored at the origin.

    Attributes:
        width: Horizontal extent (exclusive upper bound for x coordinates).
        height: Vertical extent (exclusive upper bound for y coordinates).
    """

    width: float = 100.0
    height: float = 100.0

    def __post_init__(self) -> None:
        if not (self.width > 0.0 and self.height > 0.0):
            raise GeometryError(
                f"area dimensions must be positive, got {self.width} x {self.height}"
            )
        if not (np.isfinite(self.width) and np.isfinite(self.height)):
            raise GeometryError("area dimensions must be finite")

    @property
    def size(self) -> float:
        """Surface area ``width * height`` (the ``A`` in degree calibration)."""
        return self.width * self.height

    @property
    def diagonal(self) -> float:
        """Length of the rectangle diagonal — an upper bound on any distance."""
        return float(np.hypot(self.width, self.height))

    def contains(self, positions: np.ndarray) -> np.ndarray:
        """Vectorised containment test.

        Args:
            positions: Array of shape ``(n, 2)``.

        Returns:
            Boolean array of shape ``(n,)``; ``True`` where the point lies in
            ``[0, width] x [0, height]``.
        """
        pts = np.asarray(positions, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise GeometryError(f"expected (n, 2) positions, got shape {pts.shape}")
        return (
            (pts[:, 0] >= 0.0)
            & (pts[:, 0] <= self.width)
            & (pts[:, 1] >= 0.0)
            & (pts[:, 1] <= self.height)
        )

    def clamp(self, positions: np.ndarray) -> np.ndarray:
        """Return a copy of ``positions`` clamped into the rectangle."""
        pts = np.array(positions, dtype=float, copy=True)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise GeometryError(f"expected (n, 2) positions, got shape {pts.shape}")
        np.clip(pts[:, 0], 0.0, self.width, out=pts[:, 0])
        np.clip(pts[:, 1], 0.0, self.height, out=pts[:, 1])
        return pts

    @classmethod
    def paper(cls) -> "Area":
        """The paper's ``100 x 100`` confined working space."""
        return cls(100.0, 100.0)
