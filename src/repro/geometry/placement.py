"""Node placement strategies.

The paper places nodes uniformly at random in the confined working space.
Additional deterministic placements (grid, chain) support worst-case analyses
— the paper's time-complexity argument uses a monotone-ID chain — and a
hotspot placement models clustered deployments for robustness testing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import perf
from repro.errors import ConfigurationError
from repro.geometry.area import Area
from repro.rng import RngLike, ensure_rng


def _check_n(n: int) -> None:
    if n < 1:
        raise ConfigurationError(f"placement needs n >= 1, got n={n}")


@perf.timed("placement")
def uniform_placement(n: int, area: Optional[Area] = None, rng: RngLike = None) -> np.ndarray:
    """``n`` i.i.d. uniform positions in ``area`` (the paper's placement)."""
    _check_n(n)
    area = area or Area.paper()
    generator = ensure_rng(rng)
    pts = generator.random((n, 2))
    pts[:, 0] *= area.width
    pts[:, 1] *= area.height
    return pts


def grid_placement(n: int, area: Optional[Area] = None, jitter: float = 0.0,
                   rng: RngLike = None) -> np.ndarray:
    """Near-square grid of ``n`` positions, optionally jittered.

    Args:
        n: Number of nodes.
        area: Working space.
        jitter: Uniform perturbation amplitude as a fraction of the cell
            pitch (``0`` = exact lattice); positions are clamped to the area.
        rng: Seed or generator (only used when ``jitter > 0``).
    """
    _check_n(n)
    if jitter < 0.0:
        raise ConfigurationError(f"jitter must be >= 0, got {jitter}")
    area = area or Area.paper()
    cols = int(np.ceil(np.sqrt(n)))
    rows = int(np.ceil(n / cols))
    xs = (np.arange(cols) + 0.5) * (area.width / cols)
    ys = (np.arange(rows) + 0.5) * (area.height / rows)
    xx, yy = np.meshgrid(xs, ys)
    pts = np.column_stack([xx.ravel(), yy.ravel()])[:n]
    if jitter > 0.0:
        generator = ensure_rng(rng)
        pitch = min(area.width / cols, area.height / rows)
        pts = pts + generator.uniform(-jitter * pitch, jitter * pitch, size=pts.shape)
        pts = area.clamp(pts)
    return pts


def chain_placement(n: int, spacing: float, area: Optional[Area] = None) -> np.ndarray:
    """``n`` collinear positions spaced ``spacing`` apart along the diagonal.

    With a transmission range in ``(spacing, 2 * spacing)`` this realises the
    paper's worst case for lowest-ID clustering: a chain whose ids are
    monotone from one end to the other forces ``n`` sequential rounds.
    The chain runs along the area diagonal so long chains fit.
    """
    _check_n(n)
    if spacing <= 0.0:
        raise ConfigurationError(f"spacing must be positive, got {spacing}")
    area = area or Area.paper()
    length = spacing * (n - 1)
    if length > area.diagonal:
        raise ConfigurationError(
            f"chain of length {length:.1f} does not fit in area diagonal "
            f"{area.diagonal:.1f}; enlarge the area or reduce spacing"
        )
    t = np.arange(n) * spacing / max(area.diagonal, 1e-12)
    return np.column_stack([t * area.width, t * area.height])


def hotspot_placement(
    n: int,
    area: Optional[Area] = None,
    *,
    hotspots: int = 3,
    spread: float = 0.08,
    rng: RngLike = None,
) -> np.ndarray:
    """Cluster ``n`` positions around ``hotspots`` random centres.

    Models non-uniform deployments (e.g. teams around points of interest).
    Each node picks a hotspot uniformly and is displaced by an isotropic
    Gaussian with standard deviation ``spread * min(width, height)``;
    positions are clamped to the area.
    """
    _check_n(n)
    if hotspots < 1:
        raise ConfigurationError(f"need >= 1 hotspot, got {hotspots}")
    if spread <= 0.0:
        raise ConfigurationError(f"spread must be positive, got {spread}")
    area = area or Area.paper()
    generator = ensure_rng(rng)
    centres = uniform_placement(hotspots, area, generator)
    choice = generator.integers(0, hotspots, size=n)
    sigma = spread * min(area.width, area.height)
    pts = centres[choice] + generator.normal(0.0, sigma, size=(n, 2))
    return area.clamp(pts)
