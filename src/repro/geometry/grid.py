"""Spatial hash grid for fixed-radius neighbour queries.

Building a unit disk graph naively costs ``O(n^2)`` distance checks.  The
paper's networks are small (``n <= 100``) but the library also supports much
larger networks for scaling studies, so :class:`SpatialGrid` buckets points
into square cells of side ``radius``; all neighbours of a point then lie in
its own or the eight surrounding cells.  For uniform placements this makes
graph construction expected ``O(n)``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.errors import GeometryError

CellKey = Tuple[int, int]

_NEIGHBOUR_OFFSETS: Tuple[CellKey, ...] = tuple(
    (dx, dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1)
)


class SpatialGrid:
    """Bucket 2-D points into cells of side ``cell_size`` for radius queries.

    The grid is built once from an ``(n, 2)`` position array; indices into
    that array are what the query methods return.

    Args:
        positions: Array of shape ``(n, 2)``.
        cell_size: Side length of each square cell; must be positive.  For
            unit-disk queries pass the transmission radius.
    """

    __slots__ = ("_positions", "_cell_size", "_cells")

    def __init__(self, positions: np.ndarray, cell_size: float) -> None:
        pts = np.asarray(positions, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise GeometryError(f"expected (n, 2) positions, got shape {pts.shape}")
        if not (cell_size > 0.0 and np.isfinite(cell_size)):
            raise GeometryError(f"cell size must be positive and finite, got {cell_size}")
        self._positions = pts
        self._cell_size = float(cell_size)
        self._cells: Dict[CellKey, List[int]] | None = None

    @property
    def cells(self) -> Dict[CellKey, List[int]]:
        """Cell key -> bucket of point indices, built on first use.

        Lazy because the vectorised :meth:`pair_arrays` sweep never touches
        the Python dict — only the per-point query methods do.
        """
        if self._cells is None:
            cells: Dict[CellKey, List[int]] = defaultdict(list)
            keys = np.floor(self._positions / self._cell_size).astype(np.int64)
            for idx, (cx, cy) in enumerate(keys):
                cells[(int(cx), int(cy))].append(idx)
            self._cells = dict(cells)
        return self._cells

    @property
    def cell_size(self) -> float:
        """Side length of the grid cells."""
        return self._cell_size

    def __len__(self) -> int:
        return int(self._positions.shape[0])

    def cell_of(self, point: np.ndarray) -> CellKey:
        """Cell key containing ``point`` (a length-2 array-like)."""
        x, y = float(point[0]), float(point[1])
        return (int(np.floor(x / self._cell_size)), int(np.floor(y / self._cell_size)))

    def candidates_near(self, point: np.ndarray) -> Iterator[int]:
        """Yield indices of points in the 3x3 cell block around ``point``.

        This is a superset of the true radius-``cell_size`` neighbourhood;
        callers filter by exact distance.
        """
        cx, cy = self.cell_of(point)
        cells = self.cells
        for dx, dy in _NEIGHBOUR_OFFSETS:
            bucket = cells.get((cx + dx, cy + dy))
            if bucket:
                yield from bucket

    def neighbours_within(self, index: int, radius: float) -> List[int]:
        """Indices of points strictly within ``radius`` of point ``index``.

        The queried point itself is excluded.  ``radius`` must not exceed the
        grid's ``cell_size`` (otherwise the 3x3 block would miss neighbours).
        """
        if radius > self._cell_size + 1e-12:
            raise GeometryError(
                f"query radius {radius} exceeds grid cell size {self._cell_size}"
            )
        p = self._positions[index]
        out: List[int] = []
        r2 = radius * radius
        for j in self.candidates_near(p):
            if j == index:
                continue
            d = self._positions[j] - p
            if d[0] * d[0] + d[1] * d[1] < r2:
                out.append(j)
        return out

    def pairs_within(self, radius: float) -> Iterator[Tuple[int, int]]:
        """Yield each unordered pair ``(i, j)`` with ``i < j`` within ``radius``.

        Pairs are generated exactly once by only pairing ``i < j``.
        """
        if radius > self._cell_size + 1e-12:
            raise GeometryError(
                f"query radius {radius} exceeds grid cell size {self._cell_size}"
            )
        r2 = radius * radius
        pts = self._positions
        for i in range(pts.shape[0]):
            p = pts[i]
            for j in self.candidates_near(p):
                if j <= i:
                    continue
                d = pts[j] - p
                if d[0] * d[0] + d[1] * d[1] < r2:
                    yield (i, j)

    def pair_arrays(self, radius: float) -> Tuple[np.ndarray, np.ndarray]:
        """All unordered pairs within ``radius`` as two index arrays.

        The vectorised counterpart of :meth:`pairs_within`: the whole cell
        sweep — candidate gathering per cell-neighbourhood and the exact
        distance filter — runs as numpy array operations, with no Python
        loop over points and no intermediate Python edge list.  Each
        unordered pair appears exactly once; the two returned arrays hold
        its endpoints (not necessarily ``i < j`` within cross-cell blocks).
        """
        if radius > self._cell_size + 1e-12:
            raise GeometryError(
                f"query radius {radius} exceeds grid cell size {self._cell_size}"
            )
        pts = self._positions
        n = pts.shape[0]
        empty = np.empty(0, dtype=np.int64)
        if n < 2:
            return empty, empty
        keys2d = np.floor(pts / self._cell_size).astype(np.int64)
        kx = keys2d[:, 0] - keys2d[:, 0].min()
        ky = keys2d[:, 1] - keys2d[:, 1].min()
        # +3 guard band: neighbour offsets step at most one cell outside the
        # occupied range, so distinct (kx, ky) always map to distinct keys.
        width = ky.max() + 3
        key = (kx + 1) * width + (ky + 1)
        # The whole sweep runs in cell-sorted space: position s is the s-th
        # point in cell-key order, candidate ranges are direct slices of
        # that order, and only the final surviving pairs map back through
        # ``order`` to original indices.
        order = np.argsort(key, kind="stable")
        skey = key[order]
        first = np.empty(n, dtype=bool)
        first[0] = True
        np.not_equal(skey[1:], skey[:-1], out=first[1:])
        starts = np.flatnonzero(first)
        unique_keys = skey[starts]
        counts = np.diff(np.append(starts, n))
        sx = pts[order, 0]
        sy = pts[order, 1]
        r2 = radius * radius
        # Half stencil: the same cell (s < t dedup) plus four of the eight
        # neighbour offsets; every cross-cell block is then visited once.
        # All five offsets resolve and gather in single batched passes.
        steps = np.array([0, width, -width + 1, 1, width + 1], dtype=np.int64)
        nbr_key = (skey[None, :] + steps[:, None]).ravel()
        pos = np.searchsorted(unique_keys, nbr_key)
        pos_c = np.minimum(pos, unique_keys.size - 1)
        valid = unique_keys[pos_c] == nbr_key
        cnt = np.where(valid, counts[pos_c], 0)
        s_rep = np.repeat(np.tile(np.arange(n, dtype=np.int64), 5), cnt)
        t_cand = grouped_ranges(np.where(valid, starts[pos_c], 0), cnt)
        # Entries from the first (same-cell) block pair each point with its
        # whole bucket and occupy exactly the first ``m0`` slots of the
        # flat arrays; keep only s < t there to emit each pair once.
        m0 = int(cnt[:n].sum())
        close = np.empty(s_rep.shape[0], dtype=bool)
        np.less(s_rep[:m0], t_cand[:m0], out=close[:m0])
        close[m0:] = True
        ddx = sx[s_rep] - sx[t_cand]
        ddy = sy[s_rep] - sy[t_cand]
        close &= ddx * ddx + ddy * ddy < r2
        return order[s_rep[close]], order[t_cand[close]]


def grouped_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(starts[k], starts[k] + counts[k])`` for all ``k``.

    The standard vectorised gather trick shared by the grid sweep and every
    CSR kernel: expands per-group slice descriptors into one flat index
    array without a Python loop.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    offsets = np.repeat(ends - counts, counts)
    return np.repeat(starts, counts) + (np.arange(total, dtype=np.int64) - offsets)
