"""Spatial hash grid for fixed-radius neighbour queries.

Building a unit disk graph naively costs ``O(n^2)`` distance checks.  The
paper's networks are small (``n <= 100``) but the library also supports much
larger networks for scaling studies, so :class:`SpatialGrid` buckets points
into square cells of side ``radius``; all neighbours of a point then lie in
its own or the eight surrounding cells.  For uniform placements this makes
graph construction expected ``O(n)``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.errors import GeometryError

CellKey = Tuple[int, int]

_NEIGHBOUR_OFFSETS: Tuple[CellKey, ...] = tuple(
    (dx, dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1)
)


class SpatialGrid:
    """Bucket 2-D points into cells of side ``cell_size`` for radius queries.

    The grid is built once from an ``(n, 2)`` position array; indices into
    that array are what the query methods return.

    Args:
        positions: Array of shape ``(n, 2)``.
        cell_size: Side length of each square cell; must be positive.  For
            unit-disk queries pass the transmission radius.
    """

    __slots__ = ("_positions", "_cell_size", "_cells")

    def __init__(self, positions: np.ndarray, cell_size: float) -> None:
        pts = np.asarray(positions, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise GeometryError(f"expected (n, 2) positions, got shape {pts.shape}")
        if not (cell_size > 0.0 and np.isfinite(cell_size)):
            raise GeometryError(f"cell size must be positive and finite, got {cell_size}")
        self._positions = pts
        self._cell_size = float(cell_size)
        cells: Dict[CellKey, List[int]] = defaultdict(list)
        keys = np.floor(pts / self._cell_size).astype(np.int64)
        for idx, (cx, cy) in enumerate(keys):
            cells[(int(cx), int(cy))].append(idx)
        self._cells = dict(cells)

    @property
    def cell_size(self) -> float:
        """Side length of the grid cells."""
        return self._cell_size

    def __len__(self) -> int:
        return int(self._positions.shape[0])

    def cell_of(self, point: np.ndarray) -> CellKey:
        """Cell key containing ``point`` (a length-2 array-like)."""
        x, y = float(point[0]), float(point[1])
        return (int(np.floor(x / self._cell_size)), int(np.floor(y / self._cell_size)))

    def candidates_near(self, point: np.ndarray) -> Iterator[int]:
        """Yield indices of points in the 3x3 cell block around ``point``.

        This is a superset of the true radius-``cell_size`` neighbourhood;
        callers filter by exact distance.
        """
        cx, cy = self.cell_of(point)
        for dx, dy in _NEIGHBOUR_OFFSETS:
            bucket = self._cells.get((cx + dx, cy + dy))
            if bucket:
                yield from bucket

    def neighbours_within(self, index: int, radius: float) -> List[int]:
        """Indices of points strictly within ``radius`` of point ``index``.

        The queried point itself is excluded.  ``radius`` must not exceed the
        grid's ``cell_size`` (otherwise the 3x3 block would miss neighbours).
        """
        if radius > self._cell_size + 1e-12:
            raise GeometryError(
                f"query radius {radius} exceeds grid cell size {self._cell_size}"
            )
        p = self._positions[index]
        out: List[int] = []
        r2 = radius * radius
        for j in self.candidates_near(p):
            if j == index:
                continue
            d = self._positions[j] - p
            if d[0] * d[0] + d[1] * d[1] < r2:
                out.append(j)
        return out

    def pairs_within(self, radius: float) -> Iterator[Tuple[int, int]]:
        """Yield each unordered pair ``(i, j)`` with ``i < j`` within ``radius``.

        Pairs are generated exactly once by only pairing ``i < j``.
        """
        if radius > self._cell_size + 1e-12:
            raise GeometryError(
                f"query radius {radius} exceeds grid cell size {self._cell_size}"
            )
        r2 = radius * radius
        pts = self._positions
        for i in range(pts.shape[0]):
            p = pts[i]
            for j in self.candidates_near(p):
                if j <= i:
                    continue
                d = pts[j] - p
                if d[0] * d[0] + d[1] * d[1] < r2:
                    yield (i, j)
