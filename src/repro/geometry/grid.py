"""Spatial hash grid for fixed-radius neighbour queries.

Building a unit disk graph naively costs ``O(n^2)`` distance checks.  The
paper's networks are small (``n <= 100``) but the library also supports much
larger networks for scaling studies, so :class:`SpatialGrid` buckets points
into square cells of side ``radius``; all neighbours of a point then lie in
its own or the eight surrounding cells.  For uniform placements this makes
graph construction expected ``O(n)``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.errors import GeometryError

CellKey = Tuple[int, int]

_NEIGHBOUR_OFFSETS: Tuple[CellKey, ...] = tuple(
    (dx, dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1)
)


class SpatialGrid:
    """Bucket 2-D points into cells of side ``cell_size`` for radius queries.

    The grid is built once from an ``(n, 2)`` position array; indices into
    that array are what the query methods return.

    Args:
        positions: Array of shape ``(n, 2)``.
        cell_size: Side length of each square cell; must be positive.  For
            unit-disk queries pass the transmission radius.
    """

    __slots__ = ("_positions", "_cell_size", "_cells")

    def __init__(self, positions: np.ndarray, cell_size: float) -> None:
        pts = np.asarray(positions, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise GeometryError(f"expected (n, 2) positions, got shape {pts.shape}")
        if not (cell_size > 0.0 and np.isfinite(cell_size)):
            raise GeometryError(f"cell size must be positive and finite, got {cell_size}")
        self._positions = pts
        self._cell_size = float(cell_size)
        self._cells: Dict[CellKey, List[int]] | None = None

    @property
    def cells(self) -> Dict[CellKey, List[int]]:
        """Cell key -> bucket of point indices, built on first use.

        Lazy because the vectorised :meth:`pair_arrays` sweep never touches
        the Python dict — only the per-point query methods do.
        """
        if self._cells is None:
            cells: Dict[CellKey, List[int]] = defaultdict(list)
            keys = np.floor(self._positions / self._cell_size).astype(np.int64)
            for idx, (cx, cy) in enumerate(keys):
                cells[(int(cx), int(cy))].append(idx)
            self._cells = dict(cells)
        return self._cells

    @property
    def cell_size(self) -> float:
        """Side length of the grid cells."""
        return self._cell_size

    def __len__(self) -> int:
        return int(self._positions.shape[0])

    def cell_of(self, point: np.ndarray) -> CellKey:
        """Cell key containing ``point`` (a length-2 array-like)."""
        x, y = float(point[0]), float(point[1])
        return (int(np.floor(x / self._cell_size)), int(np.floor(y / self._cell_size)))

    def candidates_near(self, point: np.ndarray) -> Iterator[int]:
        """Yield indices of points in the 3x3 cell block around ``point``.

        This is a superset of the true radius-``cell_size`` neighbourhood;
        callers filter by exact distance.
        """
        cx, cy = self.cell_of(point)
        cells = self.cells
        for dx, dy in _NEIGHBOUR_OFFSETS:
            bucket = cells.get((cx + dx, cy + dy))
            if bucket:
                yield from bucket

    def neighbours_within(self, index: int, radius: float) -> List[int]:
        """Indices of points strictly within ``radius`` of point ``index``.

        The queried point itself is excluded.  ``radius`` must not exceed the
        grid's ``cell_size`` (otherwise the 3x3 block would miss neighbours).
        """
        if radius > self._cell_size + 1e-12:
            raise GeometryError(
                f"query radius {radius} exceeds grid cell size {self._cell_size}"
            )
        p = self._positions[index]
        out: List[int] = []
        r2 = radius * radius
        for j in self.candidates_near(p):
            if j == index:
                continue
            d = self._positions[j] - p
            if d[0] * d[0] + d[1] * d[1] < r2:
                out.append(j)
        return out

    def pairs_within(self, radius: float) -> Iterator[Tuple[int, int]]:
        """Yield each unordered pair ``(i, j)`` with ``i < j`` within ``radius``.

        Pairs are generated exactly once by only pairing ``i < j``.
        """
        if radius > self._cell_size + 1e-12:
            raise GeometryError(
                f"query radius {radius} exceeds grid cell size {self._cell_size}"
            )
        r2 = radius * radius
        pts = self._positions
        for i in range(pts.shape[0]):
            p = pts[i]
            for j in self.candidates_near(p):
                if j <= i:
                    continue
                d = pts[j] - p
                if d[0] * d[0] + d[1] * d[1] < r2:
                    yield (i, j)

    def pair_arrays(self, radius: float) -> Tuple[np.ndarray, np.ndarray]:
        """All unordered pairs within ``radius`` as two index arrays.

        The vectorised counterpart of :meth:`pairs_within`: the whole cell
        sweep — candidate gathering per cell-neighbourhood and the exact
        distance filter — runs as numpy array operations, with no Python
        loop over points and no intermediate Python edge list.  Each
        unordered pair appears exactly once; the two returned arrays hold
        its endpoints (not necessarily ``i < j`` within cross-cell blocks).
        """
        if radius > self._cell_size + 1e-12:
            raise GeometryError(
                f"query radius {radius} exceeds grid cell size {self._cell_size}"
            )
        pts = self._positions
        n = pts.shape[0]
        empty = np.empty(0, dtype=np.int64)
        if n < 2:
            return empty, empty
        keys2d = np.floor(pts / self._cell_size).astype(np.int64)
        kx = keys2d[:, 0] - keys2d[:, 0].min()
        ky = keys2d[:, 1] - keys2d[:, 1].min()
        # +3 guard band: neighbour offsets step at most one cell outside the
        # occupied range, so distinct (kx, ky) always map to distinct keys.
        width = ky.max() + 3
        key = (kx + 1) * width + (ky + 1)
        # The whole sweep runs in cell-sorted space: position s is the s-th
        # point in cell-key order, candidate ranges are direct slices of
        # that order, and only the final surviving pairs map back through
        # ``order`` to original indices.
        order = np.argsort(key, kind="stable")
        skey = key[order]
        first = np.empty(n, dtype=bool)
        first[0] = True
        np.not_equal(skey[1:], skey[:-1], out=first[1:])
        starts = np.flatnonzero(first)
        unique_keys = skey[starts]
        counts = np.diff(np.append(starts, n))
        sx = pts[order, 0]
        sy = pts[order, 1]
        r2 = radius * radius
        # Half stencil: the same cell (s < t dedup) plus four of the eight
        # neighbour offsets; every cross-cell block is then visited once.
        # All five offsets resolve and gather in single batched passes.
        steps = np.array([0, width, -width + 1, 1, width + 1], dtype=np.int64)
        nbr_key = (skey[None, :] + steps[:, None]).ravel()
        pos = np.searchsorted(unique_keys, nbr_key)
        pos_c = np.minimum(pos, unique_keys.size - 1)
        valid = unique_keys[pos_c] == nbr_key
        cnt = np.where(valid, counts[pos_c], 0)
        s_rep = np.repeat(np.tile(np.arange(n, dtype=np.int64), 5), cnt)
        t_cand = grouped_ranges(np.where(valid, starts[pos_c], 0), cnt)
        # Entries from the first (same-cell) block pair each point with its
        # whole bucket and occupy exactly the first ``m0`` slots of the
        # flat arrays; keep only s < t there to emit each pair once.
        m0 = int(cnt[:n].sum())
        close = np.empty(s_rep.shape[0], dtype=bool)
        np.less(s_rep[:m0], t_cand[:m0], out=close[:m0])
        close[m0:] = True
        ddx = sx[s_rep] - sx[t_cand]
        ddy = sy[s_rep] - sy[t_cand]
        close &= ddx * ddx + ddy * ddy < r2
        return order[s_rep[close]], order[t_cand[close]]


#: Fixed key-packing geometry for :class:`IncrementalGrid`.  Unlike
#: :meth:`SpatialGrid.pair_arrays`, which rebases cell coordinates on the
#: data extent it sees once, an incremental index outlives many position
#: snapshots — so keys use a fixed offset/stride large enough for any
#: realistic area (cell coordinates up to ±2^20) and small enough that
#: packed keys stay far inside int64.
_GRID_OFFSET = 1 << 20
_GRID_STRIDE = 1 << 21


class IncrementalGrid:
    """A cell-sorted point index maintained incrementally across ticks.

    The mobility hot path re-bins every tick; rebuilding the cell-sorted
    order from scratch costs an ``O(n log n)`` argsort per tick even when
    almost nobody changed cell.  This index keeps the order between ticks
    and repairs it in place: per :meth:`update` only the *cell-crossing*
    points are pulled out and merged back at their new keys (two
    ``searchsorted`` passes), so the per-tick cost is ``O(n)`` plus
    ``O(c log c)`` for the ``c`` crossers.

    :meth:`delta_pairs` then runs the same 5-stencil half sweep as
    :meth:`SpatialGrid.pair_arrays`, but restricted to the cells that can
    contain a pair with a moved endpoint — the *dirty* cells (cells
    holding a moved point) plus their backward-stencil neighbours — and
    keeps only pairs with at least one moved endpoint.  Diffing those
    against the previous adjacency yields the exact per-tick edge delta.

    Args:
        positions: Initial ``(n, 2)`` position array.
        cell_size: Cell side; for unit-disk deltas pass the radius.
    """

    __slots__ = ("_pts", "_cell_size", "_key", "_order")

    _STEPS = np.array(
        [0, _GRID_STRIDE, -_GRID_STRIDE + 1, 1, _GRID_STRIDE + 1],
        dtype=np.int64,
    )

    def __init__(self, positions: np.ndarray, cell_size: float) -> None:
        pts = np.array(positions, dtype=float, copy=True)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise GeometryError(f"expected (n, 2) positions, got shape {pts.shape}")
        if not (cell_size > 0.0 and np.isfinite(cell_size)):
            raise GeometryError(f"cell size must be positive and finite, got {cell_size}")
        self._pts = pts
        self._cell_size = float(cell_size)
        self._key = self._keys_of(pts)
        self._order = np.argsort(self._key, kind="stable")

    def _keys_of(self, pts: np.ndarray) -> np.ndarray:
        cells = np.floor(pts / self._cell_size).astype(np.int64)
        if cells.size and (np.abs(cells) >= _GRID_OFFSET - 1).any():
            raise GeometryError(
                "positions exceed the incremental grid's fixed cell range"
            )
        return ((cells[:, 0] + _GRID_OFFSET) * _GRID_STRIDE
                + cells[:, 1] + _GRID_OFFSET)

    @property
    def positions(self) -> np.ndarray:
        """The current position snapshot (do not mutate)."""
        return self._pts

    def update(self, new_positions: np.ndarray) -> np.ndarray:
        """Adopt a new position snapshot; returns the moved-point mask.

        Only points whose cell changed move within the maintained sorted
        order: the survivors keep their relative order (still key-sorted
        after masking), and the crossers are sorted among themselves and
        merged back — never a full re-sort.
        """
        pts = np.array(new_positions, dtype=float, copy=True)
        if pts.shape != self._pts.shape:
            raise GeometryError(
                f"expected positions of shape {self._pts.shape}, got {pts.shape}"
            )
        moved = (pts[:, 0] != self._pts[:, 0]) | (pts[:, 1] != self._pts[:, 1])
        new_key = self._keys_of(pts)
        crossed = new_key != self._key
        if crossed.any():
            stay = self._order[~crossed[self._order]]
            movers = np.flatnonzero(crossed)
            movers = movers[np.argsort(new_key[movers], kind="stable")]
            stay_keys = new_key[stay]
            mover_keys = new_key[movers]
            merged = np.empty(self._order.shape[0], dtype=np.int64)
            # Stable two-sorted-array merge; survivors go first within a
            # tied key (side defaults keep stay < movers), which is all
            # the sweep needs — any key-sorted order is valid.
            merged[np.arange(stay.shape[0], dtype=np.int64)
                   + np.searchsorted(mover_keys, stay_keys)] = stay
            merged[np.arange(movers.shape[0], dtype=np.int64)
                   + np.searchsorted(stay_keys, mover_keys, side="right")] = movers
            self._order = merged
        self._pts = pts
        self._key = new_key
        return moved

    def delta_pairs(
        self, radius: float, moved: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """All in-range pairs with >= 1 moved endpoint, each exactly once.

        Runs the half-stencil sweep with the *source* role restricted to
        cells that are dirty (contain a moved point) or have a dirty cell
        in their forward stencil — every qualifying pair is generated from
        exactly one side, as in the full sweep.  Cells nobody moved in or
        near are never touched.
        """
        if radius > self._cell_size + 1e-12:
            raise GeometryError(
                f"query radius {radius} exceeds grid cell size {self._cell_size}"
            )
        empty = np.empty(0, dtype=np.int64)
        if not moved.any():
            return empty, empty
        order = self._order
        skey = self._key[order]
        n = order.shape[0]
        first = np.empty(n, dtype=bool)
        first[0] = True
        np.not_equal(skey[1:], skey[:-1], out=first[1:])
        starts = np.flatnonzero(first)
        unique_keys = skey[starts]
        counts = np.diff(np.append(starts, n))
        # Source cells: a pair (s, t) is emitted while sweeping s's cell,
        # with t's cell at one of the five forward offsets.  The pair has
        # a moved endpoint in cell D iff s's cell is D itself (offset 0)
        # or D minus a forward offset — so sweep the dirty cells dilated
        # backwards through the stencil.
        dirty = _sorted_unique(self._key[moved])
        src_keys = _sorted_unique((dirty[None, :] - self._STEPS[:, None]).ravel())
        pos = np.searchsorted(unique_keys, src_keys)
        pos_c = np.minimum(pos, unique_keys.shape[0] - 1)
        src_cells = pos_c[unique_keys[pos_c] == src_keys]
        # Sweep points of the source cells exactly like ``pair_arrays``,
        # in cell-sorted space.
        p = grouped_ranges(starts[src_cells], counts[src_cells])
        nbr_key = (skey[p][None, :] + self._STEPS[:, None]).ravel()
        pos = np.searchsorted(unique_keys, nbr_key)
        pos_c = np.minimum(pos, unique_keys.shape[0] - 1)
        valid = unique_keys[pos_c] == nbr_key
        cnt = np.where(valid, counts[pos_c], 0)
        s_rep = np.repeat(np.tile(p, 5), cnt)
        t_cand = grouped_ranges(np.where(valid, starts[pos_c], 0), cnt)
        m0 = int(cnt[: p.shape[0]].sum())
        close = np.empty(s_rep.shape[0], dtype=bool)
        np.less(s_rep[:m0], t_cand[:m0], out=close[:m0])
        close[m0:] = True
        sx = self._pts[order, 0]
        sy = self._pts[order, 1]
        ddx = sx[s_rep] - sx[t_cand]
        ddy = sy[s_rep] - sy[t_cand]
        close &= ddx * ddx + ddy * ddy < radius * radius
        us, vs = order[s_rep[close]], order[t_cand[close]]
        touched = moved[us] | moved[vs]
        return us[touched], vs[touched]


def _sorted_unique(values: np.ndarray) -> np.ndarray:
    """Sorted unique cell keys via stable (radix) sort + boundary mask.

    Sidesteps the hash-table path of ``np.unique``, whose fixed overhead
    dominates on the per-tick dirty-cell key sets.
    """
    if values.shape[0] <= 1:
        return np.sort(values)
    out = np.sort(values, kind="stable")
    keep = np.empty(out.shape[0], dtype=bool)
    keep[0] = True
    np.not_equal(out[1:], out[:-1], out=keep[1:])
    return out[keep]


def grouped_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(starts[k], starts[k] + counts[k])`` for all ``k``.

    The standard vectorised gather trick shared by the grid sweep and every
    CSR kernel: expands per-group slice descriptors into one flat index
    array without a Python loop.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    offsets = np.repeat(ends - counts, counts)
    return np.repeat(starts, counts) + (np.arange(total, dtype=np.int64) - offsets)
