"""Mobility models for the maintenance extension.

The paper motivates the dynamic backbone by the cost of maintaining a static
backbone under mobility but evaluates static snapshots only.  These models
let :mod:`repro.maintenance` exercise re-clustering and backbone repair under
movement: the classic **random waypoint** model and a reflecting **random
walk**.  Both advance an ``(n, 2)`` position array in place-free steps (a new
array is returned each tick) so histories can be retained cheaply.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, GeometryError
from repro.geometry.area import Area
from repro.rng import RngLike, ensure_rng


def _validate_dt(dt: float) -> float:
    """A finite, non-negative tick duration (``NaN`` compares false to
    everything, so a plain ``dt < 0`` check would let it through and every
    position would silently become ``NaN``)."""
    dt = float(dt)
    if not (np.isfinite(dt) and dt >= 0.0):
        raise ConfigurationError(f"dt must be finite and >= 0, got {dt}")
    return dt


def clamp_to_area(positions: np.ndarray, area: Area) -> np.ndarray:
    """Reflect positions that left ``area`` back inside (billiard reflection).

    A point at ``-x`` maps to ``x``; a point at ``width + x`` maps to
    ``width - x``.  Multiple reflections are handled by folding.
    """
    pts = np.array(positions, dtype=float, copy=True)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise GeometryError(f"expected (n, 2) positions, got shape {pts.shape}")
    for axis, limit in ((0, area.width), (1, area.height)):
        x = np.mod(pts[:, axis], 2.0 * limit)
        pts[:, axis] = np.where(x > limit, 2.0 * limit - x, x)
    return pts


class MobilityModel(abc.ABC):
    """Base class: owns the area, speed range and RNG stream.

    Subclasses implement :meth:`step`, advancing positions by ``dt``.
    """

    def __init__(self, area: Optional[Area] = None, rng: RngLike = None) -> None:
        self.area = area or Area.paper()
        self.rng = ensure_rng(rng)

    @abc.abstractmethod
    def step(self, positions: np.ndarray, dt: float) -> np.ndarray:
        """Return new positions after ``dt`` time units."""


class RandomWalk(MobilityModel):
    """Reflecting random walk: each tick every node picks a fresh heading.

    Args:
        speed: Distance covered per unit time by every node.
        area: Working space.
        rng: Seed or generator.
    """

    def __init__(self, speed: float = 1.0, area: Optional[Area] = None,
                 rng: RngLike = None) -> None:
        super().__init__(area, rng)
        speed = float(speed)
        if not (np.isfinite(speed) and speed >= 0.0):
            raise ConfigurationError(
                f"speed must be finite and >= 0, got {speed}"
            )
        self.speed = speed

    def step(self, positions: np.ndarray, dt: float) -> np.ndarray:
        dt = _validate_dt(dt)
        pts = np.asarray(positions, dtype=float)
        theta = self.rng.uniform(0.0, 2.0 * np.pi, size=pts.shape[0])
        delta = np.column_stack([np.cos(theta), np.sin(theta)]) * (self.speed * dt)
        return clamp_to_area(pts + delta, self.area)


class RandomWaypoint(MobilityModel):
    """Random waypoint: travel to a uniform target, pause, pick a new one.

    Per-node state (current target, per-node speed, remaining pause) is kept
    inside the model, keyed by array row, so the same model instance must be
    stepped with a consistently-shaped position array.

    Args:
        speed_range: ``(min, max)`` uniform speed drawn per leg.
        pause_time: Pause duration at each waypoint.
        area: Working space.
        rng: Seed or generator.
    """

    def __init__(
        self,
        speed_range: tuple[float, float] = (0.5, 2.0),
        pause_time: float = 0.0,
        area: Optional[Area] = None,
        rng: RngLike = None,
    ) -> None:
        super().__init__(area, rng)
        lo, hi = float(speed_range[0]), float(speed_range[1])
        if not (np.isfinite(lo) and np.isfinite(hi) and 0.0 < lo <= hi):
            raise ConfigurationError(
                f"need finite 0 < min <= max speed, got {speed_range}"
            )
        pause_time = float(pause_time)
        if not (np.isfinite(pause_time) and pause_time >= 0.0):
            raise ConfigurationError(
                f"pause_time must be finite and >= 0, got {pause_time}"
            )
        self.speed_range = (lo, hi)
        self.pause_time = pause_time
        self._targets: Optional[np.ndarray] = None
        self._speeds: Optional[np.ndarray] = None
        self._pause_left: Optional[np.ndarray] = None

    def _init_state(self, n: int) -> None:
        from repro.geometry.placement import uniform_placement

        self._targets = uniform_placement(n, self.area, self.rng)
        self._speeds = self.rng.uniform(*self.speed_range, size=n)
        self._pause_left = np.zeros(n)

    def step(self, positions: np.ndarray, dt: float) -> np.ndarray:
        dt = _validate_dt(dt)
        pts = np.array(positions, dtype=float, copy=True)
        n = pts.shape[0]
        if self._targets is None or self._targets.shape[0] != n:
            self._init_state(n)
        assert self._targets is not None and self._speeds is not None
        assert self._pause_left is not None
        remaining = np.full(n, float(dt))
        # Nodes may complete several (pause -> travel) legs within one dt,
        # so iterate until every node has exhausted its budget.
        for _ in range(64):
            active = remaining > 1e-12
            if not active.any():
                break
            pausing = active & (self._pause_left > 0.0)
            if pausing.any():
                used = np.minimum(self._pause_left[pausing], remaining[pausing])
                self._pause_left[pausing] -= used
                remaining[pausing] -= used
            moving = active & ~pausing
            if moving.any():
                vec = self._targets[moving] - pts[moving]
                dist = np.hypot(vec[:, 0], vec[:, 1])
                step_len = self._speeds[moving] * remaining[moving]
                arrive = step_len >= dist - 1e-12
                scale = np.where(
                    arrive, 1.0, np.divide(step_len, np.maximum(dist, 1e-12))
                )
                pts[moving] += vec * scale[:, None]
                time_used = np.where(
                    arrive,
                    np.divide(dist, np.maximum(self._speeds[moving], 1e-12)),
                    remaining[moving],
                )
                idx = np.flatnonzero(moving)
                remaining[idx] -= time_used
                arrived_idx = idx[arrive]
                if arrived_idx.size:
                    self._pause_left[arrived_idx] = self.pause_time
                    new_targets = self.rng.random((arrived_idx.size, 2))
                    new_targets[:, 0] *= self.area.width
                    new_targets[:, 1] *= self.area.height
                    self._targets[arrived_idx] = new_targets
                    self._speeds[arrived_idx] = self.rng.uniform(
                        *self.speed_range, size=arrived_idx.size
                    )
        return pts
