"""Shared, invalidation-aware topology index (the library's query plane).

The paper's protocols — lowest-ID clustering, 2.5/3-hop coverage sets,
greedy gateway selection, SI/SD-CDS broadcasting — all consume the same
family of neighbourhood queries.  This package serves them once:

* :class:`~repro.topology.view.TopologyView` memoizes neighbour frozensets,
  ``N²(u)``, bounded BFS frontiers (depth ≤ 3), and common-neighbour
  intersections over a shared graph, with generation-counter invalidation
  that dirties only the ≤3-hop ball around a mutated edge;
* :class:`~repro.topology.coverage_index.CoverageIndex` caches per-head
  :class:`~repro.coverage.entries.CoverageSet`\\ s and gateway selections
  keyed on the view's per-node epochs, so maintenance under mobility only
  rebuilds the heads whose neighbourhood actually changed;
* :func:`~repro.topology.view.as_view` adapts a plain
  :class:`~repro.graph.adjacency.Graph` so every pre-existing public
  signature keeps working.
"""

from repro.topology.coverage_index import CoverageIndex
from repro.topology.view import (
    INVALIDATION_RADIUS,
    TopologyLike,
    TopologyView,
    as_view,
)

__all__ = [
    "TopologyView",
    "TopologyLike",
    "CoverageIndex",
    "as_view",
    "INVALIDATION_RADIUS",
]
