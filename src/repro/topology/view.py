"""A memoized, invalidation-aware view over a :class:`~repro.graph.adjacency.Graph`.

Every protocol layer in this library — clustering, coverage sets, gateway
selection, SI/SD-CDS broadcasting, maintenance — is defined over the same
small family of topology queries: ``N(u)``, ``N²(u)``, bounded-depth BFS
frontiers, and common-neighbour intersections.  Historically each layer
recomputed them from the raw adjacency sets; :class:`TopologyView` memoizes
them once and shares the answers.

The key design point is **locality of invalidation**.  All cached queries
are bounded by :data:`INVALIDATION_RADIUS` hops (3 — the deepest query any
of the paper's protocols needs).  If an edge ``{a, b}`` is inserted or
removed, a node ``x``'s ≤3-hop view can only change when ``x`` has a path of
length ≤ 3 through that edge; the prefix of such a path reaches ``a`` or
``b`` in ≤ 2 hops *without using the edge itself*, so it exists both before
and after the mutation.  Dirtying the 3-hop ball around ``{a, b}`` on the
post-mutation graph therefore covers every node whose cached answers could
have changed, and everything outside the ball stays valid.  A generation
counter records when each node was last dirtied so dependents (e.g.
:class:`~repro.topology.coverage_index.CoverageIndex`) can key their own
caches on it.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Union

from repro.errors import NodeNotFoundError
from repro.graph.adjacency import Graph
from repro.types import NodeId

#: Hop radius of the dirty ball around a mutated edge, and the deepest
#: bounded query the view will memoize.  3 covers every query the paper's
#: protocols issue (coverage sets look at most 3 hops out).
INVALIDATION_RADIUS = 3

#: Anything the refactored call sites accept where a topology is needed.
TopologyLike = Union[Graph, "TopologyView"]


class TopologyView:
    """Memoized neighbourhood queries over a graph, with local invalidation.

    The view holds a *reference* to ``graph`` (no copy).  Two usage modes:

    * **Owned mutation** — mutate the topology through :meth:`add_edge` /
      :meth:`remove_edge`; the view updates the graph and dirties exactly
      the ≤3-hop ball around the touched endpoints.
    * **External mutation** — if the owner mutates the graph directly, it
      must call :meth:`notify_edge` per toggled edge (or
      :meth:`invalidate_all` after arbitrary surgery) before issuing further
      queries.

    Args:
        graph: The topology to serve queries over (shared, not copied).
    """

    __slots__ = (
        "_graph", "_generation", "_node_epoch", "_node_epoch2",
        "_nbr", "_sorted_nbr", "_closed", "_two_open", "_two_closed",
        "_dist", "_common", "_pairs_of", "hits", "misses",
    )

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        self._generation = 0
        self._node_epoch: Dict[NodeId, int] = {}
        self._node_epoch2: Dict[NodeId, int] = {}
        self._nbr: Dict[NodeId, FrozenSet[NodeId]] = {}
        self._sorted_nbr: Dict[NodeId, Tuple[NodeId, ...]] = {}
        self._closed: Dict[NodeId, FrozenSet[NodeId]] = {}
        self._two_open: Dict[NodeId, FrozenSet[NodeId]] = {}
        self._two_closed: Dict[NodeId, FrozenSet[NodeId]] = {}
        self._dist: Dict[NodeId, Dict[int, Dict[NodeId, int]]] = {}
        self._common: Dict[Tuple[NodeId, NodeId], FrozenSet[NodeId]] = {}
        self._pairs_of: Dict[NodeId, Set[Tuple[NodeId, NodeId]]] = {}
        #: Cache hits / misses across all query kinds (benchmark telemetry).
        self.hits = 0
        self.misses = 0

    # -- identity ----------------------------------------------------------

    @property
    def graph(self) -> Graph:
        """The underlying graph (mutate only via this view, or notify it)."""
        return self._graph

    @property
    def generation(self) -> int:
        """Monotone counter, bumped once per invalidation event."""
        return self._generation

    def epoch(self, v: NodeId, *, radius: int = INVALIDATION_RADIUS) -> int:
        """Generation at which ``v``'s ≤``radius``-hop view was last dirtied.

        A dependent that recorded ``generation`` at compute time can check
        staleness of anything derived from ``v``'s neighbourhood with a
        single integer comparison (``epoch(v) <= recorded``).

        Args:
            v: The node whose epoch to read.
            radius: ``3`` (default) tracks anything derived from ``v``'s
                ≤3-hop view.  ``2`` is a tighter signal for artefacts that
                read only *edges incident to nodes within 2 hops* of ``v``
                — coverage sets are the canonical case: distance-3
                information is discovered through depth-2 expansions, so an
                edge mutation with both endpoints 3+ hops away can never
                change the result.  The same surviving-prefix argument as
                the module docstring's applies at radius 2: a ≤2-hop path
                from an affected ``v`` to a mutated endpoint has a prefix
                avoiding the mutated edge itself, so the post-mutation
                2-hop ball covers every affected node.
        """
        if radius == INVALIDATION_RADIUS:
            return self._node_epoch.get(v, 0)
        if radius == 2:
            return self._node_epoch2.get(v, 0)
        raise ValueError(f"epoch radius must be 2 or 3, got {radius}")

    # -- queries -----------------------------------------------------------

    def neighbours(self, v: NodeId) -> FrozenSet[NodeId]:
        """Memoized ``N(v)`` as a frozenset."""
        try:
            self.hits += 1
            return self._nbr[v]
        except KeyError:
            self.hits -= 1
            self.misses += 1
            out = frozenset(self._graph.neighbours_view(v))
            self._nbr[v] = out
            return out

    def sorted_neighbours(self, v: NodeId) -> Tuple[NodeId, ...]:
        """Memoized ``N(v)`` in ascending id order (deterministic loops)."""
        try:
            self.hits += 1
            return self._sorted_nbr[v]
        except KeyError:
            self.hits -= 1
            self.misses += 1
            out = tuple(sorted(self._graph.neighbours_view(v)))
            self._sorted_nbr[v] = out
            return out

    def degree(self, v: NodeId) -> int:
        """Degree of ``v`` (via the memoized neighbour set)."""
        return len(self.neighbours(v))

    def closed_neighbourhood(self, v: NodeId) -> FrozenSet[NodeId]:
        """Memoized ``N(v) ∪ {v}`` (the paper's ``N^1(v)``)."""
        try:
            self.hits += 1
            return self._closed[v]
        except KeyError:
            self.hits -= 1
            self.misses += 1
            out = self.neighbours(v) | {v}
            self._closed[v] = out
            return out

    def two_hop(self, v: NodeId, *, closed: bool = True) -> FrozenSet[NodeId]:
        """Memoized 2-hop neighbourhood of ``v``.

        Args:
            v: The centre node.
            closed: ``True`` returns the paper's ``N²(v)`` — every node
                within two hops *including* ``v``; ``False`` returns only
                the nodes at distance exactly 2.
        """
        cache = self._two_closed if closed else self._two_open
        try:
            self.hits += 1
            return cache[v]
        except KeyError:
            self.hits -= 1
            self.misses += 1
            dist = self.distances_within(v, 2)
            if closed:
                out = frozenset(dist)
            else:
                out = frozenset(x for x, d in dist.items() if d == 2)
            cache[v] = out
            return out

    def distances_within(self, v: NodeId, depth: int) -> Dict[NodeId, int]:
        """Memoized bounded BFS: hop distances from ``v`` up to ``depth``.

        The returned dict is the cache entry itself — **do not mutate**
        (same contract as :meth:`Graph.neighbours_view`).

        Args:
            v: Source node.
            depth: BFS bound; must be ``0 <= depth <= INVALIDATION_RADIUS``
                (deeper answers could not be kept consistent by the local
                invalidation rule).
        """
        if not 0 <= depth <= INVALIDATION_RADIUS:
            raise ValueError(
                f"depth must be in [0, {INVALIDATION_RADIUS}], got {depth}"
            )
        per_node = self._dist.get(v)
        if per_node is not None and depth in per_node:
            self.hits += 1
            return per_node[depth]
        self.misses += 1
        if v not in self._graph:
            raise NodeNotFoundError(v)
        dist: Dict[NodeId, int] = {v: 0}
        queue: deque[NodeId] = deque([v])
        while queue:
            x = queue.popleft()
            d = dist[x]
            if d >= depth:
                continue
            for w in self._graph.neighbours_view(x):
                if w not in dist:
                    dist[w] = d + 1
                    queue.append(w)
        self._dist.setdefault(v, {})[depth] = dist
        return dist

    def frontiers(self, v: NodeId, depth: int) -> Tuple[FrozenSet[NodeId], ...]:
        """BFS rings around ``v``: element ``k`` holds nodes at distance ``k``.

        ``frontiers(v, 3)[2]`` is the strict 2-hop frontier, etc.  Derived
        from :meth:`distances_within`, so it shares that cache.
        """
        dist = self.distances_within(v, depth)
        rings: List[Set[NodeId]] = [set() for _ in range(depth + 1)]
        for x, d in dist.items():
            rings[d].add(x)
        return tuple(frozenset(r) for r in rings)

    def ball(self, seeds: Iterable[NodeId],
             radius: int = INVALIDATION_RADIUS) -> FrozenSet[NodeId]:
        """All nodes within ``radius`` hops of any seed (plus the seeds).

        Seeds no longer present in the graph contribute only themselves —
        callers may pass endpoints of a just-removed edge safely.
        """
        out: Set[NodeId] = set()
        for s in seeds:
            out.add(s)
            if s in self._graph:
                out |= set(self.distances_within(s, radius))
        return frozenset(out)

    def common_neighbours(self, u: NodeId, v: NodeId) -> FrozenSet[NodeId]:
        """Memoized ``N(u) ∩ N(v)`` (witness discovery's hot operation)."""
        key = (u, v) if u < v else (v, u)
        try:
            self.hits += 1
            return self._common[key]
        except KeyError:
            self.hits -= 1
            self.misses += 1
            out = self.neighbours(u) & self.neighbours(v)
            self._common[key] = out
            self._pairs_of.setdefault(u, set()).add(key)
            self._pairs_of.setdefault(v, set()).add(key)
            return out

    def filtered_distances(
        self, v: NodeId, keep: Iterable[NodeId], depth: int = INVALIDATION_RADIUS,
    ) -> Dict[NodeId, int]:
        """Distances from ``v`` restricted to nodes in ``keep``.

        The clusterhead-filtered distance map used by coverage construction:
        ``filtered_distances(u, structure.clusterheads)`` lists every
        clusterhead within ``depth`` hops of ``u`` with its distance.
        """
        keep_set = keep if isinstance(keep, (set, frozenset)) else set(keep)
        return {
            x: d for x, d in self.distances_within(v, depth).items()
            if x in keep_set
        }

    # -- mutation & invalidation -------------------------------------------

    def add_edge(self, u: NodeId, v: NodeId) -> FrozenSet[NodeId]:
        """Insert edge ``{u, v}`` and dirty its 3-hop ball.

        Returns:
            The dirtied node set (useful for cascading invalidation).
        """
        self._graph.add_edge(u, v)
        return self._dirty((u, v))

    def remove_edge(self, u: NodeId, v: NodeId) -> FrozenSet[NodeId]:
        """Remove edge ``{u, v}`` and dirty its 3-hop ball.

        Returns:
            The dirtied node set.
        """
        self._graph.remove_edge(u, v)
        return self._dirty((u, v))

    def notify_edge(self, u: NodeId, v: NodeId) -> FrozenSet[NodeId]:
        """Record that edge ``{u, v}`` was toggled directly on the graph.

        Call *after* the external mutation; the dirty ball is computed on
        the post-mutation topology, which the module docstring shows is
        sufficient for all ≤3-hop queries.

        Returns:
            The dirtied node set.
        """
        return self._dirty((u, v))

    def invalidate_nodes(self, nodes: Iterable[NodeId]) -> FrozenSet[NodeId]:
        """Dirty the 3-hop balls around ``nodes`` (e.g. after node surgery).

        Returns:
            The dirtied node set.
        """
        return self._dirty(tuple(nodes))

    def invalidate_all(self) -> None:
        """Drop every cached answer (the safe hammer for arbitrary surgery)."""
        self._generation += 1
        gen = self._generation
        for x in set(self._node_epoch) | set(self._graph):
            self._node_epoch[x] = gen
            self._node_epoch2[x] = gen
        self._nbr.clear()
        self._sorted_nbr.clear()
        self._closed.clear()
        self._two_open.clear()
        self._two_closed.clear()
        self._dist.clear()
        self._common.clear()
        self._pairs_of.clear()

    def _dirty(self, seeds: Iterable[NodeId]) -> FrozenSet[NodeId]:
        """Evict every cache entry inside the ball around ``seeds``."""
        self._generation += 1
        gen = self._generation
        # Fresh BFS on the *current* adjacency — deliberately not through the
        # (possibly stale) distance cache.
        ball: Set[NodeId] = set()
        ball2: Set[NodeId] = set()  # the ≤2-hop sub-ball (see :meth:`epoch`)
        graph = self._graph
        for s in seeds:
            ball.add(s)
            ball2.add(s)
            if s not in graph:
                continue
            dist: Dict[NodeId, int] = {s: 0}
            queue: deque[NodeId] = deque([s])
            while queue:
                x = queue.popleft()
                d = dist[x]
                if d >= INVALIDATION_RADIUS:
                    continue
                for w in graph.neighbours_view(x):
                    if w not in dist:
                        dist[w] = d + 1
                        queue.append(w)
            ball |= dist.keys()
            ball2.update(x for x, d in dist.items() if d <= 2)
        for x in ball2:
            self._node_epoch2[x] = gen
        for x in ball:
            self._node_epoch[x] = gen
            self._nbr.pop(x, None)
            self._sorted_nbr.pop(x, None)
            self._closed.pop(x, None)
            self._two_open.pop(x, None)
            self._two_closed.pop(x, None)
            self._dist.pop(x, None)
            for key in self._pairs_of.pop(x, ()):
                self._common.pop(key, None)
                other = key[0] if key[1] == x else key[1]
                pairs = self._pairs_of.get(other)
                if pairs is not None:
                    pairs.discard(key)
        return frozenset(ball)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TopologyView(n={self._graph.num_nodes}, "
            f"gen={self._generation}, hits={self.hits}, misses={self.misses})"
        )


def as_view(topology: TopologyLike) -> TopologyView:
    """Adapt ``topology`` to a :class:`TopologyView`.

    A :class:`TopologyView` is returned unchanged; a plain
    :class:`~repro.graph.adjacency.Graph` is wrapped in a fresh view.  This
    is the adapter that keeps every plain-``Graph`` public signature working
    after the refactor — wrapping is O(1) and queries are computed lazily,
    so one-shot callers pay nothing for the cache they do not reuse.
    """
    if isinstance(topology, TopologyView):
        return topology
    if isinstance(topology, Graph):
        return TopologyView(topology)
    raise TypeError(
        f"expected Graph or TopologyView, got {type(topology).__name__}"
    )
