"""Generation-keyed cache of per-clusterhead coverage sets and selections.

A clusterhead ``u``'s coverage set (and the gateway selection derived from
it) depends on two inputs only:

* the topology read by coverage construction — only *edges incident to
  nodes within 2 hops* of ``u`` (distance-3 content is discovered through
  depth-2 expansions), covered by the owning
  :class:`~repro.topology.view.TopologyView`'s radius-2 per-node epoch: any
  edge event that can change those reads dirties a 2-hop ball containing
  ``u`` itself, so ``view.epoch(u, radius=2)`` moves;
* the roles / head assignments of nodes within 3 hops of ``u`` — the view
  knows nothing about clustering, so the owner reports those via
  :meth:`CoverageIndex.invalidate_roles` (pass the nodes whose role or
  ``head_of`` changed, e.g. ``flipped | reassigned`` from a
  :class:`~repro.maintenance.incremental.RepairSummary`); the index dirties
  every head within 3 hops of a changed node.

With both signals wired up, :meth:`coverage` / :meth:`selection` are
guaranteed to equal a fresh recomputation (property-tested in
``tests/test_topology_coverage_index.py``) while mobility workloads stop
rebuilding the heads outside the churn region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Optional

from repro.topology.view import TopologyView
from repro.types import CoveragePolicy, NodeId

if TYPE_CHECKING:  # imported lazily at runtime to avoid layer cycles
    from repro.backbone.gateway_selection import GatewaySelection
    from repro.cluster.state import ClusterStructure
    from repro.coverage.entries import CoverageSet


@dataclass
class _Entry:
    """One head's cached artefacts plus the epochs they were computed at."""

    coverage: "CoverageSet"
    view_generation: int
    role_clock: int
    selection: Optional["GatewaySelection"] = field(default=None)


class CoverageIndex:
    """Cache coverage sets / gateway selections keyed on view generations.

    Args:
        view: The topology view the cached artefacts are derived from.  The
            :class:`~repro.cluster.state.ClusterStructure` passed to the
            query methods must describe this same topology (an equal-content
            graph is fine — e.g. a snapshot copy).
        policy: Coverage definition served by this index.
    """

    def __init__(
        self,
        view: TopologyView,
        policy: CoveragePolicy = CoveragePolicy.TWO_FIVE_HOP,
    ) -> None:
        self._view = view
        self._policy = policy
        self._entries: Dict[NodeId, _Entry] = {}
        self._role_epoch: Dict[NodeId, int] = {}
        self._role_clock = 0
        #: Cache hits / misses (benchmark telemetry).
        self.hits = 0
        self.misses = 0

    @property
    def view(self) -> TopologyView:
        """The owning topology view."""
        return self._view

    @property
    def policy(self) -> CoveragePolicy:
        """The coverage definition this index serves."""
        return self._policy

    # -- invalidation ------------------------------------------------------

    def invalidate_roles(self, changed: Iterable[NodeId]) -> None:
        """Report nodes whose role or head assignment changed.

        Every head within :data:`~repro.topology.view.INVALIDATION_RADIUS`
        hops of a changed node has its cached artefacts dirtied (coverage
        sets read roles and ``head_of`` of nodes up to 3 hops out, and a
        head lies within 3 hops of every node it reads).
        """
        changed = tuple(changed)
        if not changed:
            return
        self._role_clock += 1
        clock = self._role_clock
        for x in self._view.ball(changed):
            self._role_epoch[x] = clock

    def invalidate_all(self) -> None:
        """Drop every cached coverage set and selection."""
        self._entries.clear()
        self._role_epoch.clear()

    def _fresh(self, head: NodeId) -> Optional[_Entry]:
        entry = self._entries.get(head)
        if entry is None:
            return None
        # Radius-2 topology signal: coverage construction reads only edges
        # incident to nodes within 2 hops of the head (distance-3 content is
        # reached through depth-2 expansions), so edge events 3+ hops away
        # cannot stale the entry.  Role reads do extend 3 hops out; those
        # arrive through the radius-3 role clock below.
        if entry.view_generation < self._view.epoch(head, radius=2):
            return None
        if entry.role_clock < self._role_epoch.get(head, 0):
            return None
        return entry

    # -- queries -----------------------------------------------------------

    def coverage(self, structure: "ClusterStructure",
                 head: NodeId) -> "CoverageSet":
        """The (cached) coverage set of ``head`` under the index policy."""
        entry = self._fresh(head)
        if entry is not None:
            self.hits += 1
            return entry.coverage
        self.misses += 1
        # Local import: repro.coverage sits above repro.topology in the
        # layer order (its modules import the view), so importing it at
        # module scope would be cyclic.
        from repro.coverage.policy import compute_coverage_set

        cov = compute_coverage_set(
            structure, head, self._policy, view=self._view
        )
        self._entries[head] = _Entry(
            coverage=cov,
            view_generation=self._view.generation,
            role_clock=self._role_clock,
        )
        return cov

    def selection(self, structure: "ClusterStructure",
                  head: NodeId) -> "GatewaySelection":
        """The (cached) full-coverage gateway selection of ``head``.

        The selection is a pure function of the coverage set, so it shares
        the coverage entry's validity.
        """
        entry = self._fresh(head)
        if entry is not None and entry.selection is not None:
            self.hits += 1
            return entry.selection
        cov = self.coverage(structure, head)
        entry = self._entries[head]
        if entry.selection is None:
            from repro.backbone.gateway_selection import select_gateways

            entry.selection = select_gateways(cov)
        return entry.selection

    def all_coverage_sets(
        self, structure: "ClusterStructure"
    ) -> Dict[NodeId, "CoverageSet"]:
        """Coverage sets for every clusterhead of ``structure``."""
        return {
            h: self.coverage(structure, h) for h in structure.sorted_heads()
        }

    def all_selections(
        self, structure: "ClusterStructure"
    ) -> Dict[NodeId, "GatewaySelection"]:
        """Gateway selections for every clusterhead of ``structure``."""
        return {
            h: self.selection(structure, h) for h in structure.sorted_heads()
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CoverageIndex(policy={self._policy.label}, "
            f"cached={len(self._entries)}, hits={self.hits}, "
            f"misses={self.misses})"
        )
