"""Incremental lowest-ID clustering maintenance (extension).

A live MANET does not re-cluster from scratch on every link event.  The
lowest-ID fixpoint — ``is_head(v) ⇔ no neighbour u < v is a head`` — depends
only on *smaller-id* neighbours, so a single link change can be repaired by
re-evaluating affected nodes in ascending id order: a flip at ``v`` can only
influence neighbours with larger ids, which a min-heap worklist processes
after every smaller pending node has settled.

:class:`IncrementalLowestIdClustering` maintains the clustering under edge
insertions/removals, reports per-event repair statistics (how *local* the
repair was), and is property-tested to agree with a from-scratch
recomputation after every event.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set

from repro.cluster.state import ClusterStructure
from repro.errors import NodeNotFoundError
from repro.graph.adjacency import Graph
from repro.topology.view import TopologyView
from repro.types import NodeId


@dataclass(frozen=True, slots=True)
class RepairSummary:
    """What one link event's repair touched.

    Attributes:
        reevaluated: Nodes whose head-decision rule was re-run.
        flipped: Nodes whose clusterhead status changed.
        reassigned: Members whose clusterhead changed (role unchanged).
    """

    reevaluated: FrozenSet[NodeId]
    flipped: FrozenSet[NodeId]
    reassigned: FrozenSet[NodeId]

    @property
    def touched(self) -> int:
        """Total distinct nodes involved in the repair."""
        return len(self.reevaluated | self.flipped | self.reassigned)

    @property
    def role_changes(self) -> FrozenSet[NodeId]:
        """Nodes whose role or head assignment changed.

        Exactly what a
        :class:`~repro.topology.coverage_index.CoverageIndex` must be told
        via ``invalidate_roles`` after this repair.
        """
        return self.flipped | self.reassigned


class IncrementalLowestIdClustering:
    """Maintain a lowest-ID clustering across single-link events.

    The instance owns a private copy of the graph; mutate it only through
    :meth:`add_edge` / :meth:`remove_edge`.

    Args:
        graph: Initial topology (copied).
    """

    def __init__(self, graph: Graph) -> None:
        self._view = TopologyView(graph.copy())
        self._graph = self._view.graph
        self._is_head: Dict[NodeId, bool] = {}
        self._head_of: Dict[NodeId, NodeId] = {}
        for v in self._graph.nodes():  # ascending: the sequential rule
            self._evaluate_head(v)
        for v in self._graph.nodes():  # assignment needs all head flags
            self._assign(v)

    # -- state access ----------------------------------------------------------

    @property
    def graph(self) -> Graph:
        """The maintained topology (do not mutate directly)."""
        return self._graph

    @property
    def view(self) -> TopologyView:
        """The shared topology view over the maintained graph.

        Edge events applied through :meth:`add_edge` / :meth:`remove_edge`
        dirty only the ≤3-hop ball around the touched endpoints, so
        downstream consumers (coverage indices, backbone refreshes) reuse
        every cached answer outside the ball.
        """
        return self._view

    def structure(self, *, graph: Optional[Graph] = None) -> ClusterStructure:
        """Snapshot the current clustering.

        Args:
            graph: Wrap this graph instead of copying the internal one.  It
                must be topology-equal to :attr:`graph`; callers that
                already hold an equal snapshot (e.g. a freshly rebuilt unit
                disk graph) avoid the copy.
        """
        return ClusterStructure(graph=graph if graph is not None
                                else self._graph.copy(),
                                head_of=dict(self._head_of))

    def is_clusterhead(self, v: NodeId) -> bool:
        """Whether ``v`` currently heads a cluster."""
        return self._is_head[v]

    # -- core rules --------------------------------------------------------------

    def _desired_head(self, v: NodeId) -> bool:
        return not any(
            u < v and self._is_head[u]
            for u in self._graph.neighbours_view(v)
        )

    def _evaluate_head(self, v: NodeId) -> None:
        self._is_head[v] = self._desired_head(v)

    def _assign(self, v: NodeId) -> None:
        if self._is_head[v]:
            self._head_of[v] = v
        else:
            heads = [
                u for u in self._graph.neighbours_view(v) if self._is_head[u]
            ]
            # The fixpoint guarantees a non-head has a head neighbour.
            self._head_of[v] = min(heads)

    # -- repair ---------------------------------------------------------------

    def _repair(self, seeds: Set[NodeId]) -> RepairSummary:
        reevaluated: Set[NodeId] = set()
        flipped: Set[NodeId] = set()
        dirty_assignment: Set[NodeId] = set(seeds)
        heap = sorted(seeds)
        heapq.heapify(heap)
        pending = set(heap)
        while heap:
            v = heapq.heappop(heap)
            pending.discard(v)
            reevaluated.add(v)
            desired = self._desired_head(v)
            if desired == self._is_head[v]:
                continue
            self._is_head[v] = desired
            flipped.add(v)
            dirty_assignment.add(v)
            for w in self._graph.neighbours_view(v):
                dirty_assignment.add(w)  # their min-head may change
                if w > v and w not in pending:
                    heapq.heappush(heap, w)
                    pending.add(w)
        reassigned: Set[NodeId] = set()
        for v in sorted(dirty_assignment):
            before = self._head_of[v]
            self._assign(v)
            if self._head_of[v] != before and v not in flipped:
                reassigned.add(v)
        return RepairSummary(
            reevaluated=frozenset(reevaluated),
            flipped=frozenset(flipped),
            reassigned=frozenset(reassigned),
        )

    def add_edge(self, u: NodeId, v: NodeId) -> RepairSummary:
        """Insert link ``{u, v}``, repair the clustering, dirty the view."""
        if u not in self._graph:
            raise NodeNotFoundError(u)
        if v not in self._graph:
            raise NodeNotFoundError(v)
        self._view.add_edge(u, v)
        return self._repair({u, v})

    def remove_edge(self, u: NodeId, v: NodeId) -> RepairSummary:
        """Remove link ``{u, v}``, repair the clustering, dirty the view."""
        self._view.remove_edge(u, v)
        return self._repair({u, v})
