"""Mobility sessions: drive a network through time and account maintenance.

A :class:`MobilitySession` owns a :class:`~repro.graph.network.Network` and a
:class:`~repro.geometry.mobility.MobilityModel`.  Each :meth:`step` moves the
nodes, rebuilds the unit disk graph, re-derives clustering and backbone, and
returns a :class:`MaintenanceReport` with the churn versus the previous tick
— the quantitative version of the paper's "maintaining a static backbone at
all times is costly" argument, which the mobility example and ablation bench
plot against node speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.backbone.static_backbone import Backbone, build_static_backbone
from repro.cluster.lowest_id import lowest_id_clustering
from repro.cluster.state import ClusterStructure
from repro.geometry.mobility import MobilityModel
from repro.graph.connectivity import is_connected
from repro.graph.csr import CSR_CUTOVER
from repro.graph.network import Network
from repro.maintenance.incremental import IncrementalLowestIdClustering
from repro.maintenance.stability import (
    BackboneChurn,
    ClusterChurn,
    backbone_churn,
    cluster_churn,
)
from repro.topology.coverage_index import CoverageIndex
from repro.types import CoveragePolicy


@dataclass(frozen=True)
class MaintenanceReport:
    """Outcome of one mobility tick.

    Attributes:
        time: Session time after the tick.
        network: The rebuilt network snapshot.
        structure: The re-derived clustering.
        backbone: The re-derived static backbone.
        connected: Whether the snapshot is connected (churn is reported
            regardless; broadcast experiments should skip disconnected
            snapshots like the paper discards disconnected samples).
        cluster_churn: Churn vs the previous snapshot (``None`` on the first
            tick).
        backbone_churn: Backbone churn vs the previous snapshot.
        link_changes: Number of edges that appeared plus disappeared.
    """

    time: float
    network: Network
    structure: ClusterStructure
    backbone: Backbone
    connected: bool
    cluster_churn: Optional[ClusterChurn]
    backbone_churn: Optional[BackboneChurn]
    link_changes: int


class MobilitySession:
    """Evolve a network under a mobility model, re-deriving the backbone.

    Args:
        network: Initial snapshot.
        mobility: The movement model (steps the position array).
        policy: Coverage policy for the maintained static backbone.
        incremental: Maintain clustering and coverage sets incrementally.
            Each tick's link changes are applied as single-edge repairs to
            an :class:`~repro.maintenance.incremental.IncrementalLowestIdClustering`
            whose shared :class:`~repro.topology.view.TopologyView` dirties
            only the ≤3-hop balls around the changed links; a
            :class:`~repro.topology.coverage_index.CoverageIndex` then
            recomputes only the dirty heads.  The per-tick structures and
            backbones are identical to the from-scratch path (property
            tested) — only the work done differs.
        kernel: Run the per-tick maintenance through the array-native
            :class:`~repro.maintenance.kernels.KernelMobilitySession`
            (incremental grid re-binning, CSR edge-delta repair, masked
            coverage/selection recompute), materialising the same
            per-tick networks, structures, backbones and churn reports.
            ``None`` (the default) auto-enables it above the CSR cutover
            for the 2.5-hop policy; when active it supersedes
            ``incremental`` and :attr:`coverage_index` stays ``None``.
    """

    def __init__(
        self,
        network: Network,
        mobility: MobilityModel,
        policy: CoveragePolicy = CoveragePolicy.TWO_FIVE_HOP,
        *,
        incremental: bool = False,
        kernel: Optional[bool] = None,
    ) -> None:
        self.network = network
        self.mobility = mobility
        self.policy = policy
        self.time = 0.0
        self._ids = network.graph.nodes()
        self.incremental = incremental
        #: The coverage/selection cache driving the incremental path
        #: (``None`` when ``incremental=False`` or the kernel is active).
        self.coverage_index: Optional[CoverageIndex] = None
        self._clustering: Optional[IncrementalLowestIdClustering] = None
        if kernel is None:
            kernel = (
                network.num_nodes >= CSR_CUTOVER
                and policy is CoveragePolicy.TWO_FIVE_HOP
            )
        self.kernel = bool(kernel)
        self._kernel_session = None
        if self.kernel:
            from repro.maintenance.kernels import KernelMobilitySession

            self._kernel_session = KernelMobilitySession(
                network.position_array(self._ids),
                network.radius,
                mobility,
                ids=np.asarray(self._ids, dtype=np.int64),
                area=network.area,
                torus=network.torus,
                policy=policy,
                connectivity=True,
            )
            self.structure = self._kernel_session.structure(network=network)
            self.backbone = self._kernel_session.backbone(self.structure)
        elif incremental:
            self._clustering = IncrementalLowestIdClustering(network.graph)
            self.coverage_index = CoverageIndex(self._clustering.view, policy)
            self.structure = self._clustering.structure(graph=network.graph)
            self.backbone = build_static_backbone(
                self.structure, policy, index=self.coverage_index
            )
        else:
            self.structure = lowest_id_clustering(network.graph)
            self.backbone = build_static_backbone(self.structure, policy)
        self.history: List[MaintenanceReport] = []

    def _rederive(self) -> None:
        """Recompute structure and backbone for the current network."""
        if self._clustering is None:
            self.structure = lowest_id_clustering(self.network.graph)
            self.backbone = build_static_backbone(self.structure, self.policy)
            return
        assert self.coverage_index is not None
        old_edges = set(self._clustering.graph.edges())
        new_edges = set(self.network.graph.edges())
        role_changed: set = set()
        for u, v in old_edges - new_edges:
            role_changed |= self._clustering.remove_edge(u, v).role_changes
        for u, v in new_edges - old_edges:
            role_changed |= self._clustering.add_edge(u, v).role_changes
        # Deferring role invalidation to after the whole batch is safe: a
        # head whose ball shrank away from a changed node in the meantime
        # was dirtied by the shrinking edge event itself.
        self.coverage_index.invalidate_roles(role_changed)
        self.structure = self._clustering.structure(graph=self.network.graph)
        self.backbone = build_static_backbone(
            self.structure, self.policy, index=self.coverage_index
        )

    def step(self, dt: float = 1.0) -> MaintenanceReport:
        """Advance the session by ``dt`` and rebuild all structures.

        Returns:
            The tick's :class:`MaintenanceReport` (also appended to
            :attr:`history`).
        """
        if self._kernel_session is not None:
            return self._step_kernel(dt)
        old_network = self.network
        old_structure = self.structure
        old_backbone = self.backbone
        positions = old_network.position_array(self._ids)
        moved = self.mobility.step(positions, dt)
        self.network = old_network.moved(moved, order=self._ids)
        self.time += dt
        self._rederive()
        old_edges = set(old_network.graph.edges())
        new_edges = set(self.network.graph.edges())
        report = MaintenanceReport(
            time=self.time,
            network=self.network,
            structure=self.structure,
            backbone=self.backbone,
            connected=is_connected(self.network.graph),
            cluster_churn=cluster_churn(old_structure, self.structure),
            backbone_churn=backbone_churn(old_backbone, self.backbone),
            link_changes=len(old_edges ^ new_edges),
        )
        self.history.append(report)
        return report

    def _step_kernel(self, dt: float) -> MaintenanceReport:
        """Advance one tick through the array-native kernel session."""
        kernel = self._kernel_session
        assert kernel is not None
        tick = kernel.step(dt)
        self.time += dt
        self.network = kernel.network()
        self.structure = kernel.structure(network=self.network)
        self.backbone = kernel.backbone(self.structure)
        churn = kernel.churn_ids()
        n = self.network.num_nodes
        connected = tick.connected
        if connected is None:
            connected = is_connected(self.network.graph)
        report = MaintenanceReport(
            time=self.time,
            network=self.network,
            structure=self.structure,
            backbone=self.backbone,
            connected=connected,
            cluster_churn=ClusterChurn(
                heads_gained=churn["heads_gained"],
                heads_lost=churn["heads_lost"],
                reassigned_members=churn["reassigned"],
                total_nodes=n,
            ),
            backbone_churn=BackboneChurn(
                gateways_gained=churn["gateways_gained"],
                gateways_lost=churn["gateways_lost"],
                heads_with_new_selection=churn["resignalling"],
                total_nodes=n,
            ),
            link_changes=tick.link_changes,
        )
        self.history.append(report)
        return report

    def run(self, ticks: int, dt: float = 1.0) -> List[MaintenanceReport]:
        """Run ``ticks`` steps and return their reports."""
        return [self.step(dt) for _ in range(ticks)]
