"""Mobility sessions: drive a network through time and account maintenance.

A :class:`MobilitySession` owns a :class:`~repro.graph.network.Network` and a
:class:`~repro.geometry.mobility.MobilityModel`.  Each :meth:`step` moves the
nodes, rebuilds the unit disk graph, re-derives clustering and backbone, and
returns a :class:`MaintenanceReport` with the churn versus the previous tick
— the quantitative version of the paper's "maintaining a static backbone at
all times is costly" argument, which the mobility example and ablation bench
plot against node speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.backbone.static_backbone import Backbone, build_static_backbone
from repro.cluster.lowest_id import lowest_id_clustering
from repro.cluster.state import ClusterStructure
from repro.geometry.mobility import MobilityModel
from repro.graph.connectivity import is_connected
from repro.graph.network import Network
from repro.maintenance.stability import (
    BackboneChurn,
    ClusterChurn,
    backbone_churn,
    cluster_churn,
)
from repro.types import CoveragePolicy


@dataclass(frozen=True)
class MaintenanceReport:
    """Outcome of one mobility tick.

    Attributes:
        time: Session time after the tick.
        network: The rebuilt network snapshot.
        structure: The re-derived clustering.
        backbone: The re-derived static backbone.
        connected: Whether the snapshot is connected (churn is reported
            regardless; broadcast experiments should skip disconnected
            snapshots like the paper discards disconnected samples).
        cluster_churn: Churn vs the previous snapshot (``None`` on the first
            tick).
        backbone_churn: Backbone churn vs the previous snapshot.
        link_changes: Number of edges that appeared plus disappeared.
    """

    time: float
    network: Network
    structure: ClusterStructure
    backbone: Backbone
    connected: bool
    cluster_churn: Optional[ClusterChurn]
    backbone_churn: Optional[BackboneChurn]
    link_changes: int


class MobilitySession:
    """Evolve a network under a mobility model, re-deriving the backbone.

    Args:
        network: Initial snapshot.
        mobility: The movement model (steps the position array).
        policy: Coverage policy for the maintained static backbone.
    """

    def __init__(
        self,
        network: Network,
        mobility: MobilityModel,
        policy: CoveragePolicy = CoveragePolicy.TWO_FIVE_HOP,
    ) -> None:
        self.network = network
        self.mobility = mobility
        self.policy = policy
        self.time = 0.0
        self._ids = network.graph.nodes()
        self.structure = lowest_id_clustering(network.graph)
        self.backbone = build_static_backbone(self.structure, policy)
        self.history: List[MaintenanceReport] = []

    def step(self, dt: float = 1.0) -> MaintenanceReport:
        """Advance the session by ``dt`` and rebuild all structures.

        Returns:
            The tick's :class:`MaintenanceReport` (also appended to
            :attr:`history`).
        """
        old_network = self.network
        old_structure = self.structure
        old_backbone = self.backbone
        positions = old_network.position_array(self._ids)
        moved = self.mobility.step(positions, dt)
        self.network = old_network.moved(moved, order=self._ids)
        self.time += dt
        self.structure = lowest_id_clustering(self.network.graph)
        self.backbone = build_static_backbone(self.structure, self.policy)
        old_edges = set(old_network.graph.edges())
        new_edges = set(self.network.graph.edges())
        report = MaintenanceReport(
            time=self.time,
            network=self.network,
            structure=self.structure,
            backbone=self.backbone,
            connected=is_connected(self.network.graph),
            cluster_churn=cluster_churn(old_structure, self.structure),
            backbone_churn=backbone_churn(old_backbone, self.backbone),
            link_changes=len(old_edges ^ new_edges),
        )
        self.history.append(report)
        return report

    def run(self, ticks: int, dt: float = 1.0) -> List[MaintenanceReport]:
        """Run ``ticks`` steps and return their reports."""
        return [self.step(dt) for _ in range(ticks)]
