"""Churn metrics between consecutive cluster structures / backbones."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from repro.backbone.static_backbone import Backbone
from repro.cluster.state import ClusterStructure
from repro.errors import ConfigurationError
from repro.types import NodeId


@dataclass(frozen=True, slots=True)
class ClusterChurn:
    """How much the cluster structure changed between two snapshots.

    Attributes:
        heads_gained: Nodes that became clusterheads.
        heads_lost: Nodes that stopped being clusterheads.
        reassigned_members: Non-heads (in both snapshots) whose head changed.
        total_nodes: Network size (denominator for rates).
    """

    heads_gained: FrozenSet[NodeId]
    heads_lost: FrozenSet[NodeId]
    reassigned_members: FrozenSet[NodeId]
    total_nodes: int

    @property
    def role_change_count(self) -> int:
        """Nodes whose role flipped."""
        return len(self.heads_gained) + len(self.heads_lost)

    @property
    def churn_rate(self) -> float:
        """Fraction of nodes with a role flip or head reassignment."""
        if self.total_nodes == 0:
            return 0.0
        affected = (
            len(self.heads_gained)
            + len(self.heads_lost)
            + len(self.reassigned_members)
        )
        return affected / self.total_nodes


def cluster_churn(before: ClusterStructure, after: ClusterStructure) -> ClusterChurn:
    """Churn between two clusterings of the same node set."""
    if set(before.head_of) != set(after.head_of):
        raise ConfigurationError("snapshots must cover the same node set")
    heads_before = before.clusterheads
    heads_after = after.clusterheads
    reassigned = frozenset(
        v
        for v in before.head_of
        if v not in heads_before
        and v not in heads_after
        and before.head_of[v] != after.head_of[v]
    )
    return ClusterChurn(
        heads_gained=frozenset(heads_after - heads_before),
        heads_lost=frozenset(heads_before - heads_after),
        reassigned_members=reassigned,
        total_nodes=len(before.head_of),
    )


@dataclass(frozen=True, slots=True)
class BackboneChurn:
    """How much the static backbone changed between two snapshots.

    Attributes:
        gateways_gained: Newly designated gateways.
        gateways_lost: Nodes no longer gateways.
        heads_with_new_selection: Clusterheads (present in both snapshots)
            whose coverage set or gateway selection changed — each would
            re-run the CH_HOP gathering and re-issue a GATEWAY message in a
            live network, so this is the maintenance-signalling proxy.
        total_nodes: Network size.
    """

    gateways_gained: FrozenSet[NodeId]
    gateways_lost: FrozenSet[NodeId]
    heads_with_new_selection: FrozenSet[NodeId]
    total_nodes: int

    @property
    def gateway_turnover(self) -> int:
        """Total gateway set symmetric difference."""
        return len(self.gateways_gained) + len(self.gateways_lost)

    @property
    def resignalling_rate(self) -> float:
        """Fraction of surviving heads that must re-signal."""
        if self.total_nodes == 0:
            return 0.0
        return len(self.heads_with_new_selection) / self.total_nodes


def backbone_churn(before: Backbone, after: Backbone) -> BackboneChurn:
    """Churn between two static backbones of the same node set."""
    if set(before.structure.head_of) != set(after.structure.head_of):
        raise ConfigurationError("snapshots must cover the same node set")
    surviving_heads = before.structure.clusterheads & after.structure.clusterheads
    changed = set()
    for head in surviving_heads:
        cov_before = before.coverage_sets[head]
        cov_after = after.coverage_sets[head]
        sel_before = before.selections[head]
        sel_after = after.selections[head]
        if (
            cov_before.all_targets != cov_after.all_targets
            or sel_before.gateways != sel_after.gateways
        ):
            changed.add(head)
    return BackboneChurn(
        gateways_gained=frozenset(after.gateways - before.gateways),
        gateways_lost=frozenset(before.gateways - after.gateways),
        heads_with_new_selection=frozenset(changed),
        total_nodes=len(before.structure.head_of),
    )
