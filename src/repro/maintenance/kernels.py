"""Array-native mobility maintenance: the per-tick kernel session.

The object-layer :class:`~repro.maintenance.session.MobilitySession`
re-derives the backbone each tick through dict/set repairs — per-event
heap worklists and a per-head coverage cache.  That is fine at paper
scale and unusable at n >= 10k.  This module runs the same per-tick
pipeline entirely on arrays:

1. **step** — the mobility model advances all ``(n, 2)`` positions at
   once; an :class:`~repro.geometry.grid.IncrementalGrid` re-bins only
   the cell-crossing nodes and repairs its cell-sorted order in place.
2. **delta** — the 5-stencil pair sweep runs restricted to the dirty
   cells, the result is diffed (sorted int64 key sets) against the edges
   previously incident to moved nodes, and the appeared/vanished edges
   are merged into the :class:`~repro.graph.csr.CSRGraph` via
   :func:`~repro.graph.csr.apply_edge_delta` — no full rebuild.
3. **repair** — :func:`~repro.cluster.lowest_id.repair_lowest_id_rows`
   re-evaluates the lowest-ID fixpoint over the affected ball only;
   coverage and gateway selection are then recomputed for exactly the
   heads within two hops of any changed edge or role
   (:func:`~repro.coverage.two_five_hop.two_five_hop_arrays_masked` +
   :func:`~repro.backbone.gateway_selection.select_gateways_masked`) and
   spliced into the retained witness/connector tables.

Every tick's clustering, coverage sets and selections are bit-identical
to the object-layer session (property-tested in
``tests/test_mobility_kernels.py``); only the work done is local.  The
torus geometry keeps the exact semantics through a dense distance diff
(the same fallback the static builder uses), so the kernels stay valid
for bordered *and* wrapped areas.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import perf
from repro.backbone.gateway_selection import (
    BatchGatewaySelection,
    select_gateways_batch,
    select_gateways_masked,
)
from repro.backbone.static_backbone import Backbone
from repro.cluster.lowest_id import lowest_id_rows, repair_lowest_id_rows
from repro.cluster.state import ClusterStructure
from repro.coverage.arrays import CoverageArrays
from repro.coverage.two_five_hop import (
    two_five_hop_arrays,
    two_five_hop_arrays_masked,
)
from repro.errors import ConfigurationError, GeometryError
from repro.geometry.area import Area
from repro.geometry.grid import IncrementalGrid, grouped_ranges
from repro.geometry.mobility import MobilityModel
from repro.graph.csr import (
    CSRGraph,
    apply_edge_delta,
    csr_from_positions,
    mask_unique_rows,
    searchsorted_membership,
    sorted_unique,
)
from repro.graph.network import Network
from repro.maintenance.incremental import RepairSummary
from repro.types import CoveragePolicy, NodeId


@dataclass(frozen=True, slots=True)
class KernelTickReport:
    """Churn and repair-locality counters for one kernel-session tick.

    All node references are CSR rows of the session's graph; the
    materialising accessors of :class:`KernelMobilitySession` translate to
    node ids when the object layer needs them.

    Attributes:
        time: Session time after the tick.
        link_changes: Undirected edges that appeared plus disappeared.
        reevaluated: Rows whose clustering rule was re-run (the affected
            ball — the kernel's locality measure).
        flipped: Rows whose head status changed.
        heads_gained / heads_lost: The flip split by direction.
        reassigned: Rows (non-head before and after) whose head changed.
        dirty_heads: Heads whose coverage/selection was recomputed.
        gateways_gained / gateways_lost: Gateway-set turnover.
        resignalling: Surviving heads whose coverage set or gateway
            selection changed (the CH_HOP/GATEWAY re-signalling proxy).
        step_seconds / delta_seconds / repair_seconds: Wall clock of the
            three kernel stages for this tick.
        connected: Whether the snapshot is connected (``None`` when the
            session runs with ``connectivity=False``).
    """

    time: float
    link_changes: int
    reevaluated: int
    flipped: int
    heads_gained: int
    heads_lost: int
    reassigned: int
    dirty_heads: int
    gateways_gained: int
    gateways_lost: int
    resignalling: int
    step_seconds: float
    delta_seconds: float
    repair_seconds: float
    connected: Optional[bool]


def _canonical_keys(csr: CSRGraph) -> np.ndarray:
    """Sorted unique canonical ``min * n + max`` keys of all edges."""
    n = csr.num_nodes
    keys = csr.edge_keys()
    src, dst = keys // n, keys % n
    return np.sort(src[src < dst] * n + dst[src < dst])


def _setdiff_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a - b`` for sorted unique int64 arrays."""
    return a[~searchsorted_membership(b, a)]


def _table_rows_for_heads(
    table_head: np.ndarray, head_rows: np.ndarray
) -> np.ndarray:
    """Flat indices of a head-sorted table's rows for ``head_rows``."""
    starts = np.searchsorted(table_head, head_rows)
    counts = np.searchsorted(table_head, head_rows + 1) - starts
    return grouped_ranges(starts, counts)


def _unchanged_slice_heads(
    old_cols: Tuple[np.ndarray, ...],
    old_head: np.ndarray,
    new_cols: Tuple[np.ndarray, ...],
    new_head: np.ndarray,
    heads: np.ndarray,
) -> np.ndarray:
    """The ``heads`` whose table slice is identical in both tables.

    Both tables are head-sorted with the same deterministic within-head
    row order, so two equal slices are elementwise equal — compare row
    counts per head first, then the aligned column values, and reduce any
    mismatch back to its head with one ``logical_or.reduceat``.
    """
    o_start = np.searchsorted(old_head, heads)
    o_count = np.searchsorted(old_head, heads + 1) - o_start
    n_start = np.searchsorted(new_head, heads)
    n_count = np.searchsorted(new_head, heads + 1) - n_start
    same = o_count == n_count
    cand = heads[same]
    if cand.size == 0:
        return cand
    counts = o_count[same]
    o_idx = grouped_ranges(o_start[same], counts)
    n_idx = grouped_ranges(n_start[same], counts)
    mismatch = np.zeros(o_idx.shape[0], dtype=bool)
    for old_col, new_col in zip(old_cols, new_cols):
        mismatch |= old_col[o_idx] != new_col[n_idx]
    offsets = np.zeros(cand.shape[0] + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    changed = np.zeros(cand.shape[0], dtype=bool)
    nonempty = counts > 0
    if mismatch.size:
        changed[nonempty] = np.logical_or.reduceat(
            mismatch, offsets[:-1][nonempty]
        )
    return cand[~changed]


def _splice_by_head(
    old_cols: Tuple[np.ndarray, ...],
    old_head: np.ndarray,
    drop_heads: np.ndarray,
    new_cols: Tuple[np.ndarray, ...],
    new_head: np.ndarray,
) -> Tuple[np.ndarray, ...]:
    """Replace all rows of ``drop_heads`` with the new rows, order kept.

    Both tables are sorted with the head column as the primary key and the
    surviving/new head groups are disjoint, so a merge keyed on the head
    column alone splices the new groups into place — the classic
    two-sorted-array merge, no re-sort of the retained rows.
    """
    keep = ~searchsorted_membership(drop_heads, old_head)
    kept_head = old_head[keep]
    out: List[np.ndarray] = []
    k = np.arange(kept_head.shape[0], dtype=np.int64) + np.searchsorted(
        new_head, kept_head
    )
    m = np.arange(new_head.shape[0], dtype=np.int64) + np.searchsorted(
        kept_head, new_head, side="right"
    )
    total = kept_head.shape[0] + new_head.shape[0]
    for old_col, new_col in zip(old_cols, new_cols):
        col = np.empty(total, dtype=np.int64)
        col[k] = old_col[keep]
        col[m] = new_col
        out.append(col)
    return tuple(out)


class KernelMobilitySession:
    """Maintain clustering + backbone under mobility, array-native.

    The drop-in hot path behind
    :class:`~repro.maintenance.session.MobilitySession` above the CSR
    cutover, and the engine of the 100k-node mobility workload.  Holds
    positions, adjacency, head assignment, witness tables and connector
    tables as arrays between ticks and repairs all of them per tick; the
    materialising accessors (:meth:`network`, :meth:`structure`,
    :meth:`backbone`) bridge back to the object layer on demand.

    Args:
        positions: ``(n, 2)`` initial positions, row ``i`` for ``ids[i]``.
        radius: Unit-disk transmission range.
        mobility: The movement model (stepped in ascending-id row order,
            exactly like the object session).
        ids: Node id per position row (default ``0..n-1``).
        area: Working space (defaults to the mobility model's area).
        torus: Wrap distances around ``area``.
        policy: Coverage policy; only the paper-default 2.5-hop sets have
            an incremental kernel.
        connectivity: Also compute per-tick connectivity (an extra
            ``O(n + m)`` BFS; the scaling workload leaves it off).
    """

    def __init__(
        self,
        positions: np.ndarray,
        radius: float,
        mobility: MobilityModel,
        *,
        ids: Optional[np.ndarray] = None,
        area: Optional[Area] = None,
        torus: bool = False,
        policy: CoveragePolicy = CoveragePolicy.TWO_FIVE_HOP,
        connectivity: bool = False,
    ) -> None:
        if policy is not CoveragePolicy.TWO_FIVE_HOP:
            raise ConfigurationError(
                "the kernel mobility session implements the 2.5-hop policy "
                f"only, got {policy.label}"
            )
        pts = np.array(positions, dtype=float, copy=True)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise GeometryError(
                f"expected (n, 2) positions, got shape {pts.shape}"
            )
        n = pts.shape[0]
        if ids is not None:
            id_arr = np.asarray(ids, dtype=np.int64)
            order = np.argsort(id_arr, kind="stable")
            pts = pts[order]
            id_arr = id_arr[order]
        else:
            id_arr = None
        if not (radius > 0.0 and np.isfinite(radius)):
            raise GeometryError(f"radius must be positive, got {radius}")
        self.radius = float(radius)
        self.mobility = mobility
        self.policy = policy
        self.area = area if area is not None else mobility.area
        self.torus = bool(torus)
        self.connectivity = bool(connectivity)
        self.time = 0.0
        self.history: List[KernelTickReport] = []
        self._pts = pts
        self._csr = csr_from_positions(
            pts, self.radius, ids=id_arr,
            torus=self.area if self.torus else None,
        )
        self._head_row = lowest_id_rows(self._csr)
        self._cov = two_five_hop_arrays(self._csr, self._head_row)
        sel = select_gateways_batch(self._cov)
        self._conn = self._sorted_conn(
            (sel.conn_head, sel.conn_ch, sel.conn_v, sel.conn_w), n
        )
        self._gateway_rows = self._gateways_of(self._conn)
        self._grid = (
            None if self.torus else IncrementalGrid(pts, self.radius)
        )
        empty = np.empty(0, dtype=np.int64)
        self._last_reevaluated = empty
        self._last_flipped = empty
        self._last_reassigned = empty
        self._last_gained = empty
        self._last_lost = empty
        self._last_resignal = empty

    # -- array state -------------------------------------------------------

    @property
    def csr(self) -> CSRGraph:
        """The current adjacency."""
        return self._csr

    @property
    def head_row(self) -> np.ndarray:
        """The current per-row head assignment."""
        return self._head_row

    @property
    def coverage(self) -> CoverageArrays:
        """The maintained witness tables."""
        return self._cov

    @property
    def positions(self) -> np.ndarray:
        """Current positions in row (ascending-id) order."""
        return self._pts

    @property
    def gateway_rows(self) -> np.ndarray:
        """Current gateway rows, ascending."""
        return self._gateway_rows

    @staticmethod
    def _sorted_conn(
        conn: Tuple[np.ndarray, ...], n: int
    ) -> Tuple[np.ndarray, ...]:
        """Connector columns sorted by ``(head, ch)`` for stable splicing."""
        order = np.argsort(conn[0] * n + conn[1], kind="stable")
        return tuple(c[order] for c in conn)

    @staticmethod
    def _gateways_of(conn: Tuple[np.ndarray, ...]) -> np.ndarray:
        _, _, conn_v, conn_w = conn
        return sorted_unique(np.concatenate([conn_v, conn_w[conn_w >= 0]]))

    def _edge_delta(
        self, new_pts: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, CSRGraph]:
        """Per-tick ``(added, removed, new_csr)`` canonical-key delta."""
        n = self._csr.num_nodes
        if self._grid is None:
            # Torus: wrapped distances have no cell structure here, so the
            # delta comes from a dense rebuild diff (the same dense path
            # the static builder uses for wrapped areas).
            new_csr = csr_from_positions(
                new_pts, self.radius, ids=self._csr.ids,
                torus=self.area,
            )
            old_keys = _canonical_keys(self._csr)
            new_keys = _canonical_keys(new_csr)
            added = _setdiff_sorted(new_keys, old_keys)
            removed = _setdiff_sorted(old_keys, new_keys)
            return added, removed, new_csr
        moved = self._grid.update(new_pts)
        us, vs = self._grid.delta_pairs(self.radius, moved)
        lo = np.minimum(us, vs)
        hi = np.maximum(us, vs)
        new_touched = np.sort(lo * n + hi)
        # Edges previously incident to a moved row.  The directed key set
        # is sorted and each undirected edge's canonical ``src < dst`` copy
        # is its own canonical key, so masking the directed keys yields the
        # sorted unique canonical set with no hashing pass.
        keys = self._csr.edge_keys()
        src, dst = keys // n, keys % n
        old_touched = keys[(src < dst) & (moved[src] | moved[dst])]
        added = _setdiff_sorted(new_touched, old_touched)
        removed = _setdiff_sorted(old_touched, new_touched)
        new_csr = apply_edge_delta(self._csr, added, removed)
        return added, removed, new_csr

    def step(self, dt: float = 1.0) -> KernelTickReport:
        """Advance the session one tick and repair every structure.

        Returns:
            The tick's :class:`KernelTickReport` (also appended to
            :attr:`history`).
        """
        with perf.stage("maintenance"):
            t0 = time.perf_counter()
            with perf.stage("maintenance.step"):
                new_pts = self.mobility.step(self._pts, dt)
            t1 = time.perf_counter()
            with perf.stage("maintenance.delta"):
                added, removed, new_csr = self._edge_delta(new_pts)
            t2 = time.perf_counter()
            with perf.stage("maintenance.repair"):
                report = self._repair(added, removed, new_csr, dt,
                                      t1 - t0, t2 - t1, t2)
            self._pts = new_pts
        self.history.append(report)
        return report

    def _repair(
        self,
        added: np.ndarray,
        removed: np.ndarray,
        new_csr: CSRGraph,
        dt: float,
        step_seconds: float,
        delta_seconds: float,
        t2: float,
    ) -> KernelTickReport:
        n = new_csr.num_nodes
        rows = np.arange(n, dtype=np.int64)
        old_head_row = self._head_row
        old_is_head = old_head_row == rows
        delta_keys = np.concatenate([added, removed])
        seeds = mask_unique_rows(
            np.concatenate([delta_keys // n, delta_keys % n]), n
        )
        if seeds.size:
            head_row, reevaluated, flipped, reassigned = (
                repair_lowest_id_rows(new_csr, old_head_row, seeds)
            )
        else:
            head_row = old_head_row
            reevaluated = flipped = reassigned = rows[:0]
        is_head = head_row == rows

        # Heads whose coverage inputs can have changed all lie within two
        # hops (in the new graph) of a changed edge endpoint or a row
        # whose role/assignment changed.
        seeds2 = mask_unique_rows(
            np.concatenate([seeds, flipped, reassigned]), n
        )
        l1, _ = new_csr.gather_rows(seeds2)
        l2, _ = new_csr.gather_rows(mask_unique_rows(l1, n))
        ball = mask_unique_rows(np.concatenate([seeds2, l1, l2]), n)
        dirty_old_heads = ball[old_is_head[ball]]
        dirty_new_heads = ball[is_head[ball]]

        cov = self._cov
        conn = self._conn
        surviving = dirty_old_heads[is_head[dirty_old_heads]]

        if seeds2.size:
            new_rows = two_five_hop_arrays_masked(
                new_csr, head_row, dirty_new_heads
            )
            # Gateway selection is a pure per-head function of the head's
            # witness slice, so surviving heads whose recomputed slices
            # came back identical keep their connector rows verbatim (and
            # are, by the same purity, exempt from re-signalling).
            unchanged = np.intersect1d(
                _unchanged_slice_heads(
                    (cov.d_head, cov.d_ch, cov.d_v), cov.d_head,
                    new_rows[:3], new_rows[0], surviving,
                ),
                _unchanged_slice_heads(
                    (cov.i_head, cov.i_ch, cov.i_v, cov.i_w), cov.i_head,
                    new_rows[3:], new_rows[3], surviving,
                ),
                assume_unique=True,
            )
            changed_surviving = np.setdiff1d(
                surviving, unchanged, assume_unique=True
            )
            sel_heads = np.setdiff1d(
                dirty_new_heads, unchanged, assume_unique=True
            )
            # Signalling comparison needs the changed surviving heads' old
            # target keys and gateway keys before their rows are dropped.
            old_t_keys = self._target_keys(cov, changed_surviving, n)
            old_g_keys = self._gateway_keys(conn, changed_surviving, n)
            d_cols = _splice_by_head(
                (cov.d_head, cov.d_ch, cov.d_v), cov.d_head,
                dirty_old_heads, new_rows[:3], new_rows[0],
            )
            i_cols = _splice_by_head(
                (cov.i_head, cov.i_ch, cov.i_v, cov.i_w), cov.i_head,
                dirty_old_heads, new_rows[3:], new_rows[3],
            )
            new_cov = CoverageArrays(
                csr=new_csr, policy=self.policy,
                heads=np.flatnonzero(is_head),
                d_head=d_cols[0], d_ch=d_cols[1], d_v=d_cols[2],
                i_head=i_cols[0], i_ch=i_cols[1], i_v=i_cols[2],
                i_w=i_cols[3],
            )
            sel_cols = select_gateways_masked(
                new_cov, sel_heads, np.empty(0, dtype=np.int64)
            )
            sel_sorted = self._sorted_conn(sel_cols, n)
            new_conn = _splice_by_head(
                conn, conn[0],
                np.setdiff1d(dirty_old_heads, unchanged, assume_unique=True),
                sel_sorted, sel_sorted[0],
            )
        else:
            changed_surviving = surviving
            old_t_keys = self._target_keys(cov, changed_surviving, n)
            old_g_keys = self._gateway_keys(conn, changed_surviving, n)
            new_cov = CoverageArrays(
                csr=new_csr, policy=self.policy, heads=cov.heads,
                d_head=cov.d_head, d_ch=cov.d_ch, d_v=cov.d_v,
                i_head=cov.i_head, i_ch=cov.i_ch, i_v=cov.i_v,
                i_w=cov.i_w,
            )
            new_conn = conn

        new_t_keys = self._target_keys(new_cov, changed_surviving, n)
        new_g_keys = self._gateway_keys(new_conn, changed_surviving, n)
        resignal = np.union1d(
            self._changed_heads(old_t_keys, new_t_keys, n),
            self._changed_heads(old_g_keys, new_g_keys, n),
        )

        new_gateways = self._gateways_of(new_conn)
        gained = _setdiff_sorted(new_gateways, self._gateway_rows)
        lost = _setdiff_sorted(self._gateway_rows, new_gateways)

        connected: Optional[bool] = None
        if self.connectivity:
            labels = new_csr.connected_component_labels()
            connected = bool(n <= 1 or int(labels.max()) == 0)

        self._csr = new_csr
        self._head_row = head_row
        self._cov = new_cov
        self._conn = new_conn
        self._gateway_rows = new_gateways
        self.time += dt
        # Stash the tick's row sets for the materialising wrapper (cheap:
        # views of small arrays).
        self._last_flipped = flipped
        self._last_reassigned = reassigned
        self._last_reevaluated = reevaluated
        self._last_gained = gained
        self._last_lost = lost
        self._last_resignal = resignal
        return KernelTickReport(
            time=self.time,
            link_changes=int(added.shape[0] + removed.shape[0]),
            reevaluated=int(reevaluated.shape[0]),
            flipped=int(flipped.shape[0]),
            heads_gained=int(np.count_nonzero(is_head[flipped])),
            heads_lost=int(np.count_nonzero(~is_head[flipped])),
            reassigned=int(reassigned.shape[0]),
            dirty_heads=int(dirty_new_heads.shape[0]),
            gateways_gained=int(gained.shape[0]),
            gateways_lost=int(lost.shape[0]),
            resignalling=int(resignal.shape[0]),
            step_seconds=step_seconds,
            delta_seconds=delta_seconds,
            repair_seconds=time.perf_counter() - t2,
            connected=connected,
        )

    @staticmethod
    def _target_keys(
        cov: CoverageArrays, head_rows: np.ndarray, n: int
    ) -> np.ndarray:
        """Unique ``head * n + ch`` target keys of the given heads."""
        d_sel = _table_rows_for_heads(cov.d_head, head_rows)
        i_sel = _table_rows_for_heads(cov.i_head, head_rows)
        return sorted_unique(np.concatenate([
            cov.d_head[d_sel] * n + cov.d_ch[d_sel],
            cov.i_head[i_sel] * n + cov.i_ch[i_sel],
        ]))

    @staticmethod
    def _gateway_keys(
        conn: Tuple[np.ndarray, ...], head_rows: np.ndarray, n: int
    ) -> np.ndarray:
        """Unique ``head * n + relay`` keys of the given heads' gateways."""
        conn_head, _, conn_v, conn_w = conn
        sel = _table_rows_for_heads(conn_head, head_rows)
        h, v, w = conn_head[sel], conn_v[sel], conn_w[sel]
        return sorted_unique(np.concatenate([h * n + v,
                                             h[w >= 0] * n + w[w >= 0]]))

    @staticmethod
    def _changed_heads(
        old_keys: np.ndarray, new_keys: np.ndarray, n: int
    ) -> np.ndarray:
        """Heads whose per-head key set differs between two snapshots.

        Both inputs are unique within a head, so a head changed iff some
        key occurs in exactly one snapshot — boundary-count the merged
        sorted stream instead of building per-head Python sets.
        """
        k = np.sort(np.concatenate([old_keys, new_keys]))
        if k.shape[0] == 0:
            return k
        single = np.ones(k.shape[0], dtype=bool)
        dup = k[1:] == k[:-1]
        single[1:][dup] = False
        single[:-1][dup] = False
        return np.unique(k[single] // n)

    def run(self, ticks: int, dt: float = 1.0) -> List[KernelTickReport]:
        """Run ``ticks`` steps and return their reports."""
        return [self.step(dt) for _ in range(ticks)]

    # -- materialisation ---------------------------------------------------

    def repair_summary(self) -> RepairSummary:
        """The last tick's repair as an object-layer
        :class:`~repro.maintenance.incremental.RepairSummary` (node ids).

        ``reevaluated`` is the kernel's affected ball — its own locality
        measure, not the per-event heap's; ``flipped``/``reassigned``
        match the object session's *net* per-tick role changes exactly.
        """
        ids = self._csr.ids
        return RepairSummary(
            reevaluated=frozenset(ids[self._last_reevaluated].tolist()),
            flipped=frozenset(ids[self._last_flipped].tolist()),
            reassigned=frozenset(ids[self._last_reassigned].tolist()),
        )

    def network(self) -> Network:
        """The current snapshot as a :class:`~repro.graph.network.Network`."""
        ids = self._csr.ids.tolist()
        return Network(
            graph=self._csr.to_graph(),
            positions={v: (float(x), float(y))
                       for v, (x, y) in zip(ids, self._pts)},
            radius=self.radius,
            area=self.area,
            torus=self.torus,
        )

    def structure(self, network: Optional[Network] = None) -> ClusterStructure:
        """The current clustering as a :class:`ClusterStructure`."""
        graph = network.graph if network is not None else self._csr.to_graph()
        ids = self._csr.ids
        head_of = dict(zip(ids.tolist(), ids[self._head_row].tolist()))
        return ClusterStructure(graph=graph, head_of=head_of)

    def backbone(
        self, structure: Optional[ClusterStructure] = None
    ) -> Backbone:
        """The current backbone, bit-identical to the object-layer build."""
        if structure is None:
            structure = self.structure()
        batch = BatchGatewaySelection(
            cov=self._cov,
            conn_head=self._conn[0],
            conn_ch=self._conn[1],
            conn_v=self._conn[2],
            conn_w=self._conn[3],
        )
        return Backbone(
            structure=structure,
            policy=self.policy,
            coverage_sets=self._cov.materialise_all(),
            selections=batch.materialise_all(),
            algorithm=f"static-backbone[{self.policy.label}]",
        )

    def churn_ids(self) -> Dict[str, "frozenset[NodeId]"]:
        """The last tick's churn row sets translated to node ids.

        Keys: ``heads_gained``, ``heads_lost``, ``reassigned``,
        ``gateways_gained``, ``gateways_lost``, ``resignalling`` — exactly
        the sets the object-layer churn dataclasses carry.
        """
        ids = self._csr.ids
        is_head = self._head_row == np.arange(
            self._csr.num_nodes, dtype=np.int64
        )
        flipped = self._last_flipped
        return {
            "heads_gained": frozenset(ids[flipped[is_head[flipped]]].tolist()),
            "heads_lost": frozenset(
                ids[flipped[~is_head[flipped]]].tolist()
            ),
            "reassigned": frozenset(ids[self._last_reassigned].tolist()),
            "gateways_gained": frozenset(ids[self._last_gained].tolist()),
            "gateways_lost": frozenset(ids[self._last_lost].tolist()),
            "resignalling": frozenset(ids[self._last_resignal].tolist()),
        }
