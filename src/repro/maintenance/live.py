"""Live maintenance: exact incremental re-signalling accounting.

The paper argues the static backbone is expensive to keep fresh but never
quantifies it.  :class:`LiveMaintenanceSession` does, at message
granularity: each epoch the nodes move, and we derive — from exact diffs of
the before/after structures — precisely which protocol messages an
incremental implementation would have to resend:

* ``HELLO``            — nodes whose neighbour set changed re-beacon;
* declarations         — nodes whose role or head changed re-declare;
* ``CH_HOP1``          — non-heads whose neighbouring-head list changed;
* ``CH_HOP2``          — non-heads whose 2-hop head entries changed;
* ``GATEWAY``          — heads whose gateway selection changed re-issue
  (plus the TTL-2 forwards by their selected first-hop gateways).

The total is compared against the cost of rebuilding from scratch (what
:func:`repro.protocols.runner.run_distributed_build` would send), giving
the incremental-vs-rebuild saving the dynamic backbone renders moot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.backbone.static_backbone import Backbone, build_static_backbone
from repro.cluster.lowest_id import lowest_id_clustering
from repro.cluster.state import ClusterStructure
from repro.geometry.mobility import MobilityModel
from repro.graph.network import Network
from repro.types import CoveragePolicy, NodeId


@dataclass(frozen=True)
class LiveEpochReport:
    """Incremental re-signalling cost of one mobility epoch.

    Attributes:
        time: Session time after the epoch.
        messages: Message-type -> count an incremental maintainer resends.
        rebuild_messages: What a from-scratch rebuild would send instead
            (one HELLO + one declaration per node, CH_HOP1/2 per non-head,
            GATEWAY per head plus first-hop forwards).
        link_changes: Edges that appeared or disappeared.
        connected: Whether the new snapshot is connected.
    """

    time: float
    messages: Dict[str, int]
    rebuild_messages: int
    link_changes: int
    connected: bool

    @property
    def total(self) -> int:
        """Total incremental messages this epoch."""
        return sum(self.messages.values())

    @property
    def saving(self) -> float:
        """Fraction of the rebuild cost avoided by incremental repair."""
        if self.rebuild_messages == 0:
            return 0.0
        return 1.0 - self.total / self.rebuild_messages


def _hop1_content(structure: ClusterStructure, v: NodeId) -> frozenset:
    return structure.neighbouring_clusterheads(v)


def _hop2_content(structure: ClusterStructure, v: NodeId) -> frozenset:
    """The CH_HOP2 entries node ``v`` would announce (2.5-hop semantics)."""
    # The structure's shared TopologyView memoizes the neighbour sets: the
    # diffing below probes every non-head of both the old and new structure,
    # so the same sets are read many times per epoch.
    view = structure.topology
    my_heads = structure.neighbouring_clusterheads(v)
    entries = set()
    for w in view.neighbours(v):
        if structure.is_clusterhead(w):
            continue
        ch = structure.head_of[w]
        if ch not in my_heads:
            entries.add((ch, w))
    return frozenset(entries)


def _gateway_message_cost(backbone: Backbone, head: NodeId) -> int:
    """One GATEWAY send plus the TTL-2 forwards by first-hop gateways."""
    selection = backbone.selections[head]
    view = backbone.structure.topology
    first_hop = selection.gateways & view.neighbours(head)
    return 1 + len(first_hop)


class LiveMaintenanceSession:
    """Evolve a network and account incremental protocol maintenance.

    Args:
        network: Initial snapshot.
        mobility: Movement model.
        policy: Coverage policy of the maintained static backbone.
    """

    def __init__(
        self,
        network: Network,
        mobility: MobilityModel,
        policy: CoveragePolicy = CoveragePolicy.TWO_FIVE_HOP,
    ) -> None:
        self.network = network
        self.mobility = mobility
        self.policy = policy
        self.time = 0.0
        self._ids = network.graph.nodes()
        self.structure = lowest_id_clustering(network.graph)
        self.backbone = build_static_backbone(self.structure, policy)

    def _rebuild_cost(self, structure: ClusterStructure,
                      backbone: Backbone) -> int:
        n = structure.graph.num_nodes
        non_heads = n - len(structure.clusterheads)
        gateway = sum(
            _gateway_message_cost(backbone, h)
            for h in structure.clusterheads
        )
        return n + n + 2 * non_heads + gateway

    def step(self, dt: float = 1.0) -> LiveEpochReport:
        """Advance one epoch and account the incremental message cost."""
        old_net = self.network
        old_structure = self.structure
        old_backbone = self.backbone
        positions = old_net.position_array(self._ids)
        self.network = old_net.moved(self.mobility.step(positions, dt),
                                     order=self._ids)
        self.time += dt
        self.structure = lowest_id_clustering(self.network.graph)
        self.backbone = build_static_backbone(self.structure, self.policy)

        old_edges = set(old_net.graph.edges())
        new_edges = set(self.network.graph.edges())
        changed_edges = old_edges ^ new_edges
        touched = {v for e in changed_edges for v in e}

        messages: Dict[str, int] = {
            "hello": len(touched),
            "declaration": 0,
            "ch_hop1": 0,
            "ch_hop2": 0,
            "gateway": 0,
        }
        for v in self._ids:
            old_role_head = old_structure.head_of[v]
            new_role_head = self.structure.head_of[v]
            if old_role_head != new_role_head or (
                (old_role_head == v) != (new_role_head == v)
            ):
                messages["declaration"] += 1
        for v in self._ids:
            old_is_head = old_structure.is_clusterhead(v)
            new_is_head = self.structure.is_clusterhead(v)
            if new_is_head:
                continue  # heads do not send CH_HOP messages
            if old_is_head:
                # Newly demoted: must announce both CH_HOP messages.
                messages["ch_hop1"] += 1
                messages["ch_hop2"] += 1
                continue
            if (_hop1_content(old_structure, v)
                    != _hop1_content(self.structure, v)):
                messages["ch_hop1"] += 1
            if (_hop2_content(old_structure, v)
                    != _hop2_content(self.structure, v)):
                messages["ch_hop2"] += 1
        surviving = (old_structure.clusterheads
                     & self.structure.clusterheads)
        for head in self.structure.clusterheads:
            if head not in surviving:
                messages["gateway"] += _gateway_message_cost(
                    self.backbone, head
                )
                continue
            if (old_backbone.selections[head].gateways
                    != self.backbone.selections[head].gateways):
                messages["gateway"] += _gateway_message_cost(
                    self.backbone, head
                )

        from repro.graph.connectivity import is_connected

        return LiveEpochReport(
            time=self.time,
            messages=messages,
            rebuild_messages=self._rebuild_cost(self.structure,
                                                self.backbone),
            link_changes=len(changed_edges),
            connected=is_connected(self.network.graph),
        )

    def run(self, ticks: int, dt: float = 1.0) -> list[LiveEpochReport]:
        """Run ``ticks`` epochs and return their reports."""
        return [self.step(dt) for _ in range(ticks)]
