"""Backbone maintenance under mobility (extension).

The paper motivates the dynamic backbone by the cost of keeping a static
backbone fresh in a mobile network but evaluates static snapshots only.
This package makes the argument measurable: drive a network with a mobility
model, re-derive clustering/backbone each tick, and account the churn —
role flips, head reassignments, gateway turnover and the number of
clusterheads whose coverage sets changed (i.e. how much of the CH_HOP /
GATEWAY signalling would have to be repeated).
"""

from repro.maintenance.stability import (
    BackboneChurn,
    ClusterChurn,
    backbone_churn,
    cluster_churn,
)
from repro.maintenance.incremental import (
    IncrementalLowestIdClustering,
    RepairSummary,
)
from repro.maintenance.kernels import KernelMobilitySession, KernelTickReport
from repro.maintenance.live import LiveEpochReport, LiveMaintenanceSession
from repro.maintenance.session import MaintenanceReport, MobilitySession

__all__ = [
    "ClusterChurn",
    "BackboneChurn",
    "cluster_churn",
    "backbone_churn",
    "MobilitySession",
    "MaintenanceReport",
    "IncrementalLowestIdClustering",
    "RepairSummary",
    "KernelMobilitySession",
    "KernelTickReport",
    "LiveMaintenanceSession",
    "LiveEpochReport",
]
