"""Experiment harness: the paper's simulation environment and figure drivers.

:class:`~repro.workload.config.PaperEnvironment` captures Section 4's setup
(100x100 area, ``d ∈ {6, 18}``, ``n ∈ 20..100``, discard disconnected
samples, 99% CI within ±5%); :mod:`repro.workload.experiments` turns it into
the three figures' series tables.
"""

from repro.workload.config import PaperEnvironment
from repro.workload.trials import TrialOutcome, paired_trials
from repro.workload.experiments import (
    run_fig6,
    run_fig7,
    run_fig8,
    run_flooding_comparison,
)
from repro.workload.contention import ContentionPoint, run_contention_sweep
from repro.workload.faultsweep import FaultSweepPoint, run_fault_sweep
from repro.workload.mobility_scaling import (
    MobilityScalingPoint,
    make_mobility_trial,
    run_mobility_scaling,
)
from repro.workload.robustness import RobustnessPoint, run_robustness_sweep
from repro.workload.scaling import ScalingPoint, run_scaling_study
from repro.workload.storm import StormPoint, run_storm_experiment

__all__ = [
    "PaperEnvironment",
    "TrialOutcome",
    "paired_trials",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_flooding_comparison",
    "ContentionPoint",
    "run_contention_sweep",
    "FaultSweepPoint",
    "run_fault_sweep",
    "RobustnessPoint",
    "run_robustness_sweep",
    "StormPoint",
    "run_storm_experiment",
    "ScalingPoint",
    "run_scaling_study",
    "MobilityScalingPoint",
    "run_mobility_scaling",
    "make_mobility_trial",
]
