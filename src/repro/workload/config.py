"""Experiment configuration: the paper's simulation environment.

Section 4: "The confined working space is 100 x 100.  Nodes are randomly
placed in this area. ... The network is generated with two fixed average
node degrees: d = 6 and 18 ... For each d, the number of nodes in the
network ranges from 20 to 100.  We repeat the simulation until the 99%
confidential interval of the result is within ±5%."
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.errors import ConfigurationError
from repro.geometry.area import Area


@dataclass(frozen=True)
class PaperEnvironment:
    """The paper's simulation environment, with adjustable fidelity.

    Attributes:
        ns: Network sizes swept on the x axis.
        degrees: Fixed average degrees (one sub-figure each).
        area: The confined working space.
        confidence: CI confidence level for the stopping rule.
        target: Relative CI half-width target.
        min_samples: Trials before convergence may be declared.
        max_samples: Hard per-point trial budget.
        seed: Root seed; every (figure, d, n) point derives its own stream.
    """

    ns: Tuple[int, ...] = (20, 40, 60, 80, 100)
    degrees: Tuple[float, ...] = (6.0, 18.0)
    area: Area = field(default_factory=Area.paper)
    confidence: float = 0.99
    target: float = 0.05
    min_samples: int = 30
    max_samples: int = 4000
    seed: int = 20030422

    def __post_init__(self) -> None:
        if not self.ns:
            raise ConfigurationError("at least one network size is required")
        if any(n < 2 for n in self.ns):
            raise ConfigurationError(f"network sizes must be >= 2, got {self.ns}")
        if not self.degrees:
            raise ConfigurationError("at least one average degree is required")
        if any(d <= 0 for d in self.degrees):
            raise ConfigurationError(f"degrees must be positive, got {self.degrees}")

    @classmethod
    def paper(cls) -> "PaperEnvironment":
        """Full-fidelity settings matching the paper."""
        return cls()

    @classmethod
    def quick(cls) -> "PaperEnvironment":
        """Reduced-fidelity settings for CI and benchmark smoke runs.

        Same sweep shape, but a fixed small trial count (stopping rule
        disabled by ``min_samples == max_samples``); results are noisier but
        the figure *shapes* survive.
        """
        return cls(min_samples=12, max_samples=12, target=0.5)

    def scaled(self, **overrides: object) -> "PaperEnvironment":
        """A copy with fields replaced (thin wrapper over dataclass replace)."""
        return replace(self, **overrides)  # type: ignore[arg-type]
