"""Contention sweeps: broadcast delivery under SINR interference and a MAC.

The fault sweep (:mod:`repro.workload.faultsweep`) degrades the medium with
i.i.d. losses and scheduled faults; this driver swaps the perfect-PHY
assumption itself.  Every protocol run carries a
:class:`~repro.channel.sinr.SinrChannel` (log-distance pathloss,
SINR-threshold reception, exact interference accounting) and a contention
MAC (:class:`~repro.channel.mac.SlottedCsmaMac` or
:class:`~repro.channel.mac.TdmaMac`), so redundant relaying now has a
*cost*: flooding's simultaneous retransmissions raise the interference sum
at every receiver and destroy its own delivery, while the sparse CDS
backbones mostly clear the threshold.  That is the broadcast-storm argument
of the paper's introduction, measured rather than asserted.

The pairing discipline matches the fault sweep: all protocols of a trial
share one sampled network, one source, one fault schedule and one loss
stream; all loss points share their network samples through the scenario
cache; trials are :class:`~repro.exec.spec.TrialSpec`-described and consume
spawned stream ``i`` for trial ``i``, so results are bit-identical across
execution backends and worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.backbone.static_backbone import build_static_backbone
from repro.broadcast.sd_cds import broadcast_sd
from repro.channel.factory import make_channel, make_mac
from repro.cluster.lowest_id import lowest_id_clustering
from repro.cluster.state import ClusterStructure
from repro.exec.backends import BackendLike
from repro.exec.journal import RunJournal
from repro.exec.scenarios import connected_scenario
from repro.exec.spec import IndexedTrialFn, TrialSpec
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule, apply_schedule, random_schedule
from repro.graph.network import Network
from repro.protocols.broadcast import DistributedSIBroadcast
from repro.rng import RngLike, derive_seed, ensure_rng
from repro.sim.network import SimNetwork
from repro.types import NodeId
from repro.workload.faultsweep import eligible_nodes
from repro.workload.trials import paired_trials

#: Protocol labels in reporting order (the plain broadcasts; the reliable
#: variants' ACK traffic is a separate study — see docs/channel.md).
CONTENTION_PROTOCOLS = ("flooding", "si", "sd")


@dataclass(frozen=True)
class ContentionPoint:
    """Mean per-protocol outcomes at one channel-loss probability.

    Attribute-compatible with
    :class:`~repro.workload.faultsweep.FaultSweepPoint` (the duck-typed
    :func:`~repro.io.results.fault_sweep_to_json` writer accepts either),
    plus the PHY/MAC counters that explain the delivery numbers.

    Attributes:
        loss_probability: The i.i.d. per-delivery loss of this point
            (interference and MAC contention apply at every point).
        delivery: Protocol -> mean delivery ratio over eligible nodes.
        overhead: Protocol -> mean transmissions per node.
        latency: Protocol -> mean completion time (MAC deferrals push
            this up — contention trades latency for delivery).
        collisions: Protocol -> mean SINR-failed copies per trial.
        captures: Protocol -> mean copies received *despite* interference.
        trials: Paired trials behind the means.
    """

    loss_probability: float
    delivery: Dict[str, float]
    overhead: Dict[str, float]
    latency: Dict[str, float]
    collisions: Dict[str, float]
    captures: Dict[str, float]
    trials: int


def run_contention_sweep(
    *,
    losses: Sequence[float] = (0.0,),
    n: int = 100,
    average_degree: float = 8.0,
    trials: int = 8,
    mac: str = "csma",
    alpha: float = 3.0,
    threshold: float = 4.0,
    noise_margin: float = 2.0,
    frame: int = 8,
    crash_fraction: float = 0.0,
    horizon: float = 10.0,
    parallel: int = 1,
    backend: BackendLike = None,
    rng: RngLike = None,
    journal: Optional[RunJournal] = None,
) -> List[ContentionPoint]:
    """Sweep channel loss with an SINR PHY and a contention MAC attached.

    Args:
        losses: I.i.d. per-delivery drop probabilities to test (``(0.0,)``
            isolates pure interference effects).
        n: Network size.
        average_degree: Density of the sampled networks.
        trials: Paired trials per point (fixed count, bit-deterministic
            across backends — see :func:`~repro.workload.trials.paired_trials`).
        mac: ``"csma"``, ``"tdma"`` or ``"instant"`` (no MAC: every relay
            airs the moment the protocol sends — the storm worst case).
        alpha: Pathloss exponent of the SINR model.
        threshold: Required SINR (linear).
        noise_margin: Clear-channel SNR headroom of a max-range link.
        frame: TDMA frame length (ignored by the other MACs).
        crash_fraction: Fraction of nodes crashed by a per-trial random
            fault schedule (0 disables faults — the fault sweep under
            interference from docs/channel.md sets this > 0).
        horizon: Crash times fall uniformly in ``[0, horizon)``.
        parallel: Worker count handed to ``paired_trials``.
        backend: Execution backend; results are identical whichever runs.
        rng: Seed or generator.
        journal: An open :class:`~repro.exec.journal.RunJournal` for
            crash-safe resume, one point view per loss value.

    Returns:
        One :class:`ContentionPoint` per loss probability.
    """
    generator = ensure_rng(rng)
    scenario_root = derive_seed(generator)
    points: List[ContentionPoint] = []
    for loss in losses:
        point_rng = ensure_rng(derive_seed(generator))
        spec = TrialSpec.create(
            "repro.workload.contention:make_contention_trial",
            loss=float(loss),
            n=int(n),
            average_degree=float(average_degree),
            mac=str(mac),
            alpha=float(alpha),
            threshold=float(threshold),
            noise_margin=float(noise_margin),
            frame=int(frame),
            crash_fraction=float(crash_fraction),
            horizon=float(horizon),
            scenario_root=int(scenario_root),
        )
        point = (journal.point(f"contention:loss={loss:g}")
                 if journal is not None else None)
        outcome = paired_trials(
            spec=spec,
            min_samples=trials,
            max_samples=trials,
            rng=point_rng,
            parallel=parallel,
            backend=backend,
            journal=point,
        )
        axes: Dict[str, Dict[str, float]] = {
            "delivery": {}, "overhead": {}, "latency": {},
            "collisions": {}, "captures": {},
        }
        for label, interval in outcome.estimates.items():
            axis, _, protocol = label.partition("/")
            axes[axis][protocol] = interval.mean
        points.append(ContentionPoint(
            loss_probability=loss,
            delivery=axes["delivery"],
            overhead=axes["overhead"],
            latency=axes["latency"],
            collisions=axes["collisions"],
            captures=axes["captures"],
            trials=outcome.trials,
        ))
    return points


def make_contention_trial(
    *,
    loss: float,
    n: int,
    average_degree: float,
    mac: str,
    alpha: float,
    threshold: float,
    noise_margin: float,
    frame: int,
    crash_fraction: float,
    horizon: float,
    scenario_root: int,
) -> IndexedTrialFn:
    """Trial-spec factory: all protocols over one (network, schedule, seeds).

    The network and its memoized clustering come from the scenario cache
    keyed by ``(scenario_root, n, average_degree, index)``; the source,
    fault schedule and per-protocol seeds are drawn from the trial's own
    generator in a fixed order, so the trial is a pure function of
    ``(index, generator)`` on every backend.
    """

    def trial(index: int, gen: np.random.Generator) -> Dict[str, float]:
        scenario = connected_scenario(
            n, average_degree, root=scenario_root, index=index
        )
        network = scenario.network
        source = int(gen.choice(network.graph.nodes()))
        schedule: Optional[FaultSchedule] = None
        if crash_fraction > 0.0:
            schedule = random_schedule(
                network.graph,
                horizon=horizon,
                crash_fraction=crash_fraction,
                protect=(source,),
                rng=gen,
            )
        return run_contention_scenario(
            network, source,
            mac=mac, alpha=alpha, threshold=threshold,
            noise_margin=noise_margin, frame=frame,
            loss=loss, schedule=schedule, rng=gen,
            structure=scenario.clustering,
        )

    return trial


def run_contention_scenario(
    network: Network,
    source: NodeId,
    *,
    mac: str = "csma",
    alpha: float = 3.0,
    threshold: float = 4.0,
    noise_margin: float = 2.0,
    frame: int = 8,
    loss: float = 0.0,
    schedule: Optional[FaultSchedule] = None,
    rng: RngLike = None,
    structure: Optional[ClusterStructure] = None,
) -> Dict[str, float]:
    """Run every protocol once over one network under interference.

    The paired building block of :func:`run_contention_sweep`: all
    protocols see the same loss stream, the same fault-window stream and
    the same MAC backoff stream (each protocol run gets a *fresh* channel
    built from the same seeds, so the comparison isolates the relay set).

    Args:
        network: The sampled geometric network (positions calibrate the
            SINR model).
        source: Broadcast origin.
        mac: ``"csma"``, ``"tdma"`` or ``"instant"``.
        alpha / threshold / noise_margin: SINR model parameters.
        frame: TDMA frame length.
        loss: I.i.d. per-delivery loss, upstream of the SINR decision.
        schedule: Optional fault schedule (crashes gate before the channel
            — see the composition contract in :mod:`repro.sim.medium`).
        rng: Seed or generator.
        structure: Pre-computed clustering (cached scenario clustering);
            computed here when ``None``.

    Returns:
        ``{"<axis>/<protocol>": value}`` for the axes delivery, overhead,
        latency, collisions and captures over :data:`CONTENTION_PROTOCOLS`.
    """
    rng = ensure_rng(rng)
    graph = network.graph
    n = graph.num_nodes
    loss_seed = derive_seed(rng)   # same channel-loss stream per protocol
    fault_seed = derive_seed(rng)  # ... same fault-window stream
    mac_seed = derive_seed(rng)    # ... same backoff stream
    if structure is None:
        structure = lowest_id_clustering(graph)
    static = build_static_backbone(structure)
    sd_plan = broadcast_sd(structure, source).result.forward_nodes
    crashed = set(schedule.crashed_nodes()) if schedule is not None else set()
    eligible = eligible_nodes(graph, source, crashed)
    denominator = max(1, len(eligible))

    metrics: Dict[str, float] = {}
    for label, relays in (("flooding", graph.nodes()),
                          ("si", static.nodes),
                          ("sd", sd_plan)):
        channel = make_channel(
            "sinr", network,
            mac=make_mac(mac, rng=mac_seed, frame=frame),
            alpha=alpha, threshold=threshold, noise_margin=noise_margin,
        )
        net = SimNetwork(graph, loss_probability=loss, rng=loss_seed,
                         channel=channel)
        if schedule is not None:
            injector = FaultInjector(net, rng=fault_seed)
            apply_schedule(schedule, injector)
        protocol = DistributedSIBroadcast(net, relays)
        protocol.start(source)
        net.run_phase()
        result = protocol.result()
        delivered = eligible & set(result.received)
        counters = result.channel or {}
        metrics[f"delivery/{label}"] = len(delivered) / denominator
        metrics[f"overhead/{label}"] = result.transmissions / n
        metrics[f"latency/{label}"] = float(
            max((result.reception_time[v] for v in delivered), default=0)
        )
        metrics[f"collisions/{label}"] = float(counters.get("collisions", 0))
        metrics[f"captures/{label}"] = float(counters.get("captures", 0))
    return metrics


__all__ = [
    "CONTENTION_PROTOCOLS",
    "ContentionPoint",
    "make_contention_trial",
    "run_contention_scenario",
    "run_contention_sweep",
]
