"""Robustness experiments: delivery under imperfect channels (extension).

The paper assumes collisions are handled below the network layer; a natural
follow-up question for anyone deploying these backbones is how each protocol
degrades when deliveries are lost anyway.  The distributed SI/SD protocols
run unchanged on a lossy :class:`~repro.sim.medium.WirelessMedium`; this
module sweeps the loss probability and reports delivery ratios.

Redundancy is protective: blind flooding (every node relays) tolerates loss
best, the lean dynamic backbone worst — quantifying the robustness price of
the paper's efficiency, and matching its remark that passive clustering's
aggressive suppression "suffers poor delivery rate" (measured here too, on
an ideal channel, where it is the only protocol below 100%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.broadcast.passive_clustering import broadcast_passive_clustering
from repro.exec.scenarios import connected_scenario
from repro.protocols.broadcast import DistributedSDBroadcast, DistributedSIBroadcast
from repro.protocols.clustering import DistributedLowestIdClustering
from repro.protocols.coverage import CoverageExchangeProtocol
from repro.protocols.hello import HelloProtocol
from repro.rng import RngLike, derive_seed, ensure_rng
from repro.sim.network import SimNetwork
from repro.types import CoveragePolicy, NodeId


@dataclass(frozen=True)
class RobustnessPoint:
    """Mean delivery ratios at one loss probability."""

    loss_probability: float
    delivery: Dict[str, float]
    forwards: Dict[str, float]


def _lossy_network(graph, loss: float, rng) -> SimNetwork:
    """A simulated network with per-delivery loss, pre-clustered losslessly.

    Control traffic (HELLO/clustering/coverage) runs on an ideal channel —
    the question is data-plane robustness, and mixing in control losses
    would conflate two failure modes.
    """
    net = SimNetwork(graph)
    hello = HelloProtocol(net)
    hello.start()
    net.run_phase()
    clustering = DistributedLowestIdClustering(net)
    clustering.start()
    net.run_phase()
    coverage = CoverageExchangeProtocol(net, CoveragePolicy.TWO_FIVE_HOP)
    coverage.start()
    net.run_phase()
    # Flip the medium to lossy for the data phase.
    net.medium.set_loss(loss, rng)
    return net, clustering, coverage


def run_robustness_sweep(
    *,
    losses: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.3),
    n: int = 60,
    average_degree: float = 10.0,
    trials: int = 20,
    rng: RngLike = None,
) -> List[RobustnessPoint]:
    """Sweep channel loss and measure per-protocol delivery ratios.

    Args:
        losses: Per-delivery drop probabilities to test.
        n: Network size.
        average_degree: Density of the sampled networks.
        trials: Paired trials per loss point.
        rng: Seed or generator.

    Returns:
        One :class:`RobustnessPoint` per loss probability.
    """
    generator = ensure_rng(rng)
    points: List[RobustnessPoint] = []
    # One fixed scenario batch reused across loss points (paired design);
    # the samples come from the cross-experiment scenario cache, so other
    # sweeps over the same derived root reuse them too.
    scenario_root = derive_seed(generator)
    batch = []
    for t in range(trials):
        scenario = connected_scenario(
            n, average_degree, root=scenario_root, index=t
        )
        source = int(generator.choice(scenario.network.graph.nodes()))
        batch.append((scenario, source))
    for loss in losses:
        delivery: Dict[str, List[float]] = {}
        forwards: Dict[str, List[float]] = {}

        def record(label: str, result) -> None:
            delivered = sum(
                1 for v in result.received
            ) / n
            delivery.setdefault(label, []).append(delivered)
            forwards.setdefault(label, []).append(result.num_forward_nodes)

        for scenario, source in batch:
            graph = scenario.network.graph
            loss_rng = ensure_rng(int(generator.integers(0, 2**32)))
            sim_net, _clustering, coverage = _lossy_network(
                graph, loss, loss_rng
            )
            # Flooding: SI broadcast with the full node set as the CDS.
            flood = DistributedSIBroadcast(sim_net, graph.nodes())
            flood.start(source)
            sim_net.run_phase()
            record("flooding", flood.result())
            # Static backbone (centrally, on the scenario's cached
            # clustering; membership only).
            from repro.backbone.static_backbone import build_static_backbone

            static = build_static_backbone(scenario.clustering)
            si = DistributedSIBroadcast(sim_net, static.nodes)
            si.start(source)
            sim_net.run_phase()
            record("static", si.result())
            # Dynamic backbone on the same lossy medium.
            sd = DistributedSDBroadcast(sim_net, coverage)
            sd.start(source)
            sim_net.run_phase()
            record("dynamic", sd.result())
            # Passive clustering runs its own (ideal-channel) flood; it is
            # included as the paper's delivery-rate cautionary tale.
            if loss == 0.0:
                record("passive", broadcast_passive_clustering(
                    graph, source
                ).result)
        points.append(
            RobustnessPoint(
                loss_probability=loss,
                delivery={
                    k: float(np.mean(v)) for k, v in delivery.items()
                },
                forwards={
                    k: float(np.mean(v)) for k, v in forwards.items()
                },
            )
        )
    return points
