"""Robustness experiments: delivery under imperfect channels (extension).

The paper assumes collisions are handled below the network layer; a natural
follow-up question for anyone deploying these backbones is how each protocol
degrades when deliveries are lost anyway.  The distributed SI/SD protocols
run unchanged on a lossy :class:`~repro.sim.medium.WirelessMedium`; this
module sweeps the loss probability and reports delivery ratios.

Redundancy is protective: blind flooding (every node relays) tolerates loss
best, the lean dynamic backbone worst — quantifying the robustness price of
the paper's efficiency, and matching its remark that passive clustering's
aggressive suppression "suffers poor delivery rate" (measured here too, on
an ideal channel, where it is the only protocol below 100%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.broadcast.passive_clustering import broadcast_passive_clustering
from repro.cluster.lowest_id import lowest_id_clustering
from repro.graph.generators import random_geometric_network
from repro.protocols.broadcast import DistributedSDBroadcast, DistributedSIBroadcast
from repro.protocols.clustering import DistributedLowestIdClustering
from repro.protocols.coverage import CoverageExchangeProtocol
from repro.protocols.hello import HelloProtocol
from repro.rng import RngLike, ensure_rng
from repro.sim.network import SimNetwork
from repro.types import CoveragePolicy, NodeId


@dataclass(frozen=True)
class RobustnessPoint:
    """Mean delivery ratios at one loss probability."""

    loss_probability: float
    delivery: Dict[str, float]
    forwards: Dict[str, float]


def _lossy_network(graph, loss: float, rng) -> SimNetwork:
    """A simulated network with per-delivery loss, pre-clustered losslessly.

    Control traffic (HELLO/clustering/coverage) runs on an ideal channel —
    the question is data-plane robustness, and mixing in control losses
    would conflate two failure modes.
    """
    net = SimNetwork(graph)
    hello = HelloProtocol(net)
    hello.start()
    net.run_phase()
    clustering = DistributedLowestIdClustering(net)
    clustering.start()
    net.run_phase()
    coverage = CoverageExchangeProtocol(net, CoveragePolicy.TWO_FIVE_HOP)
    coverage.start()
    net.run_phase()
    # Flip the medium to lossy for the data phase.
    net.medium.set_loss(loss, rng)
    return net, clustering, coverage


def run_robustness_sweep(
    *,
    losses: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.3),
    n: int = 60,
    average_degree: float = 10.0,
    trials: int = 20,
    rng: RngLike = None,
) -> List[RobustnessPoint]:
    """Sweep channel loss and measure per-protocol delivery ratios.

    Args:
        losses: Per-delivery drop probabilities to test.
        n: Network size.
        average_degree: Density of the sampled networks.
        trials: Paired trials per loss point.
        rng: Seed or generator.

    Returns:
        One :class:`RobustnessPoint` per loss probability.
    """
    generator = ensure_rng(rng)
    points: List[RobustnessPoint] = []
    # One fixed network batch reused across loss points (paired design).
    batch = []
    for t in range(trials):
        net = random_geometric_network(n, average_degree, rng=generator)
        source = int(generator.choice(net.graph.nodes()))
        batch.append((net, source))
    for loss in losses:
        delivery: Dict[str, List[float]] = {}
        forwards: Dict[str, List[float]] = {}

        def record(label: str, result) -> None:
            delivered = sum(
                1 for v in result.received
            ) / n
            delivery.setdefault(label, []).append(delivered)
            forwards.setdefault(label, []).append(result.num_forward_nodes)

        for net, source in batch:
            loss_rng = ensure_rng(int(generator.integers(0, 2**32)))
            sim_net, _clustering, coverage = _lossy_network(
                net.graph, loss, loss_rng
            )
            # Flooding: SI broadcast with the full node set as the CDS.
            flood = DistributedSIBroadcast(sim_net, net.graph.nodes())
            flood.start(source)
            sim_net.run_phase()
            record("flooding", flood.result())
            # Static backbone (recomputed centrally; membership only).
            from repro.backbone.static_backbone import build_static_backbone

            clustering = lowest_id_clustering(net.graph)
            static = build_static_backbone(clustering)
            si = DistributedSIBroadcast(sim_net, static.nodes)
            si.start(source)
            sim_net.run_phase()
            record("static", si.result())
            # Dynamic backbone on the same lossy medium.
            sd = DistributedSDBroadcast(sim_net, coverage)
            sd.start(source)
            sim_net.run_phase()
            record("dynamic", sd.result())
            # Passive clustering runs its own (ideal-channel) flood; it is
            # included as the paper's delivery-rate cautionary tale.
            if loss == 0.0:
                record("passive", broadcast_passive_clustering(
                    net.graph, source
                ).result)
        points.append(
            RobustnessPoint(
                loss_probability=loss,
                delivery={
                    k: float(np.mean(v)) for k, v in delivery.items()
                },
                forwards={
                    k: float(np.mean(v)) for k, v in forwards.items()
                },
            )
        )
    return points
