"""Scaling study: the pipeline at sizes far beyond the paper's 100 nodes.

The paper stops at n=100; the library's substrates are built to go much
further (spatial-hash unit-disk construction, linear-time clustering).
This study measures, for fixed average degree and growing n:

* wall-clock of each pipeline stage (construction, clustering, coverage,
  backbone);
* the backbone fraction ``|CDS| / n`` — approximately constant for fixed
  degree, which is what makes the approach scale;
* dynamic-broadcast forward fraction.

The pipeline runs **array-native**: positions go straight into a
:class:`~repro.graph.csr.CSRGraph` and every stage (clustering, coverage,
gateway selection, broadcast delivery) is a CSR kernel — no per-node
Python objects anywhere, which is what makes the million-node broadcast
point feasible.  Stage timings are also streamed
through the optional ``on_stage`` callback as they complete — an
interrupted large-``n`` run still reports every finished stage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro import perf
from repro.backbone.gateway_selection import select_gateways_batch
from repro.broadcast.kernels import sd_rows
from repro.cluster.lowest_id import lowest_id_rows
from repro.coverage.two_five_hop import two_five_hop_arrays
from repro.exec.scenarios import scenario_positions
from repro.geometry.area import Area
from repro.geometry.disk import range_for_target_degree
from repro.graph.build import unit_disk_csr
from repro.rng import RngLike, derive_seed, ensure_rng

#: Signature of the streaming callback: ``(n, stage_name, seconds)``.
StageCallback = Callable[[int, str, float], None]


@dataclass(frozen=True, slots=True)
class ScalingPoint:
    """Measured pipeline behaviour at one network size.

    Attributes:
        n: Nodes placed.
        component_n: Size of the component actually processed (large sparse
            networks are rarely fully connected; the giant component is the
            honest processing unit at scale).
        build_seconds: Unit-disk construction time.
        cluster_seconds: Clustering time.
        coverage_seconds: Coverage-set computation time.
        backbone_seconds: Gateway-selection time.
        backbone_fraction: ``|CDS| / component_n``.
        dynamic_fraction: Dynamic forward nodes over ``component_n``
            (``0.0`` when the study ran with ``with_broadcast=False``).
        broadcast_seconds: SD broadcast-delivery time over the component
            (``0.0`` when the study ran with ``with_broadcast=False``).
    """

    n: int
    component_n: int
    build_seconds: float
    cluster_seconds: float
    coverage_seconds: float
    backbone_seconds: float
    backbone_fraction: float
    dynamic_fraction: float
    broadcast_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """End-to-end pipeline time."""
        return (self.build_seconds + self.cluster_seconds
                + self.coverage_seconds + self.backbone_seconds)


def run_scaling_study(
    *,
    ns: Sequence[int] = (100, 300, 1000, 3000),
    average_degree: float = 12.0,
    rng: RngLike = None,
    on_stage: Optional[StageCallback] = None,
    with_broadcast: bool = True,
) -> List[ScalingPoint]:
    """Run the full pipeline at each size and time every stage.

    The working area grows with n so the *density* (and hence degree) stays
    fixed — the geometry a growing deployment would actually have.

    Args:
        ns: Network sizes.
        average_degree: Fixed target degree across sizes.
        rng: Seed or generator.
        on_stage: Called as ``on_stage(n, stage, seconds)`` the moment each
            timed stage finishes — construction, clustering, coverage,
            selection, broadcast — so partial results of an interrupted
            run are not lost.
        with_broadcast: Also run the dynamic source-dependent broadcast
            through the SD delivery kernel (array-native end to end, so
            it holds up at n=1M).  Disable to time only the construction
            pipeline.

    Returns:
        One :class:`ScalingPoint` per size.
    """
    generator = ensure_rng(rng)
    # Placements (the only random ingredient) are cached per (n, area,
    # root): repeat runs skip re-drawing while every pipeline stage below
    # is still built — and timed — from scratch.  Built networks are
    # deliberately NOT cached here; that would zero the very measurements
    # this study exists for.
    scenario_root = derive_seed(generator)
    points: List[ScalingPoint] = []
    for n in ns:
        # Fixed density: area scales linearly with n.
        side = 100.0 * (n / 100.0) ** 0.5
        area = Area(side, side)
        radius = range_for_target_degree(n, average_degree, area)
        pts = scenario_positions(n, area, root=scenario_root)

        t0 = time.perf_counter()
        full = unit_disk_csr(pts, radius)
        build_seconds = time.perf_counter() - t0
        if on_stage is not None:
            on_stage(n, "construction", build_seconds)

        giant_rows = full.giant_component_rows()
        component = full.subgraph_rows(giant_rows)
        component_n = component.num_nodes

        t0 = time.perf_counter()
        with perf.stage("clustering"):
            head_row = lowest_id_rows(component)
        cluster_seconds = time.perf_counter() - t0
        if on_stage is not None:
            on_stage(n, "clustering", cluster_seconds)

        t0 = time.perf_counter()
        with perf.stage("coverage"):
            coverage = two_five_hop_arrays(component, head_row)
        coverage_seconds = time.perf_counter() - t0
        if on_stage is not None:
            on_stage(n, "coverage", coverage_seconds)

        t0 = time.perf_counter()
        with perf.stage("selection"):
            selection = select_gateways_batch(coverage)
        backbone_seconds = time.perf_counter() - t0
        if on_stage is not None:
            on_stage(n, "selection", backbone_seconds)
        backbone_size = int(selection.backbone_rows().shape[0])

        dynamic_fraction = 0.0
        broadcast_seconds = 0.0
        if with_broadcast:
            # Broadcast delivery stays array-native too: the SD kernel
            # consumes the CSR, head rows and coverage tables directly —
            # no per-node object layer is ever materialised, which is
            # what lets this stage run at n=1M.  Source is row 0, the
            # lowest id in the component.
            t0 = time.perf_counter()
            run = sd_rows(component, head_row, coverage,
                          np.zeros(1, dtype=np.int64), collect=False)
            broadcast_seconds = time.perf_counter() - t0
            if on_stage is not None:
                on_stage(n, "broadcast", broadcast_seconds)
            dynamic_fraction = int(run.forwarded.sum()) / component_n

        points.append(
            ScalingPoint(
                n=n,
                component_n=component_n,
                build_seconds=build_seconds,
                cluster_seconds=cluster_seconds,
                coverage_seconds=coverage_seconds,
                backbone_seconds=backbone_seconds,
                backbone_fraction=backbone_size / component_n,
                dynamic_fraction=dynamic_fraction,
                broadcast_seconds=broadcast_seconds,
            )
        )
    return points
