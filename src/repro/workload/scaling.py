"""Scaling study: the pipeline at sizes far beyond the paper's 100 nodes.

The paper stops at n=100; the library's substrates are built to go much
further (spatial-hash unit-disk construction, linear-time clustering).
This study measures, for fixed average degree and growing n:

* wall-clock of each pipeline stage (construction, clustering, coverage,
  backbone);
* the backbone fraction ``|CDS| / n`` — approximately constant for fixed
  degree, which is what makes the approach scale;
* dynamic-broadcast forward fraction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

from repro.backbone.static_backbone import build_static_backbone
from repro.broadcast.sd_cds import broadcast_sd
from repro.cluster.lowest_id import lowest_id_clustering
from repro.coverage.policy import compute_all_coverage_sets
from repro.exec.scenarios import scenario_positions
from repro.geometry.area import Area
from repro.geometry.disk import range_for_target_degree
from repro.graph.build import unit_disk_graph
from repro.graph.connectivity import connected_components
from repro.rng import RngLike, derive_seed, ensure_rng
from repro.types import CoveragePolicy


@dataclass(frozen=True, slots=True)
class ScalingPoint:
    """Measured pipeline behaviour at one network size.

    Attributes:
        n: Nodes placed.
        component_n: Size of the component actually processed (large sparse
            networks are rarely fully connected; the giant component is the
            honest processing unit at scale).
        build_seconds: Unit-disk construction time.
        cluster_seconds: Clustering time.
        coverage_seconds: Coverage-set computation time.
        backbone_seconds: Gateway-selection time.
        backbone_fraction: ``|CDS| / component_n``.
        dynamic_fraction: Dynamic forward nodes over ``component_n``.
    """

    n: int
    component_n: int
    build_seconds: float
    cluster_seconds: float
    coverage_seconds: float
    backbone_seconds: float
    backbone_fraction: float
    dynamic_fraction: float

    @property
    def total_seconds(self) -> float:
        """End-to-end pipeline time."""
        return (self.build_seconds + self.cluster_seconds
                + self.coverage_seconds + self.backbone_seconds)


def run_scaling_study(
    *,
    ns: Sequence[int] = (100, 300, 1000, 3000),
    average_degree: float = 12.0,
    rng: RngLike = None,
) -> List[ScalingPoint]:
    """Run the full pipeline at each size and time every stage.

    The working area grows with n so the *density* (and hence degree) stays
    fixed — the geometry a growing deployment would actually have.

    Args:
        ns: Network sizes.
        average_degree: Fixed target degree across sizes.
        rng: Seed or generator.

    Returns:
        One :class:`ScalingPoint` per size.
    """
    generator = ensure_rng(rng)
    # Placements (the only random ingredient) are cached per (n, area,
    # root): repeat runs skip re-drawing while every pipeline stage below
    # is still built — and timed — from scratch.  Built networks are
    # deliberately NOT cached here; that would zero the very measurements
    # this study exists for.
    scenario_root = derive_seed(generator)
    points: List[ScalingPoint] = []
    for n in ns:
        # Fixed density: area scales linearly with n.
        side = 100.0 * (n / 100.0) ** 0.5
        area = Area(side, side)
        radius = range_for_target_degree(n, average_degree, area)
        pts = scenario_positions(n, area, root=scenario_root)

        t0 = time.perf_counter()
        graph = unit_disk_graph(pts, radius)
        t1 = time.perf_counter()
        giant = max(connected_components(graph), key=len)
        component = graph.subgraph(giant)
        t2 = time.perf_counter()
        clustering = lowest_id_clustering(component)
        t3 = time.perf_counter()
        coverage = compute_all_coverage_sets(
            clustering, CoveragePolicy.TWO_FIVE_HOP
        )
        t4 = time.perf_counter()
        backbone = build_static_backbone(
            clustering, CoveragePolicy.TWO_FIVE_HOP, coverage
        )
        t5 = time.perf_counter()
        source = min(giant)
        dyn = broadcast_sd(clustering, source, coverage_sets=coverage)

        points.append(
            ScalingPoint(
                n=n,
                component_n=len(giant),
                build_seconds=t1 - t0,
                cluster_seconds=t3 - t2,
                coverage_seconds=t4 - t3,
                backbone_seconds=t5 - t4,
                backbone_fraction=backbone.size / len(giant),
                dynamic_fraction=(
                    dyn.result.num_forward_nodes / len(giant)
                ),
            )
        )
    return points
