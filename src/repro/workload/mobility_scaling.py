"""Mobility scaling study: backbone maintenance far beyond paper scale.

The maintenance extension quantifies the paper's "keeping a static
backbone fresh is costly" argument, but the object-layer
:class:`~repro.maintenance.session.MobilitySession` tops out around a few
thousand nodes.  This study drives the array-native
:class:`~repro.maintenance.kernels.KernelMobilitySession` instead —
vectorised waypoint stepping, incremental grid re-binning, CSR edge-delta
repair — and measures, for fixed average degree and growing n:

* maintenance throughput (ticks per second) and the per-tick split across
  the step / delta / repair kernel stages;
* topology volatility: link changes per tick;
* churn rates: head flips, member reaffiliations, gateway turnover and
  the number of heads whose CH_HOP/GATEWAY signalling would repeat.

Node speed scales with the transmission range (a fixed *range fraction*
per tick) so the per-tick volatility stays comparable across sizes —
matching the relative-mobility normalisation used in the maintenance
docs.  The n=100k point is the headline: mobility maintenance at three
orders of magnitude beyond the paper's n=100.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Sequence

import numpy as np

from repro import perf
from repro.errors import ConfigurationError
from repro.exec.scenarios import scenario_positions
from repro.geometry.area import Area
from repro.geometry.disk import range_for_target_degree
from repro.geometry.mobility import RandomWaypoint
from repro.maintenance.kernels import KernelMobilitySession
from repro.rng import RngLike, derive_seed, ensure_rng

#: Signature of the streaming callback: ``(point)`` after each size.
PointCallback = Callable[["MobilityScalingPoint"], None]


@dataclass(frozen=True, slots=True)
class MobilityScalingPoint:
    """Measured maintenance behaviour at one network size.

    Attributes:
        n: Nodes placed.
        ticks: Mobility ticks run (after the untimed warm-up tick).
        steps_per_second: Maintenance throughput — ticks over the summed
            per-tick kernel wall clock.
        step_seconds / delta_seconds / repair_seconds: Total wall clock of
            the three kernel stages across all timed ticks.
        link_changes_per_tick: Mean undirected edges appeared+disappeared.
        head_flip_rate: Mean fraction of nodes whose head status flipped.
        reaffiliation_rate: Mean fraction of nodes reassigned to a new
            head without changing role.
        gateway_turnover_per_tick: Mean gateways gained plus lost.
        resignalling_per_tick: Mean surviving heads whose coverage set or
            gateway selection changed.
        peak_rss_bytes: Process peak RSS after the point (0 if unknown).
    """

    n: int
    ticks: int
    steps_per_second: float
    step_seconds: float
    delta_seconds: float
    repair_seconds: float
    link_changes_per_tick: float
    head_flip_rate: float
    reaffiliation_rate: float
    gateway_turnover_per_tick: float
    resignalling_per_tick: float
    peak_rss_bytes: int = 0

    @property
    def maintenance_seconds(self) -> float:
        """Total kernel wall clock across the timed ticks."""
        return self.step_seconds + self.delta_seconds + self.repair_seconds


def _kernel_session(
    n: int,
    average_degree: float,
    speed_fraction: float,
    scenario_root: int,
    rng: np.random.Generator,
) -> KernelMobilitySession:
    """Build a fixed-density kernel session at size ``n``.

    The area grows linearly with ``n`` (constant density), the radius is
    calibrated to ``average_degree``, and the waypoint speed band is
    ``[0.5, 1.5] * speed_fraction * radius`` per unit time — so each tick
    moves nodes the same *fraction of the transmission range* at every
    size.
    """
    side = 100.0 * (n / 100.0) ** 0.5
    area = Area(side, side)
    radius = range_for_target_degree(n, average_degree, area)
    pts = scenario_positions(n, area, root=scenario_root)
    speed = speed_fraction * radius
    mobility = RandomWaypoint(
        speed_range=(0.5 * speed, 1.5 * speed),
        pause_time=0.0,
        area=area,
        rng=rng,
    )
    return KernelMobilitySession(pts, radius, mobility, area=area)


def run_mobility_scaling(
    *,
    ns: Sequence[int] = (2_000, 10_000, 100_000),
    ticks: int = 10,
    average_degree: float = 12.0,
    speed_fraction: float = 0.05,
    dt: float = 1.0,
    rng: RngLike = None,
    on_point: Optional[PointCallback] = None,
) -> List[MobilityScalingPoint]:
    """Run the maintenance kernels at each size and account every tick.

    Args:
        ns: Network sizes.
        average_degree: Fixed target degree across sizes.
        ticks: Timed mobility ticks per size (one extra warm-up tick runs
            untimed so the first measured delta is not the cold start).
        speed_fraction: Per-tick node speed as a fraction of the
            transmission range (relative mobility, size-independent).
        dt: Tick duration handed to the mobility model.
        rng: Seed or generator (drives placement caching and waypoints).
        on_point: Called with each finished :class:`MobilityScalingPoint`
            the moment its size completes, so an interrupted large-``n``
            run still reports every finished point.

    Returns:
        One :class:`MobilityScalingPoint` per size.
    """
    if ticks < 1:
        raise ConfigurationError(f"ticks must be >= 1, got {ticks}")
    generator = ensure_rng(rng)
    scenario_root = derive_seed(generator)
    points: List[MobilityScalingPoint] = []
    for n in ns:
        session = _kernel_session(
            n, average_degree, speed_fraction, scenario_root,
            np.random.default_rng(derive_seed(generator)),
        )
        session.step(dt)  # warm-up: cold caches, first grid repair
        reports = session.run(ticks, dt)
        step_s = sum(r.step_seconds for r in reports)
        delta_s = sum(r.delta_seconds for r in reports)
        repair_s = sum(r.repair_seconds for r in reports)
        total = step_s + delta_s + repair_s
        point = MobilityScalingPoint(
            n=n,
            ticks=ticks,
            steps_per_second=ticks / total if total > 0 else float("inf"),
            step_seconds=step_s,
            delta_seconds=delta_s,
            repair_seconds=repair_s,
            link_changes_per_tick=float(
                np.mean([r.link_changes for r in reports])
            ),
            head_flip_rate=float(np.mean([r.flipped for r in reports])) / n,
            reaffiliation_rate=float(
                np.mean([r.reassigned for r in reports])
            ) / n,
            gateway_turnover_per_tick=float(
                np.mean([r.gateways_gained + r.gateways_lost for r in reports])
            ),
            resignalling_per_tick=float(
                np.mean([r.resignalling for r in reports])
            ),
            peak_rss_bytes=perf.peak_rss_bytes(),
        )
        points.append(point)
        if on_point is not None:
            on_point(point)
    return points


def make_mobility_trial(
    *,
    n: int = 2_000,
    ticks: int = 5,
    average_degree: float = 12.0,
    speed_fraction: float = 0.05,
    dt: float = 1.0,
) -> Callable[[int, np.random.Generator], Mapping[str, float]]:
    """:class:`~repro.exec.spec.TrialSpec` factory for mobility trials.

    The returned trial runs a fresh kernel session for ``ticks`` and
    reports churn-rate metrics, so ``paired_trials`` can drive mobility
    maintenance through the same confidence-interval harness — and the
    same process backend — as the paper figures.  Trial ``i`` consumes
    spawned child stream ``i`` only (the backend-agnostic contract).
    """

    def trial(
        trial_index: int, generator: np.random.Generator
    ) -> Mapping[str, float]:
        scenario_root = derive_seed(generator)
        session = _kernel_session(
            n, average_degree, speed_fraction, scenario_root,
            np.random.default_rng(derive_seed(generator)),
        )
        reports = session.run(ticks, dt)
        return {
            "link_changes_per_tick": float(
                np.mean([r.link_changes for r in reports])
            ),
            "head_flip_rate": float(
                np.mean([r.flipped for r in reports])
            ) / n,
            "reaffiliation_rate": float(
                np.mean([r.reassigned for r in reports])
            ) / n,
            "resignalling_per_tick": float(
                np.mean([r.resignalling for r in reports])
            ),
        }

    return trial
