"""Experiment adapters: the serve daemon's validated request surface.

Each adapter names one experiment family (the figure sweeps, the fault
sweep, the contention sweep), validates and **normalises** its parameters
up front — out-of-range values become structured ``bad-param`` errors at
admission, never tracebacks mid-run — and executes the existing workload
runner against the request's execution context (supervised backend +
per-request journal).  The normalised parameters double as the journal's
run key: two requests with the same normalised parameters are the same
run, and a recovered request replays against exactly the key it was
accepted under.

Determinism contract: every adapter runs a **fixed** trial count
(``min_samples == max_samples``) seeded from the request parameters, so a
request's result is a pure function of its normalised parameters — the
property the chaos harness checks when it compares a crash-recovered
daemon's answer against the serial one-shot oracle bit for bit.

The ``chaos`` adapter (fault-injecting trials from ``tests/chaos_exec``)
only resolves when ``REPRO_SERVE_CHAOS=1`` is exported: it exists for the
service-level chaos harness and must not be reachable in a production
daemon.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.exec.backends import BackendLike
from repro.serve.protocol import BAD_PARAM, UNKNOWN_EXPERIMENT, ServeError

#: Environment switch that exposes the fault-injecting ``chaos`` adapter.
CHAOS_ENV = "REPRO_SERVE_CHAOS"


@dataclass
class RunContext:
    """What the service hands an adapter: execution + durability.

    Attributes:
        backend: The request-scoped (usually supervised) backend.
        parallel: Worker count for ``paired_trials``.
        journal: A :class:`~repro.serve.lifecycle.StreamingJournal` (or
            plain :class:`~repro.exec.journal.RunJournal`, or ``None``)
            the runner journals folded trials through.
    """

    backend: BackendLike = None
    parallel: int = 1
    journal: Optional[object] = None


@dataclass(frozen=True)
class ExperimentAdapter:
    """One experiment family: a validator plus a runner.

    Attributes:
        name: The wire name clients submit.
        validate: ``raw params -> normalised params`` (raises
            :class:`~repro.serve.protocol.ServeError` ``bad-param``).
        run: ``(normalised params, RunContext) -> JSON-ready result``.
    """

    name: str
    validate: Callable[[Mapping], dict]
    run: Callable[[dict, RunContext], dict]


_ADAPTERS: Dict[str, ExperimentAdapter] = {}


def register(adapter: ExperimentAdapter) -> ExperimentAdapter:
    """Install ``adapter`` into the registry (module-import time)."""
    _ADAPTERS[adapter.name] = adapter
    return adapter


def available_experiments() -> List[str]:
    """Wire names a submit may use right now (chaos only when enabled)."""
    names = sorted(_ADAPTERS)
    if os.environ.get(CHAOS_ENV) != "1":
        names = [n for n in names if n != "chaos"]
    return names


def get_adapter(name: str) -> ExperimentAdapter:
    """Resolve ``name`` or raise a structured ``unknown-experiment``."""
    if name == "chaos" and os.environ.get(CHAOS_ENV) != "1":
        raise ServeError(
            UNKNOWN_EXPERIMENT,
            f"unknown experiment 'chaos'; expected one of "
            f"{available_experiments()}",
        )
    adapter = _ADAPTERS.get(name)
    if adapter is None:
        raise ServeError(
            UNKNOWN_EXPERIMENT,
            f"unknown experiment {name!r}; expected one of "
            f"{available_experiments()}",
        )
    return adapter


# -- validation helpers -----------------------------------------------------

def _bad(key: str, message: str) -> ServeError:
    return ServeError(BAD_PARAM, f"param {key!r} {message}")


def _reject_unknown(params: Mapping, allowed: frozenset) -> None:
    unknown = sorted(set(params) - allowed)
    if unknown:
        raise ServeError(
            BAD_PARAM,
            f"unknown param(s) {unknown}; expected a subset of "
            f"{sorted(allowed)}",
        )


def _int_param(params: Mapping, key: str, default: int,
               lo: int, hi: int) -> int:
    value = params.get(key, default)
    if not isinstance(value, int) or isinstance(value, bool):
        raise _bad(key, f"must be an integer, got {value!r}")
    if not (lo <= value <= hi):
        raise _bad(key, f"must be in [{lo}, {hi}], got {value}")
    return value


def _num_param(params: Mapping, key: str, default: float,
               lo: float, hi: float) -> float:
    value = params.get(key, default)
    if not isinstance(value, (int, float)) or isinstance(value, bool) \
            or not math.isfinite(value):
        raise _bad(key, f"must be a finite number, got {value!r}")
    if not (lo <= value <= hi):
        raise _bad(key, f"must be in [{lo:g}, {hi:g}], got {value:g}")
    return float(value)


def _choice_param(params: Mapping, key: str, default: str,
                  choices: Sequence[str]) -> str:
    value = params.get(key, default)
    if value not in choices:
        raise _bad(key, f"must be one of {list(choices)}, got {value!r}")
    return value


def _num_list_param(params: Mapping, key: str, default: Sequence[float],
                    lo: float, hi: float, max_len: int,
                    *, integral: bool = False) -> List:
    value = params.get(key, list(default))
    if not isinstance(value, (list, tuple)) or not value:
        raise _bad(key, f"must be a non-empty list, got {value!r}")
    if len(value) > max_len:
        raise _bad(key, f"may hold at most {max_len} entries, "
                        f"got {len(value)}")
    out = []
    for item in value:
        if isinstance(item, bool) or not isinstance(item, (int, float)) \
                or not math.isfinite(item):
            raise _bad(key, f"entries must be finite numbers, got {item!r}")
        if integral and not isinstance(item, int):
            raise _bad(key, f"entries must be integers, got {item!r}")
        if not (lo <= item <= hi):
            raise _bad(key, f"entries must be in [{lo:g}, {hi:g}], "
                            f"got {item!r}")
        out.append(int(item) if integral else float(item))
    # JSON-native list: normalised params round-trip through the request
    # manifest unchanged, so run-key equality survives a daemon restart.
    return sorted(set(out))


def _seed_param(params: Mapping, key: str = "seed",
                default: int = 20030422) -> int:
    value = params.get(key, default)
    if not isinstance(value, int) or isinstance(value, bool):
        raise _bad(key, f"must be an integer, got {value!r}")
    if not (0 <= value < 2 ** 63):
        raise _bad(key, "must be a non-negative 63-bit integer")
    return value


# -- figure sweeps ----------------------------------------------------------

_FIGURE_KEYS = frozenset({"ns", "degrees", "trials", "seed"})


def _validate_figure(params: Mapping) -> dict:
    _reject_unknown(params, _FIGURE_KEYS)
    return {
        # ns/degrees are normalised sorted+deduped: SeriesTable x values
        # must be strictly increasing, and the sorted form makes the
        # journal run key canonical.
        "ns": list(_num_list_param(params, "ns", (20, 40, 60, 80, 100),
                                   2, 400, 8, integral=True)),
        "degrees": list(_num_list_param(params, "degrees", (6.0, 18.0),
                                        1.0, 50.0, 4)),
        "trials": _int_param(params, "trials", 12, 2, 500),
        "seed": _seed_param(params),
    }


def _figure_runner(runner_name: str) -> Callable[[dict, RunContext], dict]:
    def run(params: dict, ctx: RunContext) -> dict:
        from repro.workload import experiments
        from repro.workload.config import PaperEnvironment

        runner = getattr(experiments, runner_name)
        env = PaperEnvironment(
            ns=tuple(params["ns"]),
            degrees=tuple(params["degrees"]),
            min_samples=params["trials"],
            max_samples=params["trials"],
            target=0.5,  # fixed-count: the stopping rule is bypassed
            seed=params["seed"],
        )
        tables = runner(env, backend=ctx.backend, parallel=ctx.parallel,
                        journal=ctx.journal)
        return {
            "tables": {f"{d:g}": table.to_records()
                       for d, table in sorted(tables.items())},
        }

    return run


for _name, _runner in (("fig6", "run_fig6"), ("fig7", "run_fig7"),
                       ("fig8", "run_fig8"),
                       ("flooding", "run_flooding_comparison")):
    register(ExperimentAdapter(name=_name, validate=_validate_figure,
                               run=_figure_runner(_runner)))


# -- fault sweep ------------------------------------------------------------

_FAULTS_KEYS = frozenset({
    "losses", "n", "degree", "trials", "crash_fraction", "horizon",
    "max_retries", "seed",
})


def _validate_faults(params: Mapping) -> dict:
    _reject_unknown(params, _FAULTS_KEYS)
    return {
        "losses": list(_num_list_param(params, "losses", (0.0, 0.2),
                                       0.0, 0.95, 8)),
        "n": _int_param(params, "n", 30, 2, 400),
        "degree": _num_param(params, "degree", 6.0, 1.0, 50.0),
        "trials": _int_param(params, "trials", 8, 2, 500),
        "crash_fraction": _num_param(params, "crash_fraction", 0.1,
                                     0.0, 0.9),
        "horizon": _num_param(params, "horizon", 10.0, 0.1, 1000.0),
        "max_retries": _int_param(params, "max_retries", 5, 0, 20),
        "seed": _seed_param(params),
    }


def _run_faults(params: dict, ctx: RunContext) -> dict:
    from repro.workload.faultsweep import run_fault_sweep

    points = run_fault_sweep(
        losses=tuple(params["losses"]), n=params["n"],
        average_degree=params["degree"], trials=params["trials"],
        crash_fraction=params["crash_fraction"], horizon=params["horizon"],
        max_retries=params["max_retries"], rng=params["seed"],
        backend=ctx.backend, parallel=ctx.parallel, journal=ctx.journal,
    )
    return {"points": [
        {"loss": p.loss_probability, "delivery": p.delivery,
         "overhead": p.overhead, "latency": p.latency, "trials": p.trials}
        for p in points
    ]}


register(ExperimentAdapter(name="faults", validate=_validate_faults,
                           run=_run_faults))


# -- contention sweep -------------------------------------------------------

_CHANNEL_KEYS = frozenset({
    "losses", "n", "degree", "trials", "mac", "crash_fraction", "seed",
})


def _validate_channel(params: Mapping) -> dict:
    _reject_unknown(params, _CHANNEL_KEYS)
    return {
        "losses": list(_num_list_param(params, "losses", (0.0,),
                                       0.0, 0.95, 8)),
        "n": _int_param(params, "n", 40, 2, 400),
        "degree": _num_param(params, "degree", 8.0, 1.0, 50.0),
        "trials": _int_param(params, "trials", 8, 2, 500),
        "mac": _choice_param(params, "mac", "csma",
                             ("instant", "csma", "tdma")),
        "crash_fraction": _num_param(params, "crash_fraction", 0.0,
                                     0.0, 0.9),
        "seed": _seed_param(params),
    }


def _run_channel(params: dict, ctx: RunContext) -> dict:
    from repro.workload.contention import run_contention_sweep

    points = run_contention_sweep(
        losses=tuple(params["losses"]), n=params["n"],
        average_degree=params["degree"], trials=params["trials"],
        mac=params["mac"], crash_fraction=params["crash_fraction"],
        rng=params["seed"], backend=ctx.backend, parallel=ctx.parallel,
        journal=ctx.journal,
    )
    return {"points": [
        {"loss": p.loss_probability, "delivery": p.delivery,
         "overhead": p.overhead, "latency": p.latency,
         "collisions": p.collisions, "captures": p.captures,
         "trials": p.trials}
        for p in points
    ]}


register(ExperimentAdapter(name="channel", validate=_validate_channel,
                           run=_run_channel))


# -- chaos (test-only; gated behind REPRO_SERVE_CHAOS=1) --------------------

_CHAOS_KEYS = frozenset({
    "marker_dir", "trials", "seed", "crash_indices", "sleep_indices",
    "sleep_seconds", "raise_indices", "trial_sleep",
})


def _validate_chaos(params: Mapping) -> dict:
    _reject_unknown(params, _CHAOS_KEYS)
    marker_dir = params.get("marker_dir")
    if not isinstance(marker_dir, str) or not marker_dir:
        raise _bad("marker_dir", "is required (a writable directory)")
    out = {
        "marker_dir": marker_dir,
        "trials": _int_param(params, "trials", 8, 2, 128),
        "seed": _seed_param(params, default=11),
        "sleep_seconds": _num_param(params, "sleep_seconds", 30.0,
                                    0.0, 600.0),
        "trial_sleep": _num_param(params, "trial_sleep", 0.0, 0.0, 5.0),
    }
    for key in ("crash_indices", "sleep_indices", "raise_indices"):
        value = params.get(key, [])
        if value:
            out[key] = list(_num_list_param(params, key, (), 0, 10_000,
                                            32, integral=True))
        else:
            out[key] = []
    return out


def _run_chaos(params: dict, ctx: RunContext) -> dict:
    from repro.exec.spec import TrialSpec
    from repro.workload.trials import paired_trials

    spec = TrialSpec.create(
        "chaos_exec:make_chaos_trial",
        marker_dir=params["marker_dir"],
        crash_indices=tuple(params["crash_indices"]),
        sleep_indices=tuple(params["sleep_indices"]),
        sleep_seconds=params["sleep_seconds"],
        raise_indices=tuple(params["raise_indices"]),
        trial_sleep=params["trial_sleep"],
    )
    point = (ctx.journal.point("chaos") if ctx.journal is not None
             else None)
    outcome = paired_trials(
        spec=spec, min_samples=params["trials"],
        max_samples=params["trials"], rng=params["seed"],
        backend=ctx.backend, parallel=ctx.parallel, journal=point,
    )
    return {
        "trials": outcome.trials,
        "estimates": {
            label: {"mean": ci.mean, "half_width": ci.half_width,
                    "samples": ci.samples}
            for label, ci in outcome.estimates.items()
        },
    }


register(ExperimentAdapter(name="chaos", validate=_validate_chaos,
                           run=_run_chaos))
