"""Paired sequential trials.

All algorithms under comparison are evaluated on the **same** network sample
in each trial (a paired design): differences between curves then come from
the algorithms, not from sampling luck, and the paper's stopping rule is
applied to every metric — the point is done when *all* metrics' confidence
intervals are tight.

Trials can run concurrently (``parallel=``): each trial draws from its own
child generator spawned deterministically from the root stream, so trial
``i`` sees the same randomness regardless of worker count or scheduling —
the paired design and reproducibility survive parallel execution.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping

import numpy as np

from repro.errors import SampleBudgetExceededError
from repro.metrics.confidence import ConfidenceInterval, SequentialEstimator
from repro.rng import RngLike, ensure_rng, spawn

#: A trial function: draws one sample with the given generator and returns
#: one value per metric label.
TrialFn = Callable[[np.random.Generator], Mapping[str, float]]


@dataclass(frozen=True)
class TrialOutcome:
    """Converged estimates for one experiment point.

    Attributes:
        estimates: Metric label -> confidence interval.
        trials: Number of paired trials executed.
        converged: Whether every metric met the stopping rule (``False`` only
            when ``strict=False`` and the budget ran out).
    """

    estimates: Mapping[str, ConfidenceInterval]
    trials: int
    converged: bool


def paired_trials(
    trial_fn: TrialFn,
    *,
    confidence: float = 0.99,
    target: float = 0.05,
    min_samples: int = 30,
    max_samples: int = 4000,
    rng: RngLike = None,
    strict: bool = False,
    parallel: int = 1,
) -> TrialOutcome:
    """Run paired trials until the stopping rule holds for every metric.

    Args:
        trial_fn: Produces one sample's metric values.
        confidence: CI confidence level (paper: 0.99).
        target: Relative half-width target (paper: ±5%).
        min_samples: Trials before convergence may be declared.
        max_samples: Hard budget.
        rng: Seed or generator for the trial streams.
        strict: If ``True``, raise
            :class:`~repro.errors.SampleBudgetExceededError` when the budget
            runs out; otherwise return the best-effort estimates with
            ``converged=False``.
        parallel: Worker count for concurrent trial execution (via
            ``concurrent.futures``).  With ``parallel > 1`` every trial
            gets its own child generator spawned from ``rng`` (see
            :func:`repro.rng.spawn`), results are folded into the
            estimators in trial order, and the stopping rule is checked at
            batch boundaries — so the outcome is deterministic for a given
            seed and independent of scheduling, though the trial streams
            (and hence the exact estimates) differ from the serial path,
            which threads one generator through all trials.  ``trial_fn``
            must be safe to call concurrently.

    Returns:
        The :class:`TrialOutcome`.
    """
    if parallel < 1:
        raise ValueError(f"parallel must be >= 1, got {parallel}")
    generator = ensure_rng(rng)
    estimators: Dict[str, SequentialEstimator] = {}

    def fold(values: Mapping[str, float]) -> None:
        for label, value in values.items():
            est = estimators.get(label)
            if est is None:
                est = estimators[label] = SequentialEstimator(
                    confidence=confidence,
                    target=target,
                    min_samples=min_samples,
                    max_samples=max_samples,
                )
            est.add(float(value))

    trials = 0
    if parallel == 1:
        while True:
            fold(trial_fn(generator))
            trials += 1
            if trials >= min_samples and all(
                e.converged() for e in estimators.values()
            ):
                converged = True
                break
            if trials >= max_samples:
                converged = False
                break
    else:
        with ThreadPoolExecutor(max_workers=parallel) as pool:
            converged = False
            while True:
                batch = min(parallel, max_samples - trials)
                streams = spawn(generator, batch)
                results: List[Mapping[str, float]] = list(
                    pool.map(trial_fn, streams)
                )
                for values in results:  # trial order: determinism
                    fold(values)
                trials += batch
                if trials >= min_samples and all(
                    e.converged() for e in estimators.values()
                ):
                    converged = True
                    break
                if trials >= max_samples:
                    converged = False
                    break
    if strict and not converged:
        worst = max(
            estimators.values(), key=lambda e: e.interval().relative_half_width
        )
        raise SampleBudgetExceededError(
            trials=trials,
            half_width_ratio=worst.interval().relative_half_width,
            target=target,
        )
    return TrialOutcome(
        estimates={label: e.interval() for label, e in estimators.items()},
        trials=trials,
        converged=converged,
    )
