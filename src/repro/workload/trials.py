"""Paired sequential trials.

All algorithms under comparison are evaluated on the **same** network sample
in each trial (a paired design): differences between curves then come from
the algorithms, not from sampling luck, and the paper's stopping rule is
applied to every metric — the point is done when *all* metrics' confidence
intervals are tight.

Trials can run concurrently through a pluggable execution backend
(``serial`` / ``thread`` / ``process``, see :mod:`repro.exec.backends`):
each trial draws from its own child generator spawned deterministically from
the root stream, results fold in trial order, and the stopping rule is
checked after every folded trial — so the outcome is bit-identical across
backends and worker counts, and a converged point stops submitting new
work.  Batch sizes are adaptive: the next submission wave is projected from
the current relative half-width instead of a fixed block, so convergence is
not overshot by up to a full batch.

Trials built from a :class:`~repro.exec.spec.TrialSpec` may additionally
expose a ``run_batch`` attribute on the resolved trial function — the seam
the array broadcast kernels (:mod:`repro.broadcast.kernels`) use to
evaluate a whole submission wave in one vectorised invocation instead of
one trial at a time.  The contract is bit-exactness: ``run_batch`` must
return exactly what per-trial calls would, so the stopping rule, journal
replay and backend equivalence guarantees above all carry over unchanged.

Folded outcomes can additionally be written through a crash-safe
:class:`~repro.exec.journal.PointJournal` (``journal=``): an interrupted
run replays the journaled prefix and resumes bit-identically, and the
backend can be a :class:`~repro.exec.supervise.SupervisedBackend` so worker
crashes, hangs and transient faults are retried or degraded around rather
than fatal (see docs/resilience.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

import numpy as np

from repro.errors import ConfigurationError, SampleBudgetExceededError
from repro.exec.backends import BackendLike, TrialJob, as_backend
from repro.exec.journal import PointJournal
from repro.exec.spec import TrialSpec
from repro.metrics.confidence import ConfidenceInterval, SequentialEstimator
from repro.rng import RngLike, ensure_rng, spawn_seeds

#: A trial function: draws one sample with the given generator and returns
#: one value per metric label.
TrialFn = Callable[[np.random.Generator], Mapping[str, float]]


@dataclass(frozen=True)
class TrialOutcome:
    """Converged estimates for one experiment point.

    Attributes:
        estimates: Metric label -> confidence interval.
        trials: Number of paired trials folded into the estimates (extra
            trials submitted past the stopping point are discarded, so this
            is deterministic across backends and worker counts).
        converged: Whether every metric met the stopping rule (``False`` only
            when ``strict=False`` and the budget ran out).
    """

    estimates: Mapping[str, ConfidenceInterval]
    trials: int
    converged: bool


def _next_wave(folded: int, estimators: Dict[str, SequentialEstimator],
               min_samples: int, max_samples: int, workers: int) -> int:
    """Adaptive submission-wave size.

    Before ``min_samples`` the answer is exact (those trials run
    unconditionally).  After, the wave is the projected remaining deficit
    (see :meth:`SequentialEstimator.projected_samples`), re-evaluated at
    most every ``4 * workers`` trials so a noisy early projection cannot
    commit the whole budget in one go.  Wave sizing affects only how much
    speculative work is submitted — never the estimates, which depend
    exclusively on the fold order.
    """
    if folded < min_samples:
        wave = min_samples - folded
    else:
        projected = max(
            (e.projected_samples() for e in estimators.values()),
            default=folded + 1,
        )
        wave = max(1, projected - folded)
    return min(wave, max(4 * workers, 8), max_samples - folded)


def paired_trials(
    trial_fn: Optional[TrialFn] = None,
    *,
    spec: Optional[TrialSpec] = None,
    confidence: float = 0.99,
    target: float = 0.05,
    min_samples: int = 30,
    max_samples: int = 4000,
    rng: RngLike = None,
    strict: bool = False,
    parallel: int = 1,
    backend: BackendLike = None,
    journal: Optional[PointJournal] = None,
) -> TrialOutcome:
    """Run paired trials until the stopping rule holds for every metric.

    Args:
        trial_fn: Produces one sample's metric values (an in-process
            closure; serial and thread execution only).
        spec: A picklable :class:`~repro.exec.spec.TrialSpec` alternative to
            ``trial_fn`` — required for the process backend, accepted by
            all of them.  Exactly one of ``trial_fn`` / ``spec`` must be
            given.
        confidence: CI confidence level (paper: 0.99).
        target: Relative half-width target (paper: ±5%).
        min_samples: Trials before convergence may be declared.
        max_samples: Hard budget.
        rng: Seed or generator for the trial streams.
        strict: If ``True``, raise
            :class:`~repro.errors.SampleBudgetExceededError` when the budget
            runs out; otherwise return the best-effort estimates with
            ``converged=False``.
        parallel: Worker count for the pooled backends.
        backend: ``"serial"`` / ``"thread"`` / ``"process"``, an
            :class:`~repro.exec.backends.ExecutionBackend` instance, or
            ``None`` for the backward-compatible default (legacy serial
            path when ``parallel == 1`` and ``trial_fn`` is given; thread
            pool otherwise).

            **Choosing one:** the trial pipeline is pure Python and
            GIL-bound, so the thread backend yields near-zero speedup on
            CPU-bound trials — it exists for trial functions that release
            the GIL.  For real multi-core execution use
            ``backend="process"`` with a ``spec``.  All explicit backends
            share one stream contract — trial ``i`` consumes spawned child
            stream ``i``, results fold in trial order, and the stopping
            rule is checked per folded trial — so their estimates are
            **bit-identical** across backends and worker counts.  The
            legacy ``parallel=1`` closure path instead threads one
            generator through all trials and differs from the spawned
            streams by design.
        journal: A :class:`~repro.exec.journal.PointJournal` to write
            every folded trial through (crash safety) and to replay a
            previous run's prefix from (resume).  Replayed trials come
            from the journal, live trials from the backend, and the
            trial-stream spawn counter is advanced past the replayed
            prefix — so a killed-and-resumed run folds exactly the
            sequence an uninterrupted run would have folded and the
            estimates are bit-identical.  Journaling requires the
            positional spawned streams, so a legacy closure call
            (``backend=None``, ``parallel=1``) is promoted to the
            ``serial`` backend.

    Returns:
        The :class:`TrialOutcome`.
    """
    if parallel < 1:
        raise ValueError(f"parallel must be >= 1, got {parallel}")
    if (trial_fn is None) == (spec is None):
        raise ConfigurationError(
            "exactly one of trial_fn / spec must be provided"
        )
    if journal is not None and backend is None and parallel == 1:
        # The legacy closure path threads one generator through all trials,
        # which cannot be replayed without re-running; journaling needs the
        # positional spawned streams of the backend path.
        backend = "serial"
    generator = ensure_rng(rng)
    estimators: Dict[str, SequentialEstimator] = {}

    def fold(values: Mapping[str, float]) -> None:
        for label, value in values.items():
            est = estimators.get(label)
            if est is None:
                est = estimators[label] = SequentialEstimator(
                    confidence=confidence,
                    target=target,
                    min_samples=min_samples,
                    max_samples=max_samples,
                )
            est.add(float(value))

    def all_converged(folded: int) -> bool:
        return folded >= min_samples and all(
            e.converged() for e in estimators.values()
        )

    trials = 0
    converged = False
    if trial_fn is not None and backend is None and parallel == 1:
        # Legacy serial path: one generator threaded through all trials.
        while True:
            fold(trial_fn(generator))
            trials += 1
            if all_converged(trials):
                converged = True
                break
            if trials >= max_samples:
                break
    else:
        workers = max(1, parallel)
        executor = as_backend(backend, workers)
        job = TrialJob(spec=spec) if spec is not None else TrialJob(fn=trial_fn)
        if journal is not None:
            # Resume: fold the journaled prefix (trials 0..k-1) exactly as
            # the original run folded it, then advance the spawn counter so
            # trial k onward consumes child stream k as it always would.
            for values in journal.replay_prefix():
                fold(values)
                trials += 1
                if all_converged(trials):
                    converged = True
                    break
                if trials >= max_samples:
                    break
            if trials:
                spawn_seeds(generator, trials)
        while not converged and trials < max_samples:
            wave = _next_wave(trials, estimators, min_samples, max_samples,
                              workers)
            seeds = spawn_seeds(generator, wave)
            results = executor.run_wave(job, trials, seeds)
            for values in results:  # fold in trial order: determinism
                if journal is not None:
                    journal.record(trials, values)
                fold(values)
                trials += 1
                if all_converged(trials):
                    # Later results of this wave are speculative overshoot;
                    # discarding them keeps the outcome independent of wave
                    # partitioning, and no further waves are submitted.
                    converged = True
                    break
                if trials >= max_samples:
                    break
    if strict and not converged:
        worst = max(
            estimators.values(), key=lambda e: e.interval().relative_half_width
        )
        raise SampleBudgetExceededError(
            trials=trials,
            half_width_ratio=worst.interval().relative_half_width,
            target=target,
        )
    return TrialOutcome(
        estimates={label: e.interval() for label, e in estimators.items()},
        trials=trials,
        converged=converged,
    )
