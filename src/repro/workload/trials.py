"""Paired sequential trials.

All algorithms under comparison are evaluated on the **same** network sample
in each trial (a paired design): differences between curves then come from
the algorithms, not from sampling luck, and the paper's stopping rule is
applied to every metric — the point is done when *all* metrics' confidence
intervals are tight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping

import numpy as np

from repro.errors import SampleBudgetExceededError
from repro.metrics.confidence import ConfidenceInterval, SequentialEstimator
from repro.rng import RngLike, ensure_rng

#: A trial function: draws one sample with the given generator and returns
#: one value per metric label.
TrialFn = Callable[[np.random.Generator], Mapping[str, float]]


@dataclass(frozen=True)
class TrialOutcome:
    """Converged estimates for one experiment point.

    Attributes:
        estimates: Metric label -> confidence interval.
        trials: Number of paired trials executed.
        converged: Whether every metric met the stopping rule (``False`` only
            when ``strict=False`` and the budget ran out).
    """

    estimates: Mapping[str, ConfidenceInterval]
    trials: int
    converged: bool


def paired_trials(
    trial_fn: TrialFn,
    *,
    confidence: float = 0.99,
    target: float = 0.05,
    min_samples: int = 30,
    max_samples: int = 4000,
    rng: RngLike = None,
    strict: bool = False,
) -> TrialOutcome:
    """Run paired trials until the stopping rule holds for every metric.

    Args:
        trial_fn: Produces one sample's metric values.
        confidence: CI confidence level (paper: 0.99).
        target: Relative half-width target (paper: ±5%).
        min_samples: Trials before convergence may be declared.
        max_samples: Hard budget.
        rng: Seed or generator for the trial streams.
        strict: If ``True``, raise
            :class:`~repro.errors.SampleBudgetExceededError` when the budget
            runs out; otherwise return the best-effort estimates with
            ``converged=False``.

    Returns:
        The :class:`TrialOutcome`.
    """
    generator = ensure_rng(rng)
    estimators: Dict[str, SequentialEstimator] = {}
    trials = 0
    while True:
        values = trial_fn(generator)
        trials += 1
        for label, value in values.items():
            est = estimators.get(label)
            if est is None:
                est = estimators[label] = SequentialEstimator(
                    confidence=confidence,
                    target=target,
                    min_samples=min_samples,
                    max_samples=max_samples,
                )
            est.add(float(value))
        if trials >= min_samples and all(e.converged() for e in estimators.values()):
            converged = True
            break
        if trials >= max_samples:
            converged = False
            break
    if strict and not converged:
        worst = max(
            estimators.values(), key=lambda e: e.interval().relative_half_width
        )
        raise SampleBudgetExceededError(
            trials=trials,
            half_width_ratio=worst.interval().relative_half_width,
            target=target,
        )
    return TrialOutcome(
        estimates={label: e.interval() for label, e in estimators.items()},
        trials=trials,
        converged=converged,
    )
