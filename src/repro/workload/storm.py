"""The broadcast-storm experiment: collisions kill flooding, backbones cope.

Section 1 of the paper: "When the size of the network increases and the
network becomes dense, even a simple broadcast operation may trigger a huge
transmission collision and contention that may lead to the collapse of the
whole network.  This is referred to as the broadcast storm problem."

The figure benches take the paper's route of assuming a perfect MAC; this
experiment *removes* that assumption.  On a
:class:`~repro.sim.medium.CollisionMedium` (same-slot arrivals at a host
destroy each other) with a small random relay back-off, blind flooding's
relay avalanche collides massively in dense networks while the backbones'
thin forward sets mostly get through — the paper's motivation, measured.

This experiment stays on the event engine at every network size: the
vectorised delivery kernels (:mod:`repro.broadcast.kernels`) model the
figure benches' perfect-MAC assumption, and collision/contention dynamics
are exactly the part of the physical layer they do not reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.backbone.static_backbone import build_static_backbone
from repro.exec.scenarios import connected_scenario
from repro.protocols.broadcast import DistributedSDBroadcast, DistributedSIBroadcast
from repro.protocols.clustering import DistributedLowestIdClustering
from repro.protocols.coverage import CoverageExchangeProtocol
from repro.protocols.hello import HelloProtocol
from repro.rng import RngLike, derive_seed, ensure_rng
from repro.sim.medium import CollisionMedium
from repro.sim.network import SimNetwork
from repro.types import CoveragePolicy


@dataclass(frozen=True)
class StormPoint:
    """Mean outcomes at one average degree on the collision MAC.

    Attributes:
        average_degree: Density of the sampled networks.
        delivery: Protocol -> mean delivery ratio.
        collisions: Protocol -> mean collision count per broadcast.
    """

    average_degree: float
    delivery: Dict[str, float]
    collisions: Dict[str, float]


def _collision_network(graph) -> tuple:
    """A collision-MAC SimNetwork with structures built collision-free.

    The construction phases run with collisions disabled (the paper's
    perfect-MAC assumption applies to the control plane); the collision
    model is switched on, with a zeroed counter, for the data broadcast
    under study.
    """
    net = SimNetwork(graph, collisions=True)
    assert isinstance(net.medium, CollisionMedium)
    net.medium.enabled = False  # perfect MAC for the control plane
    hello = HelloProtocol(net)
    hello.start()
    net.run_phase()
    clustering = DistributedLowestIdClustering(net)
    clustering.start()
    net.run_phase()
    coverage = CoverageExchangeProtocol(net, CoveragePolicy.TWO_FIVE_HOP)
    coverage.start()
    net.run_phase()
    net.medium.enabled = True
    net.medium.collisions = 0
    return net, coverage


def run_storm_experiment(
    *,
    degrees: Sequence[float] = (6.0, 12.0, 18.0, 24.0),
    n: int = 60,
    trials: int = 15,
    jitter_slots: int = 4,
    rng: RngLike = None,
) -> List[StormPoint]:
    """Sweep density on a collision MAC and measure protocol survival.

    Args:
        degrees: Average degrees to sweep (the storm grows with density).
        n: Network size.
        trials: Paired trials per degree.
        jitter_slots: Relay back-off window in slots, shared by all
            protocols (0 would synchronise every relay and kill them all).
        rng: Seed or generator.

    Returns:
        One :class:`StormPoint` per degree.
    """
    generator = ensure_rng(rng)
    # Samples come from the scenario cache (drawn once per (d, trial) and
    # shared with any other experiment using the same derived root).
    scenario_root = derive_seed(generator)
    points: List[StormPoint] = []
    for d in degrees:
        delivery: Dict[str, List[float]] = {}
        collisions: Dict[str, List[float]] = {}

        def record(label: str, net: SimNetwork, result) -> None:
            assert isinstance(net.medium, CollisionMedium)
            delivery.setdefault(label, []).append(
                len(result.received) / n
            )
            collisions.setdefault(label, []).append(
                float(net.medium.collisions)
            )
            net.medium.collisions = 0

        for t in range(trials):
            scenario = connected_scenario(n, d, root=scenario_root, index=t)
            sample = scenario.network
            source = int(generator.choice(sample.graph.nodes()))
            static = build_static_backbone(scenario.clustering)
            # Flooding.
            net, coverage = _collision_network(sample.graph)
            flood = DistributedSIBroadcast(
                net, sample.graph.nodes(),
                jitter_slots=jitter_slots,
                rng=int(generator.integers(2**32)),
            )
            flood.start(source)
            net.run_phase()
            record("flooding", net, flood.result())
            # Static backbone on a fresh collision medium.
            net, coverage = _collision_network(sample.graph)
            si = DistributedSIBroadcast(
                net, static.nodes, jitter_slots=jitter_slots,
                rng=int(generator.integers(2**32)),
            )
            si.start(source)
            net.run_phase()
            record("static", net, si.result())
            # Dynamic backbone.
            net, coverage = _collision_network(sample.graph)
            sd = DistributedSDBroadcast(
                net, coverage, jitter_slots=jitter_slots,
                rng=int(generator.integers(2**32)),
            )
            sd.start(source)
            net.run_phase()
            record("dynamic", net, sd.result())
        points.append(
            StormPoint(
                average_degree=d,
                delivery={k: float(np.mean(v)) for k, v in delivery.items()},
                collisions={
                    k: float(np.mean(v)) for k, v in collisions.items()
                },
            )
        )
    return points
