"""Figure drivers: regenerate the series behind the paper's Figures 6-8.

Each driver returns one :class:`~repro.metrics.series.SeriesTable` per fixed
average degree (the paper's (a)/(b) sub-figures).  All algorithms in a
figure share each trial's network sample and broadcast source (paired
design, see :mod:`repro.workload.trials`).

Series labels are stable strings the tests and EXPERIMENTS.md key on:

* Figure 6 — ``static[2.5-hop]``, ``static[3-hop]``, ``mo-cds``;
* Figure 7 — ``dynamic[2.5-hop]``, ``dynamic[3-hop]``, ``mo-cds``;
* Figure 8 — the static and dynamic labels together.

Network samples come from the cross-experiment scenario cache
(:mod:`repro.exec.scenarios`), keyed by ``(env.seed, d, n, trial index)``
alone — so every figure driver sees the *same* connected sample (and shares
its memoized clustering) at the same environment point, and only the
figure's own randomness (the broadcast source) comes from its trial stream.
Trials are described by picklable :class:`~repro.exec.spec.TrialSpec`\\ s, so
any driver runs on the ``process`` backend unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

import numpy as np

from repro.backbone.mo_cds import build_mo_cds
from repro.backbone.static_backbone import build_static_backbone
from repro.broadcast import kernels
from repro.broadcast.flooding import blind_flooding
from repro.broadcast.sd_cds import broadcast_sd
from repro.broadcast.si_cds import broadcast_si
from repro.cluster.state import ClusterStructure
from repro.errors import ConfigurationError
from repro.exec.backends import BackendLike
from repro.exec.journal import RunJournal
from repro.exec.scenarios import connected_scenario
from repro.exec.spec import IndexedTrialFn, TrialSpec
from repro.graph.network import Network
from repro.metrics.series import ExperimentSeries, SeriesTable
from repro.rng import spawn
from repro.types import CoveragePolicy, NodeId, PruningLevel
from repro.workload.config import PaperEnvironment
from repro.workload.trials import paired_trials

#: Stable series labels.
STATIC_25 = "static[2.5-hop]"
STATIC_3 = "static[3-hop]"
DYNAMIC_25 = "dynamic[2.5-hop]"
DYNAMIC_3 = "dynamic[3-hop]"
MO_CDS = "mo-cds"
FLOODING = "flooding"

#: One trial's measurement given the sampled network, clustering and source.
SampleMetricsFn = Callable[
    [Network, ClusterStructure, NodeId], Mapping[str, float]
]


#: Registry of figure metric functions, addressable by name so a
#: :class:`TrialSpec` can reference them across process boundaries.
_METRICS: Dict[str, SampleMetricsFn] = {}

#: Batched counterparts: ``name -> fn(scenarios, sources) -> [metrics...]``.
#: A batched implementation MUST return exactly what the per-trial metric
#: function returns for each (scenario, source) — the figure estimates are
#: exact integer counts, so "equal" means bit-identical.
_BATCH_METRICS: Dict[str, Callable] = {}


def _register_metrics(name: str, fn: SampleMetricsFn) -> SampleMetricsFn:
    _METRICS[name] = fn
    return fn


def make_figure_trial(
    *,
    metrics: str,
    n: int,
    degree: float,
    width: float,
    height: float,
    scenario_root: int,
) -> IndexedTrialFn:
    """Trial-spec factory for the figure drivers (resolved worker-side).

    The trial's network (and clustering) come from the scenario cache keyed
    by ``(scenario_root, n, degree, area, index)`` — shared across figures;
    the broadcast source is the only draw from the trial's own stream.
    """
    metrics_fn = _METRICS.get(metrics)
    if metrics_fn is None:
        raise ConfigurationError(
            f"unknown figure metrics {metrics!r}; expected one of "
            f"{sorted(_METRICS)}"
        )
    from repro.geometry.area import Area

    area = Area(width, height)

    def trial(index: int, gen: np.random.Generator) -> Mapping[str, float]:
        scenario = connected_scenario(
            n, degree, area=area, root=scenario_root, index=index
        )
        net = scenario.network
        source = int(gen.choice(net.graph.nodes()))
        return metrics_fn(net, scenario.clustering, source)

    batch_fn = _BATCH_METRICS.get(metrics)
    if batch_fn is not None and n >= kernels.KERNEL_CUTOVER:
        # Above the cutover the whole wave runs through the array kernels
        # (one stacked broadcast per algorithm instead of one event loop
        # per trial).  Per-item source draws consume each trial's stream
        # exactly as the scalar path does, and the kernels are bit-exact,
        # so which route ran is unobservable in the results.
        def run_batch(items):
            scenarios = [
                connected_scenario(
                    n, degree, area=area, root=scenario_root, index=index
                )
                for index, _ in items
            ]
            sources = [
                int(gen.choice(scenario.network.graph.nodes()))
                for (_, gen), scenario in zip(items, scenarios)
            ]
            return batch_fn(scenarios, sources)

        trial.run_batch = run_batch

    return trial


def _run_figure(
    env: PaperEnvironment,
    title_fmt: str,
    metrics_name: str,
    figure_seed_offset: int,
    *,
    backend: BackendLike = None,
    parallel: int = 1,
    journal: Optional[RunJournal] = None,
) -> Dict[float, SeriesTable]:
    """Shared sweep driver: for each (d, n) run paired trials to convergence."""
    tables: Dict[float, SeriesTable] = {}
    # Derive one independent stream per (figure, degree, n) point so any
    # point is reproducible in isolation.  Network samples do NOT come from
    # these streams — they are keyed by (env.seed, d, n, trial index) in the
    # scenario cache, figure-independent — only the per-trial source draw
    # does.
    point_streams = spawn(
        env.seed + figure_seed_offset, len(env.degrees) * len(env.ns)
    )
    stream_iter = iter(point_streams)
    for d in env.degrees:
        table = SeriesTable(title=title_fmt.format(d=d), x_label="n")
        series: Dict[str, ExperimentSeries] = {}
        for n in env.ns:
            stream = next(stream_iter)
            spec = TrialSpec.create(
                "repro.workload.experiments:make_figure_trial",
                metrics=metrics_name,
                n=int(n),
                degree=float(d),
                width=float(env.area.width),
                height=float(env.area.height),
                scenario_root=int(env.seed),
            )
            point = (journal.point(f"{metrics_name}:d={d:g}:n={n}")
                     if journal is not None else None)
            outcome = paired_trials(
                spec=spec,
                confidence=env.confidence,
                target=env.target,
                min_samples=env.min_samples,
                max_samples=env.max_samples,
                rng=stream,
                backend=backend,
                parallel=parallel,
                journal=point,
            )
            for label, ci in outcome.estimates.items():
                if label not in series:
                    series[label] = ExperimentSeries(label=label)
                    table.add_series(series[label])
                series[label].add(float(n), ci)
        tables[d] = table
    return tables


def _fig6_metrics(net: Network, clustering: ClusterStructure,
                  source: NodeId) -> Mapping[str, float]:
    """Average CDS sizes (source unused: the CDSs are source-independent)."""
    del source
    return {
        STATIC_25: float(
            build_static_backbone(clustering, CoveragePolicy.TWO_FIVE_HOP).size
        ),
        STATIC_3: float(
            build_static_backbone(clustering, CoveragePolicy.THREE_HOP).size
        ),
        MO_CDS: float(build_mo_cds(clustering).size),
    }


_register_metrics("fig6", _fig6_metrics)


def run_fig6(
    env: PaperEnvironment = PaperEnvironment(),
    *,
    backend: BackendLike = None,
    parallel: int = 1,
    journal: Optional[RunJournal] = None,
) -> Dict[float, SeriesTable]:
    """Figure 6: average size of the CDS — static backbone vs MO_CDS.

    Returns:
        Mapping average degree -> series table (sub-figures (a) and (b)).
    """
    return _run_figure(
        env, "Figure 6 (d={d:g}): average CDS size", "fig6", 600,
        backend=backend, parallel=parallel, journal=journal,
    )


def _fig7_metrics(net: Network, clustering: ClusterStructure,
                  source: NodeId) -> Mapping[str, float]:
    """Forward-node-set sizes: dynamic backbone vs broadcasting on MO_CDS."""
    dyn25 = broadcast_sd(
        clustering, source, policy=CoveragePolicy.TWO_FIVE_HOP,
        pruning=PruningLevel.FULL,
    )
    dyn3 = broadcast_sd(
        clustering, source, policy=CoveragePolicy.THREE_HOP,
        pruning=PruningLevel.FULL,
    )
    mo = build_mo_cds(clustering)
    mo_bc = broadcast_si(net.graph, mo, source)
    return {
        DYNAMIC_25: float(dyn25.result.num_forward_nodes),
        DYNAMIC_3: float(dyn3.result.num_forward_nodes),
        MO_CDS: float(mo_bc.num_forward_nodes),
    }


_register_metrics("fig7", _fig7_metrics)


def run_fig7(
    env: PaperEnvironment = PaperEnvironment(),
    *,
    backend: BackendLike = None,
    parallel: int = 1,
    journal: Optional[RunJournal] = None,
) -> Dict[float, SeriesTable]:
    """Figure 7: average forward-node-set size — dynamic backbone vs MO_CDS."""
    return _run_figure(
        env, "Figure 7 (d={d:g}): average forward-node-set size", "fig7", 700,
        backend=backend, parallel=parallel, journal=journal,
    )


def _fig8_metrics(net: Network, clustering: ClusterStructure,
                  source: NodeId) -> Mapping[str, float]:
    """Forward-node-set sizes: static vs dynamic backbones, both policies."""
    static25 = build_static_backbone(clustering, CoveragePolicy.TWO_FIVE_HOP)
    static3 = build_static_backbone(clustering, CoveragePolicy.THREE_HOP)
    dyn25 = broadcast_sd(
        clustering, source, policy=CoveragePolicy.TWO_FIVE_HOP,
        pruning=PruningLevel.FULL,
    )
    dyn3 = broadcast_sd(
        clustering, source, policy=CoveragePolicy.THREE_HOP,
        pruning=PruningLevel.FULL,
    )
    return {
        STATIC_25: float(broadcast_si(net.graph, static25, source).num_forward_nodes),
        STATIC_3: float(broadcast_si(net.graph, static3, source).num_forward_nodes),
        DYNAMIC_25: float(dyn25.result.num_forward_nodes),
        DYNAMIC_3: float(dyn3.result.num_forward_nodes),
    }


_register_metrics("fig8", _fig8_metrics)


def run_fig8(
    env: PaperEnvironment = PaperEnvironment(),
    *,
    backend: BackendLike = None,
    parallel: int = 1,
    journal: Optional[RunJournal] = None,
) -> Dict[float, SeriesTable]:
    """Figure 8: forward-node-set size — static vs dynamic backbones."""
    return _run_figure(
        env, "Figure 8 (d={d:g}): static vs dynamic forward-node-set size",
        "fig8", 800, backend=backend, parallel=parallel, journal=journal,
    )


def _flooding_metrics(net: Network, clustering: ClusterStructure,
                      source: NodeId) -> Mapping[str, float]:
    """Extension: blind flooding vs the paper's schemes (broadcast storm)."""
    dyn25 = broadcast_sd(
        clustering, source, policy=CoveragePolicy.TWO_FIVE_HOP,
        pruning=PruningLevel.FULL,
    )
    static25 = build_static_backbone(clustering, CoveragePolicy.TWO_FIVE_HOP)
    return {
        FLOODING: float(blind_flooding(net.graph, source).num_forward_nodes),
        STATIC_25: float(broadcast_si(net.graph, static25, source).num_forward_nodes),
        DYNAMIC_25: float(dyn25.result.num_forward_nodes),
    }


_register_metrics("flooding", _flooding_metrics)


def run_flooding_comparison(
    env: PaperEnvironment = PaperEnvironment(),
    *,
    backend: BackendLike = None,
    parallel: int = 1,
    journal: Optional[RunJournal] = None,
) -> Dict[float, SeriesTable]:
    """Ablation: how much redundancy the backbones remove vs blind flooding."""
    return _run_figure(
        env, "Ablation (d={d:g}): flooding vs backbones", "flooding", 900,
        backend=backend, parallel=parallel, journal=journal,
    )

# ---------------------------------------------------------------------------
# Batched figure metrics (array kernels)
# ---------------------------------------------------------------------------
#
# Above ``kernels.KERNEL_CUTOVER`` nodes, :func:`make_figure_trial` exposes a
# ``run_batch`` seam (see repro.exec.backends.TrialJob.batch_fn): the wave's
# scenarios stack into one block-diagonal CSR and each figure algorithm runs
# as a single stacked broadcast.  The figure metrics are exact integer counts
# and the kernels are bit-equivalent to the reference implementations, so
# estimates are identical either way — pinned by tests/test_broadcast_kernels.


def _stack_for(assets, sources):
    stack = kernels.stack_trials(
        [a.csr for a in assets], [a.head_row for a in assets]
    )
    src_rows = np.asarray(
        [
            a.source_row(source) + stack.offsets[b]
            for b, (a, source) in enumerate(zip(assets, sources))
        ],
        dtype=np.int64,
    )
    return stack, src_rows


def _stacked_si_counts(stack, src_rows, assets, rows_of) -> np.ndarray:
    mask = kernels.stack_mask(stack, [rows_of(a) for a in assets])
    _, forwarded = kernels.si_rows(stack.csr, mask, src_rows)
    return stack.per_trial_counts(forwarded)


def _stacked_sd_counts(stack, src_rows, assets, policy) -> np.ndarray:
    cov = kernels.stack_coverage(stack, [a.coverage(policy) for a in assets])
    run = kernels.sd_rows(
        stack.csr, stack.head_row, cov, src_rows,
        pruning=PruningLevel.FULL, collect=False,
    )
    return stack.per_trial_counts(run.forwarded)


def _as_rows(values: Mapping[str, np.ndarray], count: int):
    return [
        {label: float(series[b]) for label, series in values.items()}
        for b in range(count)
    ]


def _fig6_batch(scenarios, sources):
    del sources  # the CDSs are source-independent
    out = []
    for scenario in scenarios:
        assets = kernels.scenario_assets(scenario)
        out.append({
            STATIC_25: float(
                assets.static_rows(CoveragePolicy.TWO_FIVE_HOP).shape[0]
            ),
            STATIC_3: float(
                assets.static_rows(CoveragePolicy.THREE_HOP).shape[0]
            ),
            MO_CDS: float(assets.mo_rows().shape[0]),
        })
    return out


_BATCH_METRICS["fig6"] = _fig6_batch


def _fig7_batch(scenarios, sources):
    assets = [kernels.scenario_assets(s) for s in scenarios]
    stack, src_rows = _stack_for(assets, sources)
    values = {
        DYNAMIC_25: _stacked_sd_counts(
            stack, src_rows, assets, CoveragePolicy.TWO_FIVE_HOP
        ),
        DYNAMIC_3: _stacked_sd_counts(
            stack, src_rows, assets, CoveragePolicy.THREE_HOP
        ),
        MO_CDS: _stacked_si_counts(
            stack, src_rows, assets, lambda a: a.mo_rows()
        ),
    }
    return _as_rows(values, len(scenarios))


_BATCH_METRICS["fig7"] = _fig7_batch


def _fig8_batch(scenarios, sources):
    assets = [kernels.scenario_assets(s) for s in scenarios]
    stack, src_rows = _stack_for(assets, sources)
    values = {
        STATIC_25: _stacked_si_counts(
            stack, src_rows, assets,
            lambda a: a.static_rows(CoveragePolicy.TWO_FIVE_HOP),
        ),
        STATIC_3: _stacked_si_counts(
            stack, src_rows, assets,
            lambda a: a.static_rows(CoveragePolicy.THREE_HOP),
        ),
        DYNAMIC_25: _stacked_sd_counts(
            stack, src_rows, assets, CoveragePolicy.TWO_FIVE_HOP
        ),
        DYNAMIC_3: _stacked_sd_counts(
            stack, src_rows, assets, CoveragePolicy.THREE_HOP
        ),
    }
    return _as_rows(values, len(scenarios))


_BATCH_METRICS["fig8"] = _fig8_batch


def _flooding_batch(scenarios, sources):
    assets = [kernels.scenario_assets(s) for s in scenarios]
    stack, src_rows = _stack_for(assets, sources)
    _, flooded = kernels.flooding_rows(stack.csr, src_rows)
    values = {
        FLOODING: stack.per_trial_counts(flooded),
        STATIC_25: _stacked_si_counts(
            stack, src_rows, assets,
            lambda a: a.static_rows(CoveragePolicy.TWO_FIVE_HOP),
        ),
        DYNAMIC_25: _stacked_sd_counts(
            stack, src_rows, assets, CoveragePolicy.TWO_FIVE_HOP
        ),
    }
    return _as_rows(values, len(scenarios))


_BATCH_METRICS["flooding"] = _flooding_batch
