"""Fault sweeps: delivery / overhead / recovery latency under faults.

The robustness sweep (:mod:`repro.workload.robustness`) varies only the
i.i.d. loss knob; this driver layers a seed-deterministic
:class:`~repro.faults.schedule.FaultSchedule` (crashes, link cuts) on top
and compares the plain backbone broadcasts against their reliable
(ACK/retransmit + backbone-fallback) variants from
:mod:`repro.faults.reliable`.

Every trial is paired: all five protocols run over the same sampled
network, the same fault schedule, and the same channel-loss stream, so the
curves differ only by protocol.  Per-trial randomness comes exclusively
from the generator handed to the trial function, which makes the sweep
bit-deterministic — same seed, same results — and, for ``parallel >= 2``,
independent of the worker count (trial ``i`` always consumes spawned child
stream ``i``; see :func:`repro.workload.trials.paired_trials`).
``parallel=1`` is the serial reference stream and differs from the spawned
streams by design.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

import numpy as np

from repro.backbone.static_backbone import build_static_backbone
from repro.broadcast.sd_cds import broadcast_sd
from repro.cluster.lowest_id import lowest_id_clustering
from repro.faults.injector import FaultInjector
from repro.faults.reliable import reliable_sd, reliable_si
from repro.faults.schedule import FaultSchedule, apply_schedule, random_schedule
from repro.graph.adjacency import Graph
from repro.graph.generators import random_geometric_network
from repro.protocols.broadcast import DistributedSIBroadcast
from repro.rng import RngLike, derive_seed, ensure_rng
from repro.sim.network import SimNetwork
from repro.types import NodeId
from repro.workload.trials import paired_trials

#: Protocol labels in reporting order.
PROTOCOLS = ("flooding", "si", "sd", "reliable-si", "reliable-sd")


@dataclass(frozen=True)
class FaultSweepPoint:
    """Mean per-protocol outcomes at one channel-loss probability.

    Attributes:
        loss_probability: The per-delivery loss of this point (faults from
            the schedule apply at every point).
        delivery: Protocol -> mean delivery ratio over *eligible* nodes
            (nodes reachable from the source once the schedule's final
            crash set is removed — nobody can deliver to a node with no
            surviving path).
        overhead: Protocol -> mean transmissions per node, ACKs included
            for the reliable variants (the price of the guarantee).
        latency: Protocol -> mean completion time (last first-reception
            among eligible nodes; retransmissions push this up, which is
            the recovery-latency axis).
        trials: Paired trials behind the means.
    """

    loss_probability: float
    delivery: Dict[str, float]
    overhead: Dict[str, float]
    latency: Dict[str, float]
    trials: int


def eligible_nodes(graph: Graph, source: NodeId,
                   crashed: Set[NodeId]) -> Set[NodeId]:
    """Nodes a broadcast from ``source`` can possibly still reach.

    BFS over ``graph`` minus ``crashed``: permanently-down nodes are out,
    and so is anything they cut off (no protocol can cross a dead cut
    vertex, so counting such nodes would measure topology, not protocol).
    """
    if source in crashed:
        return set()
    seen = {source}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for w in graph.neighbours_view(v):
            if w not in crashed and w not in seen:
                seen.add(w)
                queue.append(w)
    return seen


def run_fault_sweep(
    *,
    losses: Sequence[float] = (0.0, 0.1, 0.2, 0.3),
    n: int = 40,
    average_degree: float = 8.0,
    trials: int = 8,
    crash_fraction: float = 0.1,
    horizon: float = 10.0,
    max_retries: int = 5,
    parallel: int = 1,
    rng: RngLike = None,
) -> List[FaultSweepPoint]:
    """Sweep channel loss under a per-trial random fault schedule.

    Args:
        losses: Per-delivery drop probabilities to test.
        n: Network size.
        average_degree: Density of the sampled networks.
        trials: Paired trials per point (fixed count — the sequential
            stopping rule is deliberately bypassed so the sweep is
            bit-deterministic across ``parallel`` worker counts).
        crash_fraction: Fraction of nodes crashed by each trial's schedule
            (the source is protected; 0 disables crash faults).
        horizon: Crash times fall uniformly in ``[0, horizon)``.
        max_retries: Retry budget of the reliable variants.
        parallel: Worker count handed to
            :func:`~repro.workload.trials.paired_trials`.
        rng: Seed or generator.

    Returns:
        One :class:`FaultSweepPoint` per loss probability.
    """
    generator = ensure_rng(rng)
    points: List[FaultSweepPoint] = []
    for loss in losses:
        point_rng = ensure_rng(derive_seed(generator))

        def trial(trial_rng: np.random.Generator,
                  loss: float = loss) -> Dict[str, float]:
            return _fault_trial(
                trial_rng,
                loss=loss,
                n=n,
                average_degree=average_degree,
                crash_fraction=crash_fraction,
                horizon=horizon,
                max_retries=max_retries,
            )

        outcome = paired_trials(
            trial,
            min_samples=trials,
            max_samples=trials,
            rng=point_rng,
            parallel=parallel,
        )
        delivery: Dict[str, float] = {}
        overhead: Dict[str, float] = {}
        latency: Dict[str, float] = {}
        for label, interval in outcome.estimates.items():
            axis, _, protocol = label.partition("/")
            {"delivery": delivery, "overhead": overhead,
             "latency": latency}[axis][protocol] = interval.mean
        points.append(FaultSweepPoint(
            loss_probability=loss,
            delivery=delivery,
            overhead=overhead,
            latency=latency,
            trials=outcome.trials,
        ))
    return points


def _fault_trial(
    rng: np.random.Generator,
    *,
    loss: float,
    n: int,
    average_degree: float,
    crash_fraction: float,
    horizon: float,
    max_retries: int,
) -> Dict[str, float]:
    """One paired trial: all protocols over one (network, schedule, seeds).

    All randomness is drawn from ``rng`` up front, in a fixed order, so the
    trial is a pure function of its generator state.
    """
    network = random_geometric_network(n, average_degree, rng=rng)
    graph = network.graph
    source = int(rng.choice(graph.nodes()))
    schedule = random_schedule(
        graph,
        horizon=horizon,
        crash_fraction=crash_fraction,
        protect=(source,),
        rng=rng,
    )
    return run_fault_scenario(
        graph, source, schedule,
        loss=loss, rng=rng, max_retries=max_retries,
    )


def run_fault_scenario(
    graph: Graph,
    source: NodeId,
    schedule: FaultSchedule,
    *,
    loss: float = 0.0,
    rng: RngLike = None,
    max_retries: int = 5,
) -> Dict[str, float]:
    """Run every protocol once over one fixed ``(graph, schedule)`` pair.

    The paired building block of :func:`run_fault_sweep`, exposed for the
    ``repro faults --schedule`` CLI path: hand it a concrete
    :class:`~repro.faults.schedule.FaultSchedule` (e.g. loaded from JSON)
    and get the per-protocol metrics for exactly that scenario.

    Returns:
        ``{"delivery/<protocol>": ..., "overhead/<protocol>": ...,
        "latency/<protocol>": ...}`` for every protocol in
        :data:`PROTOCOLS`.
    """
    rng = ensure_rng(rng)
    n = graph.num_nodes
    loss_seed = derive_seed(rng)  # same channel stream for every protocol
    fault_seed = derive_seed(rng)  # ... and the same window-draw stream
    structure = lowest_id_clustering(graph)
    static = build_static_backbone(structure)
    sd_plan = broadcast_sd(structure, source).result.forward_nodes
    eligible = eligible_nodes(graph, source, set(schedule.crashed_nodes()))
    denominator = max(1, len(eligible))

    metrics: Dict[str, float] = {}

    def faulted_network() -> tuple:
        net = SimNetwork(graph, loss_probability=loss, rng=loss_seed)
        injector = FaultInjector(net, rng=fault_seed)
        apply_schedule(schedule, injector)
        return net, injector

    def record(label: str, received, reception_time,
               transmissions: int) -> None:
        delivered = eligible & set(received)
        metrics[f"delivery/{label}"] = len(delivered) / denominator
        metrics[f"overhead/{label}"] = transmissions / n
        metrics[f"latency/{label}"] = float(
            max((reception_time[v] for v in delivered), default=0)
        )

    for label, relays in (("flooding", graph.nodes()),
                          ("si", static.nodes),
                          ("sd", sd_plan)):
        net, _ = faulted_network()
        protocol = DistributedSIBroadcast(net, relays)
        protocol.start(source)
        net.run_phase()
        result = protocol.result()
        record(label, result.received, result.reception_time,
               result.transmissions)

    net, injector = faulted_network()
    rel = reliable_si(network=net, structure=structure,
                      injector=injector, max_retries=max_retries)
    rel.start(source)
    net.run_phase()
    out = rel.outcome()
    record("reliable-si", out.result.received, out.result.reception_time,
           out.data_transmissions + out.ack_transmissions)

    net, injector = faulted_network()
    rel = reliable_sd(network=net, structure=structure, source=source,
                      injector=injector, max_retries=max_retries)
    rel.start(source)
    net.run_phase()
    out = rel.outcome()
    record("reliable-sd", out.result.received, out.result.reception_time,
           out.data_transmissions + out.ack_transmissions)

    return metrics


__all__ = [
    "PROTOCOLS",
    "FaultSweepPoint",
    "eligible_nodes",
    "run_fault_scenario",
    "run_fault_sweep",
]
