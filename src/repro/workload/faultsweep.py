"""Fault sweeps: delivery / overhead / recovery latency under faults.

The robustness sweep (:mod:`repro.workload.robustness`) varies only the
i.i.d. loss knob; this driver layers a seed-deterministic
:class:`~repro.faults.schedule.FaultSchedule` (crashes, link cuts) on top
and compares the plain backbone broadcasts against their reliable
(ACK/retransmit + backbone-fallback) variants from
:mod:`repro.faults.reliable`.

Every trial is paired twice over: all five protocols run over the same
sampled network, the same fault schedule, and the same channel-loss stream
(so the curves differ only by protocol), and all *loss points* of one sweep
share the same network samples through the cross-experiment scenario cache
(:mod:`repro.exec.scenarios`) — the loss axis is measured on identical
topologies, not resampled per point.  Trials are described by a picklable
:class:`~repro.exec.spec.TrialSpec`, so the sweep runs on any execution
backend; trial ``i`` always consumes spawned child stream ``i`` and the
results are bit-identical across backends and worker counts (see
:func:`repro.workload.trials.paired_trials`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.backbone.static_backbone import build_static_backbone
from repro.broadcast.sd_cds import broadcast_sd
from repro.cluster.lowest_id import lowest_id_clustering
from repro.cluster.state import ClusterStructure
from repro.exec.backends import BackendLike
from repro.exec.journal import RunJournal
from repro.exec.scenarios import connected_scenario
from repro.exec.spec import IndexedTrialFn, TrialSpec
from repro.faults.injector import FaultInjector
from repro.faults.reliable import reliable_sd, reliable_si
from repro.faults.schedule import FaultSchedule, apply_schedule, random_schedule
from repro.graph.adjacency import Graph
from repro.protocols.broadcast import DistributedSIBroadcast
from repro.rng import RngLike, derive_seed, ensure_rng
from repro.sim.network import SimNetwork
from repro.types import NodeId
from repro.workload.trials import paired_trials

#: Protocol labels in reporting order.
PROTOCOLS = ("flooding", "si", "sd", "reliable-si", "reliable-sd")


@dataclass(frozen=True)
class FaultSweepPoint:
    """Mean per-protocol outcomes at one channel-loss probability.

    Attributes:
        loss_probability: The per-delivery loss of this point (faults from
            the schedule apply at every point).
        delivery: Protocol -> mean delivery ratio over *eligible* nodes
            (nodes reachable from the source once the schedule's final
            crash set is removed — nobody can deliver to a node with no
            surviving path).
        overhead: Protocol -> mean transmissions per node, ACKs included
            for the reliable variants (the price of the guarantee).
        latency: Protocol -> mean completion time (last first-reception
            among eligible nodes; retransmissions push this up, which is
            the recovery-latency axis).
        trials: Paired trials behind the means.
    """

    loss_probability: float
    delivery: Dict[str, float]
    overhead: Dict[str, float]
    latency: Dict[str, float]
    trials: int


def eligible_nodes(graph: Graph, source: NodeId,
                   crashed: Set[NodeId]) -> Set[NodeId]:
    """Nodes a broadcast from ``source`` can possibly still reach.

    BFS over ``graph`` minus ``crashed``: permanently-down nodes are out,
    and so is anything they cut off (no protocol can cross a dead cut
    vertex, so counting such nodes would measure topology, not protocol).
    """
    if source in crashed:
        return set()
    seen = {source}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for w in graph.neighbours_view(v):
            if w not in crashed and w not in seen:
                seen.add(w)
                queue.append(w)
    return seen


def run_fault_sweep(
    *,
    losses: Sequence[float] = (0.0, 0.1, 0.2, 0.3),
    n: int = 40,
    average_degree: float = 8.0,
    trials: int = 8,
    crash_fraction: float = 0.1,
    horizon: float = 10.0,
    max_retries: int = 5,
    parallel: int = 1,
    backend: BackendLike = None,
    rng: RngLike = None,
    journal: Optional[RunJournal] = None,
) -> List[FaultSweepPoint]:
    """Sweep channel loss under a per-trial random fault schedule.

    Args:
        losses: Per-delivery drop probabilities to test.
        n: Network size.
        average_degree: Density of the sampled networks.
        trials: Paired trials per point (fixed count — the sequential
            stopping rule is deliberately bypassed so the sweep is
            bit-deterministic across backends and worker counts).
        crash_fraction: Fraction of nodes crashed by each trial's schedule
            (the source is protected; 0 disables crash faults).
        horizon: Crash times fall uniformly in ``[0, horizon)``.
        max_retries: Retry budget of the reliable variants.
        parallel: Worker count handed to
            :func:`~repro.workload.trials.paired_trials`.
        backend: Execution backend (``"serial"`` / ``"thread"`` /
            ``"process"`` or an instance); results are identical whichever
            is chosen.
        rng: Seed or generator.
        journal: An open :class:`~repro.exec.journal.RunJournal`; each
            loss point writes its folded trials through a per-point view,
            so an interrupted sweep resumes bit-identically (completed
            points replay entirely from the journal, the interrupted
            point resumes mid-stream, later points run live).

    Returns:
        One :class:`FaultSweepPoint` per loss probability.
    """
    generator = ensure_rng(rng)
    # One scenario root for the whole sweep: every loss point sees the SAME
    # connected samples (drawn once, cached), so the loss axis is paired.
    scenario_root = derive_seed(generator)
    points: List[FaultSweepPoint] = []
    for loss in losses:
        point_rng = ensure_rng(derive_seed(generator))
        spec = TrialSpec.create(
            "repro.workload.faultsweep:make_fault_trial",
            loss=float(loss),
            n=int(n),
            average_degree=float(average_degree),
            crash_fraction=float(crash_fraction),
            horizon=float(horizon),
            max_retries=int(max_retries),
            scenario_root=int(scenario_root),
        )
        point = (journal.point(f"faultsweep:loss={loss:g}")
                 if journal is not None else None)
        outcome = paired_trials(
            spec=spec,
            min_samples=trials,
            max_samples=trials,
            rng=point_rng,
            parallel=parallel,
            backend=backend,
            journal=point,
        )
        delivery: Dict[str, float] = {}
        overhead: Dict[str, float] = {}
        latency: Dict[str, float] = {}
        for label, interval in outcome.estimates.items():
            axis, _, protocol = label.partition("/")
            {"delivery": delivery, "overhead": overhead,
             "latency": latency}[axis][protocol] = interval.mean
        points.append(FaultSweepPoint(
            loss_probability=loss,
            delivery=delivery,
            overhead=overhead,
            latency=latency,
            trials=outcome.trials,
        ))
    return points


def make_fault_trial(
    *,
    loss: float,
    n: int,
    average_degree: float,
    crash_fraction: float,
    horizon: float,
    max_retries: int,
    scenario_root: int,
) -> IndexedTrialFn:
    """Trial-spec factory: all protocols over one (network, schedule, seeds).

    The trial's network (and its memoized clustering) come from the scenario
    cache keyed by ``(scenario_root, n, average_degree, index)`` — shared by
    every loss point of the sweep.  Everything else (source, schedule,
    channel and fault streams) is drawn from the trial's own generator in a
    fixed order, so the trial is a pure function of ``(index, generator)``.
    """

    def trial(index: int, gen: np.random.Generator) -> Dict[str, float]:
        scenario = connected_scenario(
            n, average_degree, root=scenario_root, index=index
        )
        graph = scenario.network.graph
        source = int(gen.choice(graph.nodes()))
        schedule = random_schedule(
            graph,
            horizon=horizon,
            crash_fraction=crash_fraction,
            protect=(source,),
            rng=gen,
        )
        return run_fault_scenario(
            graph, source, schedule,
            loss=loss, rng=gen, max_retries=max_retries,
            structure=scenario.clustering,
        )

    return trial


def run_fault_scenario(
    graph: Graph,
    source: NodeId,
    schedule: FaultSchedule,
    *,
    loss: float = 0.0,
    rng: RngLike = None,
    max_retries: int = 5,
    structure: Optional[ClusterStructure] = None,
) -> Dict[str, float]:
    """Run every protocol once over one fixed ``(graph, schedule)`` pair.

    The paired building block of :func:`run_fault_sweep`, exposed for the
    ``repro faults --schedule`` CLI path: hand it a concrete
    :class:`~repro.faults.schedule.FaultSchedule` (e.g. loaded from JSON)
    and get the per-protocol metrics for exactly that scenario.

    Args:
        structure: Pre-computed clustering of ``graph``; pass the cached
            scenario clustering to avoid recomputing it per trial.  Computed
            here when ``None``.

    Returns:
        ``{"delivery/<protocol>": ..., "overhead/<protocol>": ...,
        "latency/<protocol>": ...}`` for every protocol in
        :data:`PROTOCOLS`.
    """
    rng = ensure_rng(rng)
    n = graph.num_nodes
    loss_seed = derive_seed(rng)  # same channel stream for every protocol
    fault_seed = derive_seed(rng)  # ... and the same window-draw stream
    if structure is None:
        structure = lowest_id_clustering(graph)
    static = build_static_backbone(structure)
    sd_plan = broadcast_sd(structure, source).result.forward_nodes
    eligible = eligible_nodes(graph, source, set(schedule.crashed_nodes()))
    denominator = max(1, len(eligible))

    metrics: Dict[str, float] = {}

    def faulted_network() -> tuple:
        net = SimNetwork(graph, loss_probability=loss, rng=loss_seed)
        injector = FaultInjector(net, rng=fault_seed)
        apply_schedule(schedule, injector)
        return net, injector

    def record(label: str, received, reception_time,
               transmissions: int) -> None:
        delivered = eligible & set(received)
        metrics[f"delivery/{label}"] = len(delivered) / denominator
        metrics[f"overhead/{label}"] = transmissions / n
        metrics[f"latency/{label}"] = float(
            max((reception_time[v] for v in delivered), default=0)
        )

    for label, relays in (("flooding", graph.nodes()),
                          ("si", static.nodes),
                          ("sd", sd_plan)):
        net, _ = faulted_network()
        protocol = DistributedSIBroadcast(net, relays)
        protocol.start(source)
        net.run_phase()
        result = protocol.result()
        record(label, result.received, result.reception_time,
               result.transmissions)

    net, injector = faulted_network()
    rel = reliable_si(network=net, structure=structure,
                      injector=injector, max_retries=max_retries)
    rel.start(source)
    net.run_phase()
    out = rel.outcome()
    record("reliable-si", out.result.received, out.result.reception_time,
           out.data_transmissions + out.ack_transmissions)

    net, injector = faulted_network()
    rel = reliable_sd(network=net, structure=structure, source=source,
                      injector=injector, max_retries=max_retries)
    rel.start(source)
    net.run_phase()
    out = rel.outcome()
    record("reliable-sd", out.result.received, out.result.reception_time,
           out.data_transmissions + out.ack_transmissions)

    return metrics


__all__ = [
    "PROTOCOLS",
    "FaultSweepPoint",
    "eligible_nodes",
    "make_fault_trial",
    "run_fault_scenario",
    "run_fault_sweep",
]
