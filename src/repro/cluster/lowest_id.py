"""Centralised lowest-ID clustering (Ephremides, Wieselthier, Baker).

The distributed protocol declares a candidate a clusterhead when it has the
smallest id among its *candidate* neighbours; a candidate hearing a
clusterhead declaration from a neighbour joins the neighbouring cluster with
the smallest head id.  The unique fixpoint of that process has a simple
sequential characterisation, which this module computes:

    scanning ids in ascending order, ``v`` is a clusterhead iff no
    neighbour with a smaller id is already a clusterhead; otherwise ``v``
    joins the smallest-id neighbouring clusterhead.

(Induction: the overall smallest id is always a head; for any ``v``, each
smaller-id neighbour has already decided, and if none of them is a head then
``v`` eventually has no smaller-id candidate neighbour and declares.)
The message-driven protocol in :mod:`repro.protocols.clustering` is
property-tested to agree with this function on random graphs.
"""

from __future__ import annotations

from typing import Dict

from repro import perf
from repro.cluster.state import ClusterStructure
from repro.graph.adjacency import Graph
from repro.types import NodeId


@perf.timed("clustering")
def lowest_id_clustering(graph: Graph) -> ClusterStructure:
    """Cluster ``graph`` with the lowest-ID rule.

    Args:
        graph: Any undirected graph (need not be connected; every component
            is clustered independently, and isolated nodes become singleton
            clusterheads).

    Returns:
        The resulting :class:`~repro.cluster.state.ClusterStructure`.
    """
    head_of: Dict[NodeId, NodeId] = {}
    is_head: Dict[NodeId, bool] = {}
    for v in graph.nodes():  # ascending id order
        neighbour_heads = [w for w in graph.neighbours_view(v) if is_head.get(w, False)]
        if neighbour_heads:
            head_of[v] = min(neighbour_heads)
            is_head[v] = False
        else:
            head_of[v] = v
            is_head[v] = True
    return ClusterStructure(graph=graph, head_of=head_of)
