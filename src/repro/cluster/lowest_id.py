"""Centralised lowest-ID clustering (Ephremides, Wieselthier, Baker).

The distributed protocol declares a candidate a clusterhead when it has the
smallest id among its *candidate* neighbours; a candidate hearing a
clusterhead declaration from a neighbour joins the neighbouring cluster with
the smallest head id.  The unique fixpoint of that process has a simple
sequential characterisation, which this module computes:

    scanning ids in ascending order, ``v`` is a clusterhead iff no
    neighbour with a smaller id is already a clusterhead; otherwise ``v``
    joins the smallest-id neighbouring clusterhead.

(Induction: the overall smallest id is always a head; for any ``v``, each
smaller-id neighbour has already decided, and if none of them is a head then
``v`` eventually has no smaller-id candidate neighbour and declares.)
The message-driven protocol in :mod:`repro.protocols.clustering` is
property-tested to agree with this function on random graphs.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro import perf
from repro.cluster.state import ClusterStructure
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph, mask_unique_rows, row_reduce_min
from repro.types import NodeId

#: Frontier-relaxation rounds before falling back to the sequential scan.
#: Random geometric graphs settle in a handful of rounds; only adversarial
#: monotone-id chains approach the bound, and those finish in the scan.
_MAX_RELAXATION_ROUNDS = 64


@perf.timed("clustering")
def lowest_id_clustering(graph: Graph) -> ClusterStructure:
    """Cluster ``graph`` with the lowest-ID rule.

    Args:
        graph: Any undirected graph (need not be connected; every component
            is clustered independently, and isolated nodes become singleton
            clusterheads).

    Returns:
        The resulting :class:`~repro.cluster.state.ClusterStructure`.
    """
    head_of: Dict[NodeId, NodeId] = {}
    is_head: Dict[NodeId, bool] = {}
    for v in graph.nodes():  # ascending id order
        neighbour_heads = [w for w in graph.neighbours_view(v) if is_head.get(w, False)]
        if neighbour_heads:
            head_of[v] = min(neighbour_heads)
            is_head[v] = False
        else:
            head_of[v] = v
            is_head[v] = True
    return ClusterStructure(graph=graph, head_of=head_of)


def lowest_id_rows(csr: CSRGraph) -> np.ndarray:
    """The lowest-ID clustering of a CSR graph, as a head-row array.

    The array kernel behind :func:`lowest_id_clustering`: CSR rows ascend
    by node id, so the sequential fixpoint ("``v`` is a head iff no
    smaller-row neighbour already is") is computed by iterative frontier
    relaxation — each round declares every undecided node that is a local
    row minimum among its undecided neighbours a head (per-row minima via
    one ``np.minimum.reduceat`` pass) and demotes the heads' undecided
    neighbours to members.  Undecided nodes never have a head neighbour,
    so the local-minimum rule is exact, and the result is bit-identical to
    the set-based scan.

    Returns:
        ``head_row`` with ``head_row[r]`` the head's row for every row
        ``r`` (heads map to themselves).
    """
    n = csr.num_nodes
    # 0 undecided, 1 head, 2 member.
    state = np.zeros(n, dtype=np.int8)
    undecided = np.arange(n, dtype=np.int64)
    rounds = 0
    while undecided.size and rounds < _MAX_RELAXATION_ROUNDS:
        rounds += 1
        flat, counts = csr.gather_rows(undecided)
        vals = np.where(state[flat] == 0, flat, n)
        offsets = np.zeros(undecided.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        min_undecided_nbr = row_reduce_min(vals, offsets, empty=n)
        new_heads = undecided[undecided < min_undecided_nbr]
        state[new_heads] = 1
        nbrs, _ = csr.gather_rows(new_heads)
        members = nbrs[state[nbrs] == 0]
        state[members] = 2
        undecided = undecided[state[undecided] == 0]
    # Sequential fallback for long monotone dependency chains: process the
    # leftovers in ascending row order with the original scan rule (no
    # still-undecided node has a decided head neighbour from the rounds
    # above, so "head iff no neighbouring head" remains exact).
    for v in undecided.tolist():
        row = csr.row(v)
        state[v] = 2 if (state[row] == 1).any() else 1
    head_row = np.arange(n, dtype=np.int64)
    members = np.flatnonzero(state == 2)
    if members.size:
        flat, counts = csr.gather_rows(members)
        vals = np.where(state[flat] == 1, flat, n)
        offsets = np.zeros(members.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        head_row[members] = row_reduce_min(vals, offsets, empty=n)
    return head_row


def _constrained_fixpoint(
    csr: CSRGraph, old_is_head: np.ndarray, affected: np.ndarray
) -> np.ndarray:
    """The lowest-ID fixpoint with every row outside ``affected`` frozen.

    The restricted analogue of :func:`lowest_id_rows`: affected rows are
    reset to undecided while the complement keeps its old head flag, so
    the relaxation only ever gathers the affected rows' neighbourhoods.
    A frozen *smaller* head demotes an affected neighbour up front; frozen
    *larger* heads are irrelevant to the rule (a node only looks at
    smaller ids), which is why the fallback scan below must test
    ``row < v`` explicitly — unlike the unconstrained kernel, a leftover
    here can legitimately have a larger frozen head neighbour.
    """
    n = csr.num_nodes
    state = np.where(old_is_head, np.int8(1), np.int8(2))
    state[affected] = 0
    flat, counts = csr.gather_rows(affected)
    src = np.repeat(affected, counts)
    demote = (state[flat] == 1) & (flat < src)
    state[src[demote]] = 2
    undecided = affected[state[affected] == 0]
    rounds = 0
    while undecided.size and rounds < _MAX_RELAXATION_ROUNDS:
        rounds += 1
        flat, counts = csr.gather_rows(undecided)
        vals = np.where(state[flat] == 0, flat, n)
        offsets = np.zeros(undecided.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        min_undecided_nbr = row_reduce_min(vals, offsets, empty=n)
        new_heads = undecided[undecided < min_undecided_nbr]
        state[new_heads] = 1
        nbrs, _ = csr.gather_rows(new_heads)
        members = nbrs[state[nbrs] == 0]
        state[members] = 2
        undecided = undecided[state[undecided] == 0]
    for v in undecided.tolist():
        row = csr.row(v)
        state[v] = 2 if ((state[row] == 1) & (row < v)).any() else 1
    return state == 1


def repair_lowest_id_rows(
    csr: CSRGraph, old_head_row: np.ndarray, seeds: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Repair a lowest-ID clustering after a batch of edge changes.

    ``seeds`` are the rows incident to changed edges in ``csr`` (the *new*
    graph).  The kernel re-runs the fixpoint only over the affected ball:
    starting from the seeds, it solves the constrained fixpoint with the
    complement frozen at the old assignment, then — since a flip at ``v``
    can only change the rule's outcome at *larger* neighbours — expands
    the ball by every larger neighbour of a flipped row not yet inside
    and re-solves, until no flip escapes.  The final assignment satisfies
    the (unique) global fixpoint at every row, so it is bit-identical to
    :func:`lowest_id_rows` from scratch; only the work is local.

    Returns:
        ``(head_row, reevaluated, flipped, reassigned)`` — the repaired
        assignment plus the repair-locality row sets: rows whose rule was
        re-run, rows whose head status changed, and rows (non-head before
        and after) whose assigned head changed.
    """
    n = csr.num_nodes
    rows = np.arange(n, dtype=np.int64)
    old_is_head = old_head_row == rows
    affected = mask_unique_rows(np.asarray(seeds, dtype=np.int64), n)
    while True:
        is_head = _constrained_fixpoint(csr, old_is_head, affected)
        flipped = affected[is_head[affected] != old_is_head[affected]]
        flat, counts = csr.gather_rows(flipped)
        src = np.repeat(flipped, counts)
        larger = flat[flat > src]
        inside = np.zeros(n, dtype=bool)
        inside[affected] = True
        fresh = larger[~inside[larger]]
        if fresh.size == 0:
            break
        affected = mask_unique_rows(np.concatenate([affected, fresh]), n)
    # Head assignments can change only where the neighbourhood or a
    # neighbour's head flag did: the seeds plus the flipped rows plus the
    # flipped rows' neighbours.
    nbrs_of_flipped, _ = csr.gather_rows(flipped)
    dirty = mask_unique_rows(np.concatenate([
        np.asarray(seeds, dtype=np.int64), flipped, nbrs_of_flipped
    ]), n)
    head_row = old_head_row.copy()
    if dirty.size:
        head_row[dirty[is_head[dirty]]] = dirty[is_head[dirty]]
        members = dirty[~is_head[dirty]]
        if members.size:
            flat, counts = csr.gather_rows(members)
            vals = np.where(is_head[flat], flat, n)
            offsets = np.zeros(members.shape[0] + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            head_row[members] = row_reduce_min(vals, offsets, empty=n)
    changed = dirty[head_row[dirty] != old_head_row[dirty]]
    reassigned = changed[~old_is_head[changed] & ~is_head[changed]]
    return head_row, affected, flipped, reassigned


def lowest_id_clustering_csr(
    csr: CSRGraph, graph: Graph | None = None
) -> ClusterStructure:
    """Materialise :func:`lowest_id_rows` as a :class:`ClusterStructure`.

    Args:
        csr: The network in CSR form.
        graph: A set-based graph equal to ``csr`` to attach to the
            structure (materialised from ``csr`` when omitted).
    """
    head_row = lowest_id_rows(csr)
    ids = csr.ids
    head_of = dict(zip(ids.tolist(), ids[head_row].tolist()))
    return ClusterStructure(
        graph=graph if graph is not None else csr.to_graph(), head_of=head_of
    )
