"""Clustering: lowest-ID cluster formation and the cluster graph.

The backbone infrastructure sits on the classic two-level cluster structure:
clusterheads form an independent dominating set elected by the lowest-ID
rule; every other node is a member of exactly one adjacent clusterhead's
cluster.  The *cluster graph* abstracts the clustered network to one vertex
per cluster with a directed link ``(v, w)`` whenever ``w`` is in ``C(v)``;
its strong connectivity (Wu & Lou) underpins Theorem 1.
"""

from repro.cluster.state import Cluster, ClusterStructure
from repro.cluster.lowest_id import lowest_id_clustering
from repro.cluster.highest_degree import highest_degree_clustering
from repro.cluster.validate import validate_cluster_structure
from repro.cluster.cluster_graph import build_cluster_graph, cluster_graph_is_strongly_connected

__all__ = [
    "Cluster",
    "ClusterStructure",
    "lowest_id_clustering",
    "highest_degree_clustering",
    "validate_cluster_structure",
    "build_cluster_graph",
    "cluster_graph_is_strongly_connected",
]
