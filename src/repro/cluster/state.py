"""Cluster structure data types.

A finished clustering assigns every node either the ``CLUSTERHEAD`` role or
the ``MEMBER`` role; each member belongs to exactly one *adjacent*
clusterhead.  :class:`ClusterStructure` is an immutable view over that
assignment with the derived queries the rest of the library needs (role
lookup, members-of, neighbouring-clusterheads-of).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, FrozenSet, List, Mapping, Set

import numpy as np

from repro.errors import ClusteringError, NodeNotFoundError
from repro.graph.adjacency import Graph
from repro.types import NodeId, NodeRole


@dataclass(frozen=True, slots=True)
class Cluster:
    """One cluster: its head and its non-head members."""

    head: NodeId
    members: FrozenSet[NodeId]

    @property
    def size(self) -> int:
        """Total number of nodes in the cluster, head included."""
        return 1 + len(self.members)


@dataclass(frozen=True)
class ClusterStructure:
    """An immutable clustering of a graph.

    Attributes:
        graph: The clustered network.
        head_of: Every node id mapped to its clusterhead's id; clusterheads
            map to themselves.
    """

    graph: Graph
    head_of: Mapping[NodeId, NodeId]

    def __post_init__(self) -> None:
        nodes = set(self.graph.nodes())
        if set(self.head_of) != nodes:
            raise ClusteringError("head_of must assign every node exactly once")
        for v, h in self.head_of.items():
            if h not in nodes:
                raise ClusteringError(f"node {v} assigned to unknown head {h}")
            if v != h and not self.graph.has_edge(v, h):
                raise ClusteringError(
                    f"member {v} is not adjacent to its clusterhead {h}"
                )
        heads = {h for h in self.head_of.values()}
        for h in heads:
            if self.head_of[h] != h:
                raise ClusteringError(
                    f"clusterhead {h} of some member is itself a member of "
                    f"{self.head_of[h]}"
                )

    @cached_property
    def topology(self):
        """A shared :class:`~repro.topology.view.TopologyView` over the graph.

        Lazily constructed once per structure, so every coverage set,
        gateway selection and broadcast computed over this clustering reuses
        the same memoized neighbourhood queries.  Valid for the structure's
        lifetime because both the structure and (by convention) its graph
        are immutable once clustered.
        """
        # Local import: repro.topology is a lower layer but its package
        # __init__ pulls in modules that import this one.
        from repro.topology.view import TopologyView

        return TopologyView(self.graph)

    @cached_property
    def csr(self):
        """A :class:`~repro.graph.csr.CSRGraph` snapshot of the graph.

        Built once per structure; the array kernels (coverage, gateway
        selection) pull it from here so the object-layer entry points can
        dispatch to CSR at scale without re-converting per call.
        """
        return self.graph.to_csr()

    @cached_property
    def head_row(self):
        """Per-CSR-row clusterhead assignment as an int array.

        ``head_row[r]`` is the row (rank in id order) of row ``r``'s
        clusterhead — the form the CSR coverage kernels consume.
        """
        ids = self.csr.ids
        head_ids = np.asarray([self.head_of[v] for v in ids.tolist()])
        return np.searchsorted(ids, head_ids)

    @cached_property
    def clusterheads(self) -> FrozenSet[NodeId]:
        """All clusterhead ids."""
        return frozenset(h for v, h in self.head_of.items() if v == h)

    @cached_property
    def clusters(self) -> Dict[NodeId, Cluster]:
        """Mapping head id -> :class:`Cluster`."""
        members: Dict[NodeId, Set[NodeId]] = {h: set() for h in self.clusterheads}
        for v, h in self.head_of.items():
            if v != h:
                members[h].add(v)
        return {h: Cluster(head=h, members=frozenset(ms)) for h, ms in members.items()}

    def role(self, v: NodeId) -> NodeRole:
        """Role of node ``v`` (clusterhead or member)."""
        try:
            h = self.head_of[v]
        except KeyError:
            raise NodeNotFoundError(v) from None
        return NodeRole.CLUSTERHEAD if h == v else NodeRole.MEMBER

    def is_clusterhead(self, v: NodeId) -> bool:
        """Whether ``v`` is a clusterhead."""
        return self.head_of.get(v, None) == v

    def members(self, head: NodeId) -> FrozenSet[NodeId]:
        """Non-head members of ``head``'s cluster.

        Raises:
            ClusteringError: if ``head`` is not a clusterhead.
        """
        if not self.is_clusterhead(head):
            raise ClusteringError(f"node {head} is not a clusterhead")
        return self.clusters[head].members

    def neighbouring_clusterheads(self, v: NodeId) -> FrozenSet[NodeId]:
        """Clusterheads adjacent to ``v`` — the content of ``v``'s CH_HOP1.

        For the node's own head this includes the head itself (when adjacent),
        matching the ``h*`` entries of the paper's CH_HOP1 examples.
        """
        if v not in self.graph:
            raise NodeNotFoundError(v)
        return frozenset(w for w in self.graph.neighbours_view(v) if self.is_clusterhead(w))

    @property
    def num_clusters(self) -> int:
        """Number of clusters."""
        return len(self.clusterheads)

    def sorted_heads(self) -> List[NodeId]:
        """Clusterheads in ascending id order (deterministic iteration)."""
        return sorted(self.clusterheads)
