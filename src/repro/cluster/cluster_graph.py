"""The cluster graph ``G'`` and its strong-connectivity property.

``G'`` has one vertex per cluster (represented by its head) and a directed
link ``(v, w)`` for every ``w ∈ C(v)``.  Wu & Lou proved ``G'`` is strongly
connected for a connected ``G`` under either coverage policy; Theorem 1 of
the paper reduces the backbone's connectivity to this fact.  With the 3-hop
policy ``G'`` is symmetric; with the 2.5-hop policy it may be genuinely
directed (the paper's Figure 4(a) has ``(4, 1)`` but not ``(1, 4)``).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Set

from repro.cluster.state import ClusterStructure
from repro.coverage.entries import CoverageSet
from repro.graph.connectivity import is_strongly_connected
from repro.types import CoveragePolicy, NodeId


def build_cluster_graph(
    structure: ClusterStructure,
    policy: CoveragePolicy = CoveragePolicy.TWO_FIVE_HOP,
    coverage_sets: Optional[Mapping[NodeId, CoverageSet]] = None,
) -> Dict[NodeId, Set[NodeId]]:
    """Successor map of the cluster graph: head ``v`` -> set ``C(v)``.

    Args:
        structure: The clustering.
        policy: Coverage definition to use.
        coverage_sets: Pre-computed coverage sets (any head missing from the
            mapping is computed on demand); pass the dict you already built
            for backbone construction to avoid recomputation.

    Returns:
        ``{head: set_of_covered_heads}`` covering every clusterhead.
    """
    from repro.coverage.policy import compute_coverage_set

    successors: Dict[NodeId, Set[NodeId]] = {}
    for head in structure.sorted_heads():
        if coverage_sets is not None and head in coverage_sets:
            cov = coverage_sets[head]
        else:
            cov = compute_coverage_set(structure, head, policy)
        successors[head] = set(cov.all_targets)
    return successors


def cluster_graph_is_strongly_connected(
    structure: ClusterStructure,
    policy: CoveragePolicy = CoveragePolicy.TWO_FIVE_HOP,
) -> bool:
    """Check the Wu–Lou strong-connectivity property for this clustering.

    For a connected underlying network this must always return ``True``
    (property-tested); it is exposed so users can sanity-check custom
    clusterings on possibly disconnected graphs.
    """
    return is_strongly_connected(build_cluster_graph(structure, policy))
