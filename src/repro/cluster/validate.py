"""Validation of cluster structures against their defining invariants.

Separated from construction so the distributed protocol's output (and any
user-supplied clustering) can be checked with the same code that the
property-based tests use.
"""

from __future__ import annotations

from typing import List

from repro.cluster.state import ClusterStructure
from repro.errors import ClusteringError
from repro.graph.properties import is_dominating_set, is_independent_set


def validate_cluster_structure(structure: ClusterStructure, *,
                               lowest_id: bool = False) -> None:
    """Raise :class:`~repro.errors.ClusteringError` on any violated invariant.

    Always checked (Section 1 of the paper):

    * clusterheads form an independent set ("two clusterheads cannot be
      neighbors");
    * clusterheads form a dominating set;
    * every member is adjacent to its head (already enforced by the type).

    With ``lowest_id=True``, additionally check the lowest-ID fixpoint:

    * a head has no smaller-id head neighbour at distance 2 claiming it —
      concretely, a node is a head iff it has no neighbouring head with a
      smaller id, and every member's head is its smallest neighbouring head.
    """
    graph = structure.graph
    heads = structure.clusterheads
    problems: List[str] = []
    if not is_independent_set(graph, heads):
        problems.append("clusterheads are not an independent set")
    if not is_dominating_set(graph, heads):
        problems.append("clusterheads are not a dominating set")
    if lowest_id:
        for v in graph.nodes():
            neighbour_heads = sorted(
                w for w in graph.neighbours_view(v) if w in heads
            )
            if v in heads:
                smaller = [w for w in neighbour_heads if w < v]
                if smaller:
                    problems.append(
                        f"head {v} has a smaller-id head neighbour {smaller[0]}"
                    )
            else:
                if not neighbour_heads:
                    problems.append(f"member {v} has no neighbouring head")
                elif structure.head_of[v] != neighbour_heads[0]:
                    problems.append(
                        f"member {v} joined head {structure.head_of[v]}, not its "
                        f"smallest neighbouring head {neighbour_heads[0]}"
                    )
    if problems:
        raise ClusteringError("; ".join(problems))
