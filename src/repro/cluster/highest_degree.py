"""Highest-degree (highest-connectivity) clustering — an extension.

The paper builds on lowest-ID clustering, but the backbone construction only
requires *some* clustering whose heads form an independent dominating set.
This variant elects heads by descending degree (ties broken by lower id),
which tends to produce fewer, larger clusters in dense networks; ablation
benchmarks compare backbone sizes under both electorates.
"""

from __future__ import annotations

from typing import Dict

from repro.cluster.state import ClusterStructure
from repro.graph.adjacency import Graph
from repro.types import NodeId


def highest_degree_clustering(graph: Graph) -> ClusterStructure:
    """Cluster ``graph`` electing heads by (degree desc, id asc) priority.

    The sequential characterisation mirrors the lowest-ID one with the
    priority key swapped: scanning nodes by descending degree (id ascending
    within ties), a node becomes a head iff no already-decided head
    dominates it; members join the neighbouring head with the best priority.

    Returns:
        The resulting :class:`~repro.cluster.state.ClusterStructure`.
    """

    def priority(v: NodeId) -> tuple[int, NodeId]:
        # Lower tuple = better candidate.
        return (-graph.degree(v), v)

    head_of: Dict[NodeId, NodeId] = {}
    is_head: Dict[NodeId, bool] = {}
    for v in sorted(graph.nodes(), key=priority):
        neighbour_heads = [w for w in graph.neighbours_view(v) if is_head.get(w, False)]
        if neighbour_heads:
            head_of[v] = min(neighbour_heads, key=priority)
            is_head[v] = False
        else:
            head_of[v] = v
            is_head[v] = True
    return ClusterStructure(graph=graph, head_of=head_of)
