"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate the failure class.  Errors are grouped by subsystem:
geometry / graph construction, clustering, backbone construction, broadcast
execution, the discrete-event simulator and the experiment harness.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter or parameter combination was supplied."""


class GeometryError(ReproError, ValueError):
    """Invalid geometric input (bad area, negative radius, shape mismatch)."""


class GraphError(ReproError):
    """Base class for graph-structure errors."""


class NodeNotFoundError(GraphError, KeyError):
    """A node id was referenced that is not present in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(node)
        self.node = node

    def __str__(self) -> str:  # pragma: no cover - trivial formatting
        return f"node {self.node!r} is not in the graph"


class DisconnectedGraphError(GraphError):
    """An operation that requires a connected graph was given a disconnected one.

    The paper's simulation environment discards disconnected samples; library
    entry points that assume connectivity raise this error instead of silently
    producing a partial result.
    """


class ClusteringError(ReproError):
    """Clustering produced (or was given) an inconsistent cluster structure."""


class CoverageError(ReproError):
    """A coverage-set computation was asked of a non-clusterhead or failed."""


class BackboneError(ReproError):
    """Backbone construction failed or produced a structure that is not a CDS."""


class BroadcastError(ReproError):
    """A broadcast protocol failed to complete or to deliver to all nodes."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class ProtocolError(SimulationError):
    """A distributed protocol violated its own state machine."""


class ExperimentError(ReproError):
    """The experiment harness could not complete a measurement."""


class ExecutionError(ReproError):
    """The execution layer could not complete a wave of trials."""


class ChunkRetryExhaustedError(ExecutionError):
    """A supervised trial chunk kept failing until its retry budget ran out."""

    def __init__(self, *, chunk_start: int, chunk_size: int, attempts: int,
                 failure: str, cause: BaseException) -> None:
        super().__init__(
            f"chunk [{chunk_start}, {chunk_start + chunk_size}) still failing "
            f"({failure}) after {attempts} attempt(s): {cause!r}"
        )
        self.chunk_start = chunk_start
        self.chunk_size = chunk_size
        self.attempts = attempts
        self.failure = failure
        self.cause = cause


class JournalError(ReproError):
    """A run journal is corrupt or does not match the run being resumed."""


class SampleBudgetExceededError(ExperimentError):
    """The sequential stopping rule did not converge within the trial budget."""

    def __init__(self, trials: int, half_width_ratio: float, target: float) -> None:
        super().__init__(
            f"confidence interval not within ±{target:.0%} after {trials} trials "
            f"(achieved ±{half_width_ratio:.1%})"
        )
        self.trials = trials
        self.half_width_ratio = half_width_ratio
        self.target = target
