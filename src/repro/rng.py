"""Deterministic random-number utilities.

All stochastic entry points in the library accept a ``seed`` (int), a
:class:`numpy.random.Generator`, or ``None``.  :func:`ensure_rng` normalises
those into a ``Generator`` so experiments are reproducible end to end: the
harness derives independent child streams per trial via :func:`spawn`.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]

#: Default seed used by examples and benchmarks so output is reproducible.
DEFAULT_SEED = 20030422  # IPPS 2003 (April 22-26, Nice) — purely mnemonic.


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Normalise ``rng`` into a :class:`numpy.random.Generator`.

    Args:
        rng: ``None`` (fresh nondeterministic generator), an integer seed, or
            an existing generator (returned unchanged).

    Returns:
        A ready-to-use generator.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot build a Generator from {type(rng).__name__}")


def spawn_seeds(rng: RngLike, n: int) -> list[np.random.SeedSequence]:
    """Derive ``n`` independent child :class:`~numpy.random.SeedSequence`\\ s.

    The raw form of :func:`spawn`: seed sequences are tiny and picklable, so
    the execution backends ship *these* to worker processes and build the
    generators worker-side.  Spawning is cumulative on the parent — child
    ``i`` is the same whether the children are requested one by one or in a
    single call, which is what makes trial streams independent of batch
    partitioning.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    parent = ensure_rng(rng)
    return parent.bit_generator.seed_seq.spawn(n)  # type: ignore[union-attr]


def spawn(rng: RngLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Uses the SeedSequence spawning protocol, so children are independent of
    each other and of the parent's future output.  Used by the experiment
    harness to give every trial its own stream (trial ``i`` is reproducible
    regardless of how many trials run).
    """
    return [np.random.default_rng(s) for s in spawn_seeds(rng, n)]


def derive_seed(rng: RngLike) -> int:
    """Draw a fresh 63-bit seed from ``rng`` (for labelling / serialisation)."""
    return int(ensure_rng(rng).integers(0, 2**63 - 1))
