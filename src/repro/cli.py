"""Command-line interface.

``python -m repro.cli <command>`` (or the ``manet-backbone`` entry point):

* ``generate``   — sample a connected network and save it as JSON;
* ``cluster``    — cluster a network and print the structure;
* ``backbone``   — build the static backbone / MO_CDS and print/verify it;
* ``broadcast``  — run a broadcast protocol from a source and print stats;
* ``experiment`` — regenerate a paper figure's series tables;
* ``perf``       — per-stage wall-clock attribution for a figure sweep;
* ``trace``      — run the distributed protocols and print the message trace;
* ``ratio``      — the empirical MCDS approximation-ratio study;
* ``svg``        — export the network/backbone as an SVG figure;
* ``robustness`` — delivery ratios under a lossy data plane;
* ``faults``     — delivery under fault schedules (crashes, cuts, windows);
* ``channel``    — delivery under SINR interference and MAC contention;
* ``mobility``   — backbone churn under node movement;
* ``serve``      — the crash-safe experiment daemon on a unix socket
  (bounded-queue backpressure, per-request journals, restart recovery;
  see docs/serving.md);
* ``route``      — a unicast route over the backbone.

All commands accept ``--seed`` for reproducibility.

The long-running sweep commands (``experiment``, ``faults``, ``channel``)
additionally
accept the resilience flags (see docs/resilience.md): ``--journal FILE``
writes every folded trial to a crash-safe run journal, ``--resume``
replays an interrupted journal so the run continues bit-identically,
``--retries N`` and ``--chunk-timeout SECONDS`` run the chosen backend
under supervision (failed or hung wave chunks are retried with backoff,
broken pools are rebuilt, and execution degrades process → thread →
serial rather than aborting).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.rng import DEFAULT_SEED


def _add_network_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", "-n", type=int, default=40,
                        help="number of nodes (default 40)")
    parser.add_argument("--degree", "-d", type=float, default=6.0,
                        help="target average degree (default 6)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="random seed")
    parser.add_argument("--load", metavar="FILE",
                        help="load a saved network instead of generating one")


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--journal", metavar="FILE",
                        help="write folded trials to this crash-safe run "
                             "journal (JSONL)")
    parser.add_argument("--resume", action="store_true",
                        help="replay an existing journal and continue the "
                             "run bit-identically")
    parser.add_argument("--retries", type=int, default=None,
                        help="supervise execution: retry failed wave chunks "
                             "up to N times (with pool rebuild and backoff)")
    parser.add_argument("--chunk-timeout", type=float, default=None,
                        help="supervise execution: per-chunk deadline in "
                             "seconds before a chunk counts as hung")


def _resilient_backend(args: argparse.Namespace):
    """The (possibly supervised) backend selected by the CLI flags.

    Returns ``args.backend`` untouched when no supervision flag is given,
    otherwise a ``SupervisedBackend`` wrapping it.
    """
    if args.retries is None and args.chunk_timeout is None:
        return args.backend, None
    from repro.exec.supervise import SupervisedBackend

    supervised = SupervisedBackend(
        args.backend, workers=max(1, args.parallel),
        retries=args.retries if args.retries is not None else 3,
        chunk_timeout=args.chunk_timeout,
    )
    return supervised, supervised


def _open_cli_journal(args: argparse.Namespace, run_key: dict):
    """Open the ``--journal`` file (or return ``None`` without one)."""
    from repro.errors import ConfigurationError
    from repro.exec.journal import open_journal

    if args.resume and not args.journal:
        raise ConfigurationError("--resume requires --journal FILE")
    return open_journal(args.journal, run_key, resume=args.resume)


def _report_supervision(supervised) -> None:
    """One stderr line per event kind, only when something happened."""
    if supervised is None or not supervised.events:
        return
    counts = supervised.event_summary()
    summary = ", ".join(f"{kind}: {counts[kind]}" for kind in sorted(counts))
    print(f"supervision: {summary} (final backend: "
          f"{supervised.inner.name})", file=sys.stderr)


def _obtain_network(args: argparse.Namespace):
    from repro.graph.generators import random_geometric_network
    from repro.io.network_json import load_network

    if args.load:
        return load_network(args.load)
    return random_geometric_network(args.nodes, args.degree, rng=args.seed)


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.io.network_json import save_network

    net = _obtain_network(args)
    save_network(net, args.out)
    print(f"wrote n={net.num_nodes} r={net.radius:.2f} network to {args.out}")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster.lowest_id import lowest_id_clustering
    from repro.viz.ascii_art import render_backbone

    net = _obtain_network(args)
    structure = lowest_id_clustering(net.graph)
    heads = structure.sorted_heads()
    print(f"{net.num_nodes} nodes, {len(heads)} clusters")
    for h in heads:
        print(f"  cluster {h}: members {sorted(structure.members(h))}")
    if args.render:
        print(render_backbone(net, structure))
    return 0


def _cmd_backbone(args: argparse.Namespace) -> int:
    from repro.backbone.mo_cds import build_mo_cds
    from repro.backbone.static_backbone import build_static_backbone
    from repro.backbone.verify import verify_backbone
    from repro.cluster.lowest_id import lowest_id_clustering
    from repro.types import CoveragePolicy
    from repro.viz.ascii_art import render_backbone

    net = _obtain_network(args)
    structure = lowest_id_clustering(net.graph)
    policy = (CoveragePolicy.THREE_HOP if args.policy == "3"
              else CoveragePolicy.TWO_FIVE_HOP)
    if args.algorithm == "mo-cds":
        backbone = build_mo_cds(structure)
    else:
        backbone = build_static_backbone(structure, policy)
    verify_backbone(backbone)
    print(f"{backbone.algorithm}: |CDS| = {backbone.size} "
          f"({len(structure.clusterheads)} heads + "
          f"{len(backbone.gateways)} gateways) of {net.num_nodes} nodes "
          f"[verified CDS]")
    if args.render:
        print(render_backbone(net, structure, backbone.gateways))
    return 0


def _cmd_broadcast(args: argparse.Namespace) -> int:
    from repro.backbone.mo_cds import build_mo_cds
    from repro.backbone.static_backbone import build_static_backbone
    from repro.broadcast.delivery import check_full_delivery
    from repro.broadcast.flooding import blind_flooding
    from repro.broadcast.sd_cds import broadcast_sd
    from repro.broadcast.si_cds import broadcast_si
    from repro.cluster.lowest_id import lowest_id_clustering
    from repro.types import CoveragePolicy, PruningLevel

    net = _obtain_network(args)
    structure = lowest_id_clustering(net.graph)
    source = args.source if args.source is not None else min(net.graph.nodes())
    policy = (CoveragePolicy.THREE_HOP if args.policy == "3"
              else CoveragePolicy.TWO_FIVE_HOP)
    if args.protocol == "flooding":
        result = blind_flooding(net.graph, source)
    elif args.protocol == "static":
        result = broadcast_si(
            net.graph, build_static_backbone(structure, policy), source
        )
    elif args.protocol == "mo-cds":
        result = broadcast_si(net.graph, build_mo_cds(structure), source)
    else:  # dynamic
        result = broadcast_sd(
            structure, source, policy=policy,
            pruning=PruningLevel(args.pruning),
        ).result
    check_full_delivery(net.graph, result)
    print(f"{result.algorithm} from {source}: "
          f"{result.num_forward_nodes}/{net.num_nodes} forward nodes, "
          f"latency {result.latency}, {result.transmissions} transmissions "
          f"[full delivery]")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.io.results import tables_to_csv, tables_to_json
    from repro.workload.config import PaperEnvironment
    from repro.workload.experiments import (
        run_fig6, run_fig7, run_fig8, run_flooding_comparison,
    )

    runners = {
        "fig6": run_fig6,
        "fig7": run_fig7,
        "fig8": run_fig8,
        "flooding": run_flooding_comparison,
    }
    env = PaperEnvironment.quick() if args.quick else PaperEnvironment.paper()
    env = env.scaled(seed=args.seed)
    backend, supervised = _resilient_backend(args)
    journal = _open_cli_journal(args, {
        "command": "experiment", "figure": args.figure,
        "quick": bool(args.quick), "seed": args.seed,
    })
    try:
        tables = runners[args.figure](
            env, backend=backend, parallel=args.parallel, journal=journal,
        )
    finally:
        if journal is not None:
            journal.close()
        _report_supervision(supervised)
    for _d, table in sorted(tables.items()):
        print(table.render(ci=args.ci))
        print()
    if args.csv:
        n = tables_to_csv(tables.values(), args.csv)
        print(f"wrote {n} rows to {args.csv}")
    if args.json:
        n = tables_to_json(tables.values(), args.json)
        print(f"wrote {n} records to {args.json}")
    return 0


def _perf_broadcast_breakdown(counters) -> dict:
    """Per-protocol broadcast seconds out of the stage counters.

    The delivery kernels time themselves under ``broadcast.flooding`` /
    ``broadcast.si`` / ``broadcast.sd``; sub-cutover points run the event
    engine's single ``broadcast`` stage.  Both appear here so the split
    between kernel and engine time is visible at a glance.
    """
    labels = {"broadcast.flooding": "flooding", "broadcast.si": "si-cds",
              "broadcast.sd": "sd-cds", "broadcast": "engine"}
    breakdown = {
        label: counters[stage]["seconds"]
        for stage, label in labels.items() if stage in counters
    }
    breakdown["total"] = sum(breakdown.values())
    return breakdown


def _perf_maintenance_breakdown(counters) -> dict:
    """Per-kernel-stage maintenance seconds out of the stage counters.

    The kernel session times itself under ``maintenance.step`` /
    ``maintenance.delta`` / ``maintenance.repair`` (with gateway
    ``selection`` nested exclusively inside repair); the bare
    ``maintenance`` stage holds the residual glue between them.
    """
    labels = {"maintenance.step": "step", "maintenance.delta": "delta",
              "maintenance.repair": "repair", "selection": "selection",
              "maintenance": "residual"}
    breakdown = {
        label: counters[stage]["seconds"]
        for stage, label in labels.items() if stage in counters
    }
    breakdown["total"] = sum(breakdown.values())
    return breakdown


def _cmd_perf_mobility(args: argparse.Namespace) -> int:
    """The ``perf --figure mobility`` runner: kernel maintenance ticks."""
    import json as _json

    from repro import perf
    from repro.workload.mobility_scaling import run_mobility_scaling

    n, ticks = (10_000, 10) if args.paper else (2_000, 5)
    was_enabled = perf.enabled()
    was_mem = perf.memory_enabled()
    perf.enable()
    if args.mem:
        perf.enable_memory()
    perf.reset()
    try:
        (point,) = run_mobility_scaling(ns=(n,), ticks=ticks, rng=args.seed)
    finally:
        counters = perf.snapshot()
        perf.enable(was_enabled)
        perf.enable_memory(was_mem)
    breakdown = _perf_maintenance_breakdown(counters)
    if args.json:
        payload = {"figure": "mobility", "n": n, "ticks": ticks,
                   "stages": counters,
                   "steps_per_sec": round(point.steps_per_second, 2),
                   "link_changes_per_tick": point.link_changes_per_tick,
                   "maintenance_breakdown": breakdown}
        if args.mem:
            payload["peak_rss_bytes"] = perf.peak_rss_bytes()
        print(_json.dumps(payload, indent=2))
    else:
        print(f"mobility maintenance at n={n}, {ticks} ticks "
              f"(seed {args.seed})")
        print(perf.render_report(counters))
        if breakdown["total"] > 0.0:
            print("maintenance breakdown:")
            for label, seconds in breakdown.items():
                if label == "total":
                    continue
                share = seconds / breakdown["total"]
                print(f"  {label:<9} {seconds:>8.3f}s {share:>5.0%}")
        print(f"throughput: {point.steps_per_second:.1f} ticks/s "
              f"({point.link_changes_per_tick:.0f} link changes/tick)")
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    import json as _json
    import time as _time

    from repro import perf
    from repro.exec.scenarios import get_scenario_cache
    from repro.workload.config import PaperEnvironment
    from repro.workload.experiments import (
        run_fig6, run_fig7, run_fig8, run_flooding_comparison,
    )

    if args.figure == "mobility":
        return _cmd_perf_mobility(args)

    runners = {
        "fig6": run_fig6,
        "fig7": run_fig7,
        "fig8": run_fig8,
        "flooding": run_flooding_comparison,
    }
    env = PaperEnvironment.paper() if args.paper else PaperEnvironment.quick()
    env = env.scaled(seed=args.seed)
    cache = get_scenario_cache()
    cache.clear()  # attribute placement/construction, not cache hits
    was_enabled = perf.enabled()
    was_mem = perf.memory_enabled()
    perf.enable()
    if args.mem:
        perf.enable_memory()
    perf.reset()
    t0 = _time.perf_counter()
    try:
        tables = runners[args.figure](env, backend=args.backend,
                                      parallel=args.parallel)
    finally:
        wall = _time.perf_counter() - t0
        counters = perf.snapshot()
        perf.enable(was_enabled)
        perf.enable_memory(was_mem)
    # Every metric of a point folds the same trial count, so one series
    # per table counts the whole sweep.
    trials = sum(
        point.estimate.samples
        for table in tables.values()
        for point in table.series[0].points
    )
    trials_per_sec = trials / wall if wall > 0 else 0.0
    breakdown = _perf_broadcast_breakdown(counters)
    if args.json:
        payload = {"figure": args.figure, "backend": args.backend,
                   "parallel": args.parallel, "stages": counters,
                   "trials": trials,
                   "wall_seconds": round(wall, 3),
                   "trials_per_sec": round(trials_per_sec, 2),
                   "broadcast_breakdown": breakdown,
                   "scenario_cache": cache.stats()}
        if args.mem:
            payload["peak_rss_bytes"] = perf.peak_rss_bytes()
        print(_json.dumps(payload, indent=2))
    else:
        print(f"{args.figure} on backend={args.backend} "
              f"parallel={args.parallel} (seed {args.seed})")
        print(perf.render_report(counters))
        if breakdown["total"] > 0.0:
            print("broadcast breakdown:")
            for label, seconds in breakdown.items():
                if label == "total":
                    continue
                share = seconds / breakdown["total"]
                print(f"  {label:<9} {seconds:>8.3f}s {share:>5.0%}")
        print(f"throughput: {trials} trials in {wall:.2f}s "
              f"({trials_per_sec:.1f} trials/s)")
        stats = cache.stats()
        print(f"scenario cache: {stats['hits']} hits / "
              f"{stats['misses']} misses ({stats['entries']} entries)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.graph.generators import paper_figure3_graph
    from repro.protocols.runner import (
        run_distributed_build, run_distributed_sd_broadcast,
    )
    from repro.types import CoveragePolicy

    if args.figure3:
        net, graph = None, paper_figure3_graph()
    else:
        net = _obtain_network(args)
        graph = net.graph
    policy = (CoveragePolicy.THREE_HOP if args.policy == "3"
              else CoveragePolicy.TWO_FIVE_HOP)
    build = run_distributed_build(graph, policy)
    if args.channel != "none":
        from repro.channel import make_channel, make_mac

        if args.channel == "sinr" and net is None:
            raise ConfigurationError(
                "--channel sinr needs node positions (not available "
                "with --figure3)"
            )
        # Construction ran under the paper's perfect-MAC assumption; only
        # the data-plane broadcast below contends for the channel.
        build.network.medium.set_channel(make_channel(
            args.channel, net, mac=make_mac(args.mac, rng=args.seed),
        ))
    source = args.source if args.source is not None else min(graph.nodes())
    result, stats = run_distributed_sd_broadcast(build, source)
    print(build.network.trace.render(limit=args.limit))
    print()
    for phase in build.phases:
        print(f"phase {phase.name:<10} {phase.messages:>5} msgs  "
              f"volume {phase.volume:>6}  duration {phase.duration:g}")
    print(f"phase {'sd-bcast':<10} {stats.messages:>5} msgs  "
          f"volume {stats.volume:>6}  duration {stats.duration:g}")
    print(f"\nSD broadcast from {source}: forward nodes "
          f"{sorted(result.forward_nodes)}")
    if result.channel is not None:
        counters = ", ".join(f"{k}: {v}" for k, v in result.channel.items())
        print(f"channel [{args.channel}/{args.mac}]: {counters}")
    return 0


def _cmd_ratio(args: argparse.Namespace) -> int:
    from repro.mcds.ratio import approximation_ratio_study

    samples = approximation_ratio_study(
        samples=args.samples, n=args.nodes, average_degree=args.degree,
        rng=args.seed,
    )
    worst_static = max(s.static_ratio for s in samples)
    worst_dynamic = max(s.dynamic_ratio for s in samples)
    worst_mo = max(s.mo_ratio for s in samples)
    print(f"{len(samples)} samples, n={args.nodes}, d={args.degree}")
    print(f"  static/MCDS  : worst {worst_static:.2f}, "
          f"mean {sum(s.static_ratio for s in samples) / len(samples):.2f}")
    print(f"  dynamic/MCDS : worst {worst_dynamic:.2f}, "
          f"mean {sum(s.dynamic_ratio for s in samples) / len(samples):.2f}")
    print(f"  mo-cds/MCDS  : worst {worst_mo:.2f}, "
          f"mean {sum(s.mo_ratio for s in samples) / len(samples):.2f}")
    return 0


def _cmd_svg(args: argparse.Namespace) -> int:
    from repro.backbone.static_backbone import build_static_backbone
    from repro.cluster.lowest_id import lowest_id_clustering
    from repro.types import CoveragePolicy
    from repro.viz.svg import backbone_to_svg, network_to_svg

    net = _obtain_network(args)
    if args.backbone:
        policy = (CoveragePolicy.THREE_HOP if args.policy == "3"
                  else CoveragePolicy.TWO_FIVE_HOP)
        backbone = build_static_backbone(
            lowest_id_clustering(net.graph), policy
        )
        svg = backbone_to_svg(net, backbone, labels=not args.no_labels)
    else:
        svg = network_to_svg(net, labels=not args.no_labels)
    with open(args.out, "w") as fh:
        fh.write(svg)
    print(f"wrote {args.out} ({net.num_nodes} nodes)")
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    from repro.workload.robustness import run_robustness_sweep

    points = run_robustness_sweep(
        losses=tuple(args.losses), n=args.nodes,
        average_degree=args.degree, trials=args.trials, rng=args.seed,
    )
    print(f"{'loss':>6} | {'flooding':>9} {'static':>8} {'dynamic':>8}")
    for p in points:
        print(f"{p.loss_probability:>6g} | {p.delivery['flooding']:>9.3f} "
              f"{p.delivery['static']:>8.3f} {p.delivery['dynamic']:>8.3f}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    import json as _json

    from repro.errors import ConfigurationError
    from repro.faults.schedule import FaultSchedule
    from repro.workload.faultsweep import (
        PROTOCOLS, run_fault_scenario, run_fault_sweep,
    )

    header = " ".join(f"{p:>12}" for p in PROTOCOLS)
    if args.schedule:
        if args.journal or args.resume:
            raise ConfigurationError(
                "--journal/--resume apply to the sweep path, not --schedule"
            )
        try:
            spec = _json.loads(open(args.schedule).read())
        except _json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{args.schedule} is not valid JSON: {exc}"
            ) from None
        schedule = FaultSchedule.from_spec(spec)
        net = _obtain_network(args)
        source = (args.source if args.source is not None
                  else min(net.graph.nodes()))
        metrics = run_fault_scenario(
            net.graph, source, schedule,
            loss=args.loss, rng=args.seed,
        )
        print(f"schedule {args.schedule}: {len(schedule)} events, "
              f"horizon {schedule.horizon:g}, loss {args.loss:g}")
        print(f"{'':>10} | {header}")
        for axis in ("delivery", "overhead", "latency"):
            row = " ".join(f"{metrics[f'{axis}/{p}']:>12.3f}"
                           for p in PROTOCOLS)
            print(f"{axis:>10} | {row}")
        return 0

    backend, supervised = _resilient_backend(args)
    journal = _open_cli_journal(args, {
        "command": "faults", "losses": list(args.losses), "n": args.nodes,
        "degree": args.degree, "trials": args.trials,
        "crash_fraction": args.crash_fraction, "seed": args.seed,
    })
    try:
        points = run_fault_sweep(
            losses=tuple(args.losses), n=args.nodes,
            average_degree=args.degree, trials=args.trials,
            crash_fraction=args.crash_fraction, rng=args.seed,
            backend=backend, parallel=args.parallel, journal=journal,
        )
    finally:
        if journal is not None:
            journal.close()
        _report_supervision(supervised)
    print(f"{'loss':>6} | {header}")
    for p in points:
        row = " ".join(f"{p.delivery[proto]:>12.3f}" for proto in PROTOCOLS)
        print(f"{p.loss_probability:>6g} | {row}")
    if args.json:
        from repro.io.results import fault_sweep_to_json

        n = fault_sweep_to_json(points, args.json)
        print(f"wrote {n} points to {args.json}")
    return 0


def _cmd_channel(args: argparse.Namespace) -> int:
    from repro.workload.contention import (
        CONTENTION_PROTOCOLS, run_contention_sweep,
    )

    backend, supervised = _resilient_backend(args)
    journal = _open_cli_journal(args, {
        "command": "channel", "losses": list(args.losses), "n": args.nodes,
        "degree": args.degree, "trials": args.trials, "mac": args.mac,
        "alpha": args.alpha, "threshold": args.threshold,
        "noise_margin": args.noise_margin, "frame": args.frame,
        "crash_fraction": args.crash_fraction, "seed": args.seed,
    })
    try:
        points = run_contention_sweep(
            losses=tuple(args.losses), n=args.nodes,
            average_degree=args.degree, trials=args.trials,
            mac=args.mac, alpha=args.alpha, threshold=args.threshold,
            noise_margin=args.noise_margin, frame=args.frame,
            crash_fraction=args.crash_fraction, rng=args.seed,
            backend=backend, parallel=args.parallel, journal=journal,
        )
    finally:
        if journal is not None:
            journal.close()
        _report_supervision(supervised)
    header = " ".join(f"{p:>12}" for p in CONTENTION_PROTOCOLS)
    print(f"n={args.nodes} d={args.degree:g} mac={args.mac} "
          f"(alpha {args.alpha:g}, threshold {args.threshold:g})")
    for axis in ("delivery", "collisions", "latency"):
        print(f"{axis} by loss:")
        print(f"{'loss':>6} | {header}")
        for p in points:
            row = " ".join(f"{getattr(p, axis)[proto]:>12.3f}"
                           for proto in CONTENTION_PROTOCOLS)
            print(f"{p.loss_probability:>6g} | {row}")
    if args.json:
        from repro.io.results import fault_sweep_to_json

        n = fault_sweep_to_json(points, args.json)
        print(f"wrote {n} points to {args.json}")
    return 0


def _cmd_mobility(args: argparse.Namespace) -> int:
    from repro.geometry.mobility import RandomWalk, RandomWaypoint
    from repro.maintenance.session import MobilitySession

    net = _obtain_network(args)
    if args.model == "walk":
        model = RandomWalk(speed=args.speed, area=net.area, rng=args.seed)
    else:
        model = RandomWaypoint(speed_range=(0.5 * args.speed, args.speed),
                               area=net.area, rng=args.seed)
    session = MobilitySession(net, model)
    print(f"{'t':>4} {'links±':>7} {'head flips':>11} {'gw turnover':>12} "
          f"{'re-signalling':>14} {'connected':>10}")
    for report in session.run(args.ticks):
        assert report.cluster_churn and report.backbone_churn
        print(f"{report.time:>4g} {report.link_changes:>7} "
              f"{report.cluster_churn.role_change_count:>11} "
              f"{report.backbone_churn.gateway_turnover:>12} "
              f"{len(report.backbone_churn.heads_with_new_selection):>14} "
              f"{str(report.connected):>10}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.serve.server import ServeServer
    from repro.serve.service import ServeService

    service = ServeService(
        args.root,
        backend=args.backend, workers=args.parallel,
        queue_limit=args.queue_limit, watermark=args.watermark,
        retries=args.retries if args.retries is not None else 2,
        chunk_timeout=args.chunk_timeout,
        default_deadline=args.deadline,
    )
    recovered = service.start()
    server = ServeServer(service, args.socket)
    server.start()
    if recovered:
        print(f"recovered {recovered} unfinished request(s)",
              file=sys.stderr)
    print(f"serving on {args.socket}", flush=True)

    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())
    stop.wait()
    print("draining...", file=sys.stderr, flush=True)
    drained = server.shutdown(grace=args.drain_grace)
    if not drained:
        print("drain grace expired; unfinished requests stay journaled "
              "for the next start", file=sys.stderr)
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    from repro.backbone.static_backbone import build_static_backbone
    from repro.cluster.lowest_id import lowest_id_clustering
    from repro.graph.traversal import bfs_distances
    from repro.routing.cluster_routing import backbone_route

    net = _obtain_network(args)
    backbone = build_static_backbone(lowest_id_clustering(net.graph))
    nodes = net.graph.nodes()
    source = args.source if args.source is not None else nodes[0]
    target = args.target if args.target is not None else nodes[-1]
    route = backbone_route(backbone, source, target)
    optimal = bfs_distances(net.graph, source).get(target)
    hops = len(route) - 1
    stretch = (hops / optimal) if optimal else 1.0
    print(f"route {source} -> {target}: {' -> '.join(map(str, route))}")
    print(f"{hops} hops (shortest possible {optimal}, stretch "
          f"{stretch:.2f}); relays all on the {backbone.size}-node backbone")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="manet-backbone",
        description="Cluster-based backbone infrastructure for broadcasting "
                    "in MANETs (Lou & Wu, IPPS 2003).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="sample a connected network to JSON")
    _add_network_args(p)
    p.add_argument("--out", required=True, help="output JSON file")
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("cluster", help="cluster a network")
    _add_network_args(p)
    p.add_argument("--render", action="store_true", help="ASCII rendering")
    p.set_defaults(func=_cmd_cluster)

    p = sub.add_parser("backbone", help="build and verify a backbone")
    _add_network_args(p)
    p.add_argument("--algorithm", choices=["static", "mo-cds"],
                   default="static")
    p.add_argument("--policy", choices=["2.5", "3"], default="2.5",
                   help="coverage policy (static backbone only)")
    p.add_argument("--render", action="store_true", help="ASCII rendering")
    p.set_defaults(func=_cmd_backbone)

    p = sub.add_parser("broadcast", help="run one broadcast")
    _add_network_args(p)
    p.add_argument("--protocol",
                   choices=["flooding", "static", "dynamic", "mo-cds"],
                   default="dynamic")
    p.add_argument("--policy", choices=["2.5", "3"], default="2.5")
    p.add_argument("--pruning", choices=["none", "basic", "full"],
                   default="full")
    p.add_argument("--source", type=int, default=None,
                   help="source node id (default: smallest id)")
    p.set_defaults(func=_cmd_broadcast)

    p = sub.add_parser("experiment", help="regenerate a paper figure")
    p.add_argument("figure", choices=["fig6", "fig7", "fig8", "flooding"])
    p.add_argument("--quick", action="store_true",
                   help="reduced trial counts (fast, noisier)")
    p.add_argument("--ci", action="store_true",
                   help="print confidence half-widths")
    p.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p.add_argument("--csv", help="also write rows to this CSV file")
    p.add_argument("--json", help="also write records to this JSON file")
    p.add_argument("--backend", choices=["serial", "thread", "process"],
                   default=None,
                   help="execution backend (results are identical; process "
                        "uses real multi-core workers)")
    p.add_argument("--parallel", type=int, default=1,
                   help="worker count for the pooled backends")
    _add_resilience_args(p)
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser(
        "perf", help="per-stage wall-clock attribution for a figure sweep"
    )
    p.add_argument("--figure",
                   choices=["fig6", "fig7", "fig8", "flooding", "mobility"],
                   default="fig6",
                   help="'mobility' times the kernel maintenance session "
                        "(step/delta/repair breakdown) instead of a "
                        "figure sweep")
    p.add_argument("--paper", action="store_true",
                   help="full paper environment (default: quick); for "
                        "mobility, n=10000 x 10 ticks instead of "
                        "n=2000 x 5")
    p.add_argument("--backend", choices=["serial", "thread"],
                   default="serial",
                   help="stage counters are process-local, so attribution "
                        "supports the in-process backends only")
    p.add_argument("--parallel", type=int, default=1)
    p.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p.add_argument("--mem", action="store_true",
                   help="also sample per-stage memory (tracemalloc net "
                        "allocation and peak, plus process peak RSS)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.set_defaults(func=_cmd_perf)

    p = sub.add_parser("trace", help="distributed protocol message trace")
    _add_network_args(p)
    p.add_argument("--figure3", action="store_true",
                   help="use the paper's Figure 3 example network")
    p.add_argument("--policy", choices=["2.5", "3"], default="2.5")
    p.add_argument("--source", type=int, default=None)
    p.add_argument("--limit", type=int, default=60,
                   help="max trace lines to print")
    p.add_argument("--channel", choices=["none", "ideal", "sinr"],
                   default="none",
                   help="PHY model for the data-plane broadcast "
                        "(construction always runs ideal)")
    p.add_argument("--mac", choices=["instant", "csma", "tdma"],
                   default="instant",
                   help="contention MAC under the chosen channel")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("ratio", help="empirical MCDS approximation ratios")
    p.add_argument("--samples", type=int, default=10)
    p.add_argument("--nodes", "-n", type=int, default=14)
    p.add_argument("--degree", "-d", type=float, default=5.0)
    p.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p.set_defaults(func=_cmd_ratio)


    p = sub.add_parser("svg", help="export the network/backbone as SVG")
    _add_network_args(p)
    p.add_argument("--out", required=True, help="output .svg file")
    p.add_argument("--backbone", action="store_true",
                   help="draw the static backbone roles and connectors")
    p.add_argument("--policy", choices=["2.5", "3"], default="2.5")
    p.add_argument("--no-labels", action="store_true")
    p.set_defaults(func=_cmd_svg)

    p = sub.add_parser("robustness", help="delivery ratio under channel loss")
    p.add_argument("--nodes", "-n", type=int, default=50)
    p.add_argument("--degree", "-d", type=float, default=10.0)
    p.add_argument("--trials", type=int, default=10)
    p.add_argument("--losses", type=float, nargs="+",
                   default=[0.0, 0.1, 0.2, 0.3])
    p.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p.set_defaults(func=_cmd_robustness)

    p = sub.add_parser(
        "faults",
        help="delivery under fault schedules (crashes, cuts, loss windows)",
    )
    _add_network_args(p)
    p.add_argument("--schedule", metavar="FILE",
                   help="run one fixed JSON fault schedule instead of a "
                        "random sweep")
    p.add_argument("--source", type=int, default=None,
                   help="source node id for --schedule (default smallest)")
    p.add_argument("--loss", type=float, default=0.0,
                   help="channel loss for --schedule runs")
    p.add_argument("--losses", type=float, nargs="+",
                   default=[0.0, 0.1, 0.2, 0.3],
                   help="loss probabilities of the sweep")
    p.add_argument("--trials", type=int, default=8)
    p.add_argument("--crash-fraction", type=float, default=0.1)
    p.add_argument("--json", help="also write sweep points to this JSON file")
    p.add_argument("--backend", choices=["serial", "thread", "process"],
                   default=None,
                   help="execution backend for the sweep (identical results)")
    p.add_argument("--parallel", type=int, default=1)
    _add_resilience_args(p)
    p.set_defaults(func=_cmd_faults)

    p = sub.add_parser(
        "channel",
        help="delivery under SINR interference and MAC contention",
    )
    p.add_argument("--nodes", "-n", type=int, default=100)
    p.add_argument("--degree", "-d", type=float, default=8.0)
    p.add_argument("--trials", type=int, default=8)
    p.add_argument("--losses", type=float, nargs="+", default=[0.0],
                   help="i.i.d. loss probabilities swept on top of the "
                        "interference (default: pure interference)")
    p.add_argument("--mac", choices=["instant", "csma", "tdma"],
                   default="csma")
    p.add_argument("--alpha", type=float, default=3.0,
                   help="pathloss exponent")
    p.add_argument("--threshold", type=float, default=4.0,
                   help="required SINR (linear)")
    p.add_argument("--noise-margin", type=float, default=2.0,
                   help="clear-channel SNR headroom of a max-range link")
    p.add_argument("--frame", type=int, default=8,
                   help="TDMA frame length (tdma MAC only)")
    p.add_argument("--crash-fraction", type=float, default=0.0,
                   help="per-trial crashed-node fraction (the fault sweep "
                        "under interference)")
    p.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p.add_argument("--json", help="also write sweep points to this JSON "
                                  "file (fault-sweep schema)")
    p.add_argument("--backend", choices=["serial", "thread", "process"],
                   default=None,
                   help="execution backend for the sweep (identical results)")
    p.add_argument("--parallel", type=int, default=1)
    _add_resilience_args(p)
    p.set_defaults(func=_cmd_channel)

    p = sub.add_parser("mobility", help="backbone churn under movement")
    _add_network_args(p)
    p.add_argument("--model", choices=["walk", "waypoint"], default="walk")
    p.add_argument("--speed", type=float, default=2.0)
    p.add_argument("--ticks", type=int, default=10)
    p.set_defaults(func=_cmd_mobility)


    p = sub.add_parser(
        "serve",
        help="run the crash-safe experiment daemon on a unix socket",
    )
    p.add_argument("--socket", required=True,
                   help="unix socket path to listen on")
    p.add_argument("--root", required=True,
                   help="durable state directory (request manifests and "
                        "journals; recovery scans it on start)")
    p.add_argument("--backend", choices=["serial", "thread", "process"],
                   default="process",
                   help="warm-pool backend shared across requests")
    p.add_argument("--parallel", type=int, default=2,
                   help="worker count of the warm pool")
    p.add_argument("--queue-limit", type=int, default=16,
                   help="hard admission bound (urgent requests shed here)")
    p.add_argument("--watermark", type=int, default=None,
                   help="depth at which normal requests shed with "
                        "'overloaded' (default: queue-limit/2)")
    p.add_argument("--retries", type=int, default=None,
                   help="supervised retry budget per wave chunk (default 2)")
    p.add_argument("--chunk-timeout", type=float, default=None,
                   help="supervised per-chunk deadline in seconds")
    p.add_argument("--deadline", type=float, default=None,
                   help="default per-request deadline in seconds")
    p.add_argument("--drain-grace", type=float, default=30.0,
                   help="seconds to wait for accepted work on "
                        "SIGTERM/SIGINT before exiting (leftovers are "
                        "recovered on the next start)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("route", help="unicast route over the backbone")
    _add_network_args(p)
    p.add_argument("--source", type=int, default=None)
    p.add_argument("--target", type=int, default=None)
    p.set_defaults(func=_cmd_route)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return int(args.func(args))
    except Exception as exc:  # surface library errors as clean CLI failures
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
