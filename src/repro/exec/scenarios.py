"""Cross-experiment scenario cache: draw each network sample once.

The paper's environment rejects disconnected samples, and at sparse
settings (d=6, n=20) most draws *are* disconnected — so the connected
network sample is the single most expensive ingredient of a trial.  Before
this cache, every experiment re-drew and re-rejected its own samples even
when figures 6, 7 and 8 wanted the *same* environment point.

A scenario is keyed by ``(n, degree, area, torus, root, index)``; its
random stream is derived from the key alone (not from any experiment's
trial stream), so any two experiments that agree on the environment and
trial index get the **same** connected sample — pairing across experiments,
not just within one.  Derived structures that are pure functions of the
graph (lowest-ID clustering) are memoized on the scenario as well.

Sharing contract: cached :class:`~repro.graph.network.Network` objects (and
their clusterings) are handed to many trials — treat them as immutable, as
all library algorithms already do.  The cache is per-process: worker
processes of the ``process`` backend each warm their own copy, so the hit
rate there depends on which worker sees which index (the serial and thread
backends always hit).
"""

from __future__ import annotations

import os
import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.cluster.lowest_id import lowest_id_clustering
from repro.cluster.state import ClusterStructure
from repro.errors import ConfigurationError
from repro.geometry.area import Area
from repro.graph.network import Network

#: Default bound on cached scenarios (override with the
#: ``REPRO_SCENARIO_CACHE_SIZE`` environment variable; 0 disables caching).
DEFAULT_MAXSIZE = int(os.environ.get("REPRO_SCENARIO_CACHE_SIZE", "1024"))


def _float_bits(x: float) -> int:
    """Stable 64-bit key material for a float (no equality-on-repr games)."""
    return struct.unpack("<Q", struct.pack("<d", float(x)))[0]


@dataclass(frozen=True)
class ScenarioKey:
    """Identity of one network sample, independent of any experiment.

    Attributes:
        n: Number of nodes.
        degree: Target average degree.
        width/height: Working-area extents.
        torus: Whether distances wrap around the area.
        root: The environment's root seed (experiments sharing a root pair
            up; distinct roots stay independent).
        index: Trial index within the environment point.
    """

    n: int
    degree: float
    width: float
    height: float
    torus: bool
    root: int
    index: int

    def seed_sequence(self) -> np.random.SeedSequence:
        """The scenario's own random stream, derived from the key alone."""
        return np.random.SeedSequence((
            self.root & 0xFFFFFFFFFFFFFFFF,
            self.n,
            _float_bits(self.degree),
            _float_bits(self.width),
            _float_bits(self.height),
            int(self.torus),
            self.index,
        ))


class Scenario:
    """One cached sample: the network plus memoized derived structures."""

    __slots__ = ("network", "_clustering", "_kernel_assets")

    def __init__(self, network: Network) -> None:
        self.network = network
        self._clustering: Optional[ClusterStructure] = None
        # Lazily populated by repro.broadcast.kernels.scenario_assets —
        # typed as object to keep this module free of broadcast imports.
        self._kernel_assets: Optional[object] = None

    @property
    def clustering(self) -> ClusterStructure:
        """Lowest-ID clustering of the sample (computed once, shared)."""
        if self._clustering is None:
            self._clustering = lowest_id_clustering(self.network.graph)
        return self._clustering


class ScenarioCache:
    """A bounded, thread-safe LRU of :class:`Scenario` objects."""

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE) -> None:
        if maxsize < 0:
            raise ConfigurationError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[ScenarioKey, Scenario]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: ScenarioKey) -> Scenario:
        """The scenario for ``key``, drawn on first use."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry
            self.misses += 1
        # Draw outside the lock: sampling can take many rejection rounds,
        # and concurrent trials for *different* keys must not serialise.
        # A rare duplicate draw for the same key is deterministic anyway.
        entry = Scenario(self._draw(key))
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                return existing
            self._entries[key] = entry
            while self.maxsize and len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return entry

    @staticmethod
    def _draw(key: ScenarioKey) -> Network:
        from repro.graph.generators import random_geometric_network

        return random_geometric_network(
            key.n,
            key.degree,
            area=Area(key.width, key.height),
            torus=key.torus,
            rng=np.random.default_rng(key.seed_sequence()),
        )

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> Dict[str, int]:
        """``{"entries": ..., "hits": ..., "misses": ...}``."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_DEFAULT_CACHE = ScenarioCache()


def get_scenario_cache() -> ScenarioCache:
    """The process-wide default cache (workers each hold their own)."""
    return _DEFAULT_CACHE


def connected_scenario(
    n: int,
    degree: float,
    *,
    area: Optional[Area] = None,
    torus: bool = False,
    root: int = 0,
    index: int = 0,
    cache: Optional[ScenarioCache] = None,
) -> Scenario:
    """The cached connected sample for one ``(environment, trial)`` point."""
    area = area or Area.paper()
    key = ScenarioKey(
        n=int(n), degree=float(degree), width=float(area.width),
        height=float(area.height), torus=bool(torus), root=int(root),
        index=int(index),
    )
    target = cache if cache is not None else _DEFAULT_CACHE
    if target.maxsize == 0:
        return Scenario(ScenarioCache._draw(key))
    return target.get(key)


def connected_network(
    n: int,
    degree: float,
    *,
    area: Optional[Area] = None,
    torus: bool = False,
    root: int = 0,
    index: int = 0,
    cache: Optional[ScenarioCache] = None,
) -> Network:
    """:func:`connected_scenario`, returning just the network."""
    return connected_scenario(
        n, degree, area=area, torus=torus, root=root, index=index,
        cache=cache,
    ).network


_POSITIONS: Dict[Tuple[int, int, int, int, int], np.ndarray] = {}
_POSITIONS_LOCK = threading.Lock()


def scenario_positions(
    n: int,
    area: Area,
    *,
    root: int = 0,
    index: int = 0,
) -> np.ndarray:
    """Cached uniform placements for samples that skip connectivity rejection.

    The scaling study processes the giant component of a raw placement
    rather than rejection-sampling connectivity (hopeless at n=3000); this
    gives it the same draw-once semantics, keyed like a scenario, while its
    pipeline-stage timings still measure construction on every run.  The
    returned array is shared — copy before mutating.
    """
    key = (int(n), _float_bits(area.width), _float_bits(area.height),
           int(root), int(index))
    with _POSITIONS_LOCK:
        pts = _POSITIONS.get(key)
    if pts is None:
        from repro.geometry.placement import uniform_placement

        seq = np.random.SeedSequence(
            (key[0], key[1], key[2], key[3] & 0xFFFFFFFFFFFFFFFF, key[4]))
        pts = uniform_placement(n, area, np.random.default_rng(seq))
        pts.setflags(write=False)
        with _POSITIONS_LOCK:
            _POSITIONS[key] = pts
    return pts
