"""Crash-safe run journaling: every folded trial durable, runs resumable.

A long Monte-Carlo sweep that dies — OOM kill, preempted spot instance,
``kill -9``, power loss — should cost the trials in flight, not the run.
:class:`RunJournal` makes the folded outcomes durable as they happen:

* **append-only JSONL** — one self-contained record per folded trial
  (``{"point": <label>, "index": <trial index>, "values": {...}}``),
  written with a trailing newline in a single ``write`` and **fsync'd**, so
  a record either exists completely or not at all;
* an **atomic header** — the first line carries the format marker and the
  *run key* (the caller's JSON description of everything that determines
  the trial streams: command, seed, environment).  The header is written
  via a temp file + ``os.replace``, so a journal file is never observable
  half-initialised, and a resume against a journal whose key differs
  raises :class:`~repro.errors.JournalError` instead of silently folding
  foreign trials;
* **torn-tail tolerance** — a crash mid-append leaves at most one partial
  final line; on open it is detected, dropped and truncated away.  A
  malformed record anywhere *else* is real corruption and raises, and so
  does a torn *header* (a file with no complete first line cannot carry a
  verifiable run key — the serve recovery scan treats that as "restart
  this run from nothing", see :mod:`repro.serve.recovery`);
* a **single-writer lock** — opening a journal takes an exclusive
  advisory lock (``flock``) on the file plus an in-process registration,
  and a second open of the same path raises :class:`JournalError` while
  the first is live.  Two writers interleaving fsync'd appends would
  corrupt the contiguous-prefix invariant that resume depends on, so the
  daemon's restart scan can trust that a lockable journal has no
  surviving owner.

Resume semantics (see :func:`repro.workload.trials.paired_trials`): the
journal of one experiment point always holds a contiguous prefix
``0..k-1`` of folded trials, because trials are folded — and journaled —
in trial-index order.  On resume the prefix is replayed into the fold and
the trial-stream spawn counter is advanced past it, so trial ``k`` onward
consumes exactly the child streams it would have consumed in an
uninterrupted run: the resumed estimates are **bit-identical**.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Set, Union

try:  # POSIX advisory locking; degrade to in-process-only elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.errors import JournalError

PathLike = Union[str, Path]

JOURNAL_FORMAT = "repro-run-journal"
_JOURNAL_VERSION = 1

#: In-process single-writer registry (absolute paths of open journals).
#: The flock below already covers same-process double opens on POSIX;
#: this registry keeps the guarantee where fcntl is unavailable.
_OPEN_PATHS: Set[str] = set()
_OPEN_LOCK = threading.Lock()


def _normalise_key(key: Mapping) -> dict:
    """A run key as it round-trips through JSON (tuples become lists)."""
    try:
        return json.loads(json.dumps(key, sort_keys=True))
    except (TypeError, ValueError) as exc:
        raise JournalError(f"run key is not JSON-serialisable: {exc}") from None


class RunJournal:
    """The durable trial log of one run; see the module docstring.

    Construct through :meth:`open`; hand per-point views from
    :meth:`point` to :func:`~repro.workload.trials.paired_trials`.
    """

    def __init__(self, path: Path, run_key: dict,
                 records: Dict[str, Dict[int, Mapping[str, float]]]) -> None:
        """Internal constructor — use :meth:`open`."""
        self.path = path
        self.run_key = run_key
        self._records = records
        self._locked_path: Optional[str] = None
        self._fh = open(path, "a", encoding="utf-8")
        try:
            self._acquire_writer_lock()
        except BaseException:
            self._fh.close()
            self._fh = None
            raise

    def _acquire_writer_lock(self) -> None:
        """Become the journal's single writer or raise :class:`JournalError`."""
        resolved = str(Path(self.path).resolve())
        with _OPEN_LOCK:
            if resolved in _OPEN_PATHS:
                raise JournalError(
                    f"journal {self.path} is already open for writing in "
                    f"this process; a journal has exactly one writer"
                )
            _OPEN_PATHS.add(resolved)
        if fcntl is not None:
            try:
                fcntl.flock(self._fh.fileno(),
                            fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                with _OPEN_LOCK:
                    _OPEN_PATHS.discard(resolved)
                raise JournalError(
                    f"journal {self.path} is locked by another writer "
                    f"(live process); refusing the concurrent open"
                ) from None
        self._locked_path = resolved

    # -- lifecycle --------------------------------------------------------

    @classmethod
    def open(cls, path: PathLike, run_key: Mapping, *,
             resume: bool = False) -> "RunJournal":
        """Open (creating or resuming) the journal at ``path``.

        Args:
            path: Journal file location.
            run_key: JSON-serialisable description of the run
                configuration; a resumed journal must carry an equal key.
            resume: If ``True``, an existing journal is validated, its
                torn tail (if any) truncated, and its records become
                replayable; a missing file simply starts fresh.  If
                ``False``, an existing file is refused — mixing two runs
                in one journal is never what anyone wants.

        Raises:
            JournalError: Key mismatch, version mismatch, or corruption
                that is not a torn tail.
        """
        path = Path(path)
        key = _normalise_key(run_key)
        if not path.exists():
            cls._create(path, key)
            return cls(path, key, {})
        if not resume:
            raise JournalError(
                f"journal {path} already exists; resume it with --resume "
                f"or remove the file to start over"
            )
        records = cls._load(path, key)
        return cls(path, key, records)

    @staticmethod
    def _create(path: Path, key: dict) -> None:
        """Atomically materialise a fresh journal holding only the header."""
        header = json.dumps(
            {"format": JOURNAL_FORMAT, "version": _JOURNAL_VERSION,
             "run": key},
            sort_keys=True, separators=(",", ":"),
        )
        fd, tmp = tempfile.mkstemp(dir=str(path.parent) or ".",
                                   prefix=path.name + ".", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(header + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @staticmethod
    def _load(path: Path,
              key: dict) -> Dict[str, Dict[int, Mapping[str, float]]]:
        """Parse an existing journal, truncating a torn tail in place."""
        raw = path.read_bytes()
        newline = raw.find(b"\n")
        if newline < 0:
            raise JournalError(f"{path} has no complete header line")
        try:
            header = json.loads(raw[:newline].decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise JournalError(f"{path} header is not JSON: {exc}") from None
        if not isinstance(header, dict) or \
                header.get("format") != JOURNAL_FORMAT:
            raise JournalError(f"{path} is not a {JOURNAL_FORMAT} file")
        if header.get("version") != _JOURNAL_VERSION:
            raise JournalError(
                f"unsupported journal version {header.get('version')!r}"
            )
        if header.get("run") != key:
            raise JournalError(
                f"journal {path} was written by a different run "
                f"configuration; refusing to resume (journal key "
                f"{header.get('run')!r} != current {key!r})"
            )
        records: Dict[str, Dict[int, Mapping[str, float]]] = {}
        offset = newline + 1
        good_end = offset
        body = raw[offset:]
        lines = body.split(b"\n")
        # A complete record always ends with the newline written in the
        # same append; bytes after the final newline are a torn tail.
        complete, tail = lines[:-1], lines[-1]
        for i, line in enumerate(complete):
            if not line.strip():
                good_end += len(line) + 1
                continue
            try:
                rec = json.loads(line.decode("utf-8"))
                point = rec["point"]
                index = int(rec["index"])
                values = {str(k): float(v)
                          for k, v in rec["values"].items()}
            except (json.JSONDecodeError, UnicodeDecodeError, KeyError,
                    TypeError, ValueError, AttributeError):
                if i == len(complete) - 1 and not tail:
                    # Torn tail that happened to include a newline-free
                    # flush boundary: drop the unparseable final line.
                    break
                raise JournalError(
                    f"{path}: corrupt journal record at byte {good_end}: "
                    f"{line[:120]!r}"
                ) from None
            records.setdefault(str(point), {})[index] = values
            good_end += len(line) + 1
        if good_end < len(raw):
            with open(path, "r+b") as fh:
                fh.truncate(good_end)
        return records

    def close(self) -> None:
        """Flush and close the journal file, releasing the writer lock
        (idempotent)."""
        if self._fh is not None:
            self._fh.close()  # closing the fd also drops the flock
            self._fh = None
        if self._locked_path is not None:
            with _OPEN_LOCK:
                _OPEN_PATHS.discard(self._locked_path)
            self._locked_path = None

    def __enter__(self) -> "RunJournal":
        """Context-manager entry: the open journal itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the journal."""
        self.close()

    # -- record access ----------------------------------------------------

    def record(self, point: str, index: int,
               values: Mapping[str, float]) -> None:
        """Durably append one folded trial (idempotent per (point, index))."""
        if self._fh is None:
            raise JournalError(f"journal {self.path} is closed")
        existing = self._records.get(point, {})
        if index in existing:
            return
        clean = {str(k): float(v) for k, v in values.items()}
        line = json.dumps(
            {"point": point, "index": index, "values": clean},
            separators=(",", ":"),
        )
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._records.setdefault(point, {})[index] = clean

    def replay(self, point: str) -> List[Mapping[str, float]]:
        """The journaled prefix of ``point``, in trial-index order.

        Raises:
            JournalError: The recorded indices are not the contiguous
                prefix ``0..k-1`` (folding order makes gaps impossible in
                an honest journal, so a gap means corruption).
        """
        recorded = self._records.get(point, {})
        values: List[Mapping[str, float]] = []
        for i in range(len(recorded)):
            if i not in recorded:
                raise JournalError(
                    f"journal {self.path} point {point!r} has a gap at "
                    f"trial {i} ({len(recorded)} records)"
                )
            values.append(recorded[i])
        return values

    def point(self, label: str) -> "PointJournal":
        """A per-experiment-point view bound to ``label``."""
        return PointJournal(self, label)

    @property
    def points(self) -> List[str]:
        """Labels with at least one journaled trial, in insertion order."""
        return list(self._records)

    def counts(self) -> Mapping[str, int]:
        """Journaled trial count per point label."""
        return {point: len(recs) for point, recs in self._records.items()}


class PointJournal:
    """One experiment point's slice of a :class:`RunJournal`.

    The object :func:`~repro.workload.trials.paired_trials` consumes:
    ``replay_prefix()`` before the first wave, ``record()`` after every
    fold.
    """

    def __init__(self, journal: RunJournal, label: str) -> None:
        """Bind ``label`` within ``journal``."""
        self.journal = journal
        self.label = label

    def replay_prefix(self) -> List[Mapping[str, float]]:
        """Previously folded trials ``0..k-1`` of this point, in order."""
        return self.journal.replay(self.label)

    def record(self, index: int, values: Mapping[str, float]) -> None:
        """Durably journal trial ``index`` of this point."""
        self.journal.record(self.label, index, values)


def open_journal(path: PathLike, run_key: Mapping, *,
                 resume: bool = False) -> Optional[RunJournal]:
    """CLI convenience: ``RunJournal.open`` for a truthy ``path``, else None."""
    if not path:
        return None
    return RunJournal.open(path, run_key, resume=resume)
