"""Execution backends: where paired trials actually run.

Three interchangeable strategies behind one contract:

* ``serial`` — inline in the calling thread.  The reference backend: the
  other two must reproduce its results bit for bit.
* ``thread`` — a ``ThreadPoolExecutor``.  Useful only when the trial
  function releases the GIL (IO, heavy numpy); the pure-Python trial
  pipeline is GIL-bound and sees near-zero speedup here.
* ``process`` — a persistent ``ProcessPoolExecutor``.  Real multi-core
  execution: trials cross the boundary as a :class:`~repro.exec.spec.TrialSpec`
  plus per-trial seed sequences (both tiny and picklable); workers resolve
  the spec once and keep it memoized, so steady-state submissions pickle a
  few hundred bytes per chunk, never the trial function.

The determinism contract all three share: a wave of trials is described by
``(start_index, seed_sequences)`` where trial ``i`` always consumes spawned
child stream ``i``; backends return results **in trial-index order**, so the
caller's fold is independent of scheduling, worker count and chunking.

Backends are cheap to construct but pools are not, so :func:`shared_backend`
hands out process/thread backends memoized per worker count — a figure
sweep's ten experiment points reuse one warm pool instead of forking eight
workers per point.
"""

from __future__ import annotations

import atexit
import math
import threading
from abc import ABC, abstractmethod
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.exec.spec import IndexedTrialFn, TrialSpec, resolve_cached

#: Names accepted by :func:`as_backend` / ``paired_trials(backend=...)``.
BACKENDS = ("serial", "thread", "process")


def _validate_workers(workers: int) -> None:
    """Reject non-positive worker counts before any pool is touched."""
    if not isinstance(workers, int) or isinstance(workers, bool):
        raise ConfigurationError(
            f"workers must be an int >= 1, got {workers!r}"
        )
    if workers < 1:
        raise ConfigurationError(
            f"backend needs workers >= 1, got {workers}"
        )


class TrialJob:
    """One runnable trial description: a spec, or an in-process callable.

    ``fn`` takes only a generator (the legacy closure contract); ``spec``
    resolves to an indexed trial ``(index, generator) -> metrics``.  Exactly
    one of the two is set.
    """

    __slots__ = ("spec", "fn", "_resolved")

    def __init__(self, *, spec: Optional[TrialSpec] = None,
                 fn: Optional[Callable] = None) -> None:
        if (spec is None) == (fn is None):
            raise ConfigurationError("a trial job needs a spec or a "
                                     "function, not both")
        self.spec = spec
        self.fn = fn
        self._resolved: Optional[IndexedTrialFn] = None

    def call(self, index: int, generator: np.random.Generator
             ) -> Mapping[str, float]:
        """Execute the trial in the current process."""
        if self.fn is not None:
            return self.fn(generator)
        if self._resolved is None:
            self._resolved = resolve_cached(self.spec)  # type: ignore[arg-type]
        return self._resolved(index, generator)

    def batch_fn(self) -> Optional[Callable]:
        """The resolved trial's whole-wave entry point, if it declares one.

        A spec-resolved trial may carry a ``run_batch`` attribute taking
        ``[(index, generator), ...]`` and returning the metrics in item
        order — the seam the array broadcast kernels use to evaluate a
        whole wave per invocation.  The contract is bit-exactness: batch
        results must equal per-item :meth:`call` results.  Legacy closures
        (``fn``) never batch.
        """
        if self.spec is None:
            return None
        if self._resolved is None:
            self._resolved = resolve_cached(self.spec)
        return getattr(self._resolved, "run_batch", None)


class ExecutionBackend(ABC):
    """The pluggable execution strategy behind ``paired_trials``."""

    name: str

    @abstractmethod
    def run_wave(self, job: TrialJob, start_index: int,
                 seeds: Sequence[np.random.SeedSequence]
                 ) -> List[Mapping[str, float]]:
        """Run trials ``start_index .. start_index+len(seeds)-1``.

        Returns:
            One metrics mapping per trial, **in trial-index order**.
        """

    def close(self) -> None:
        """Release pooled resources (idempotent; no-op by default)."""

    def abandon(self) -> None:
        """Discard a (possibly wedged) pool without waiting for it.

        The supervision layer calls this after a worker crash or a hung
        chunk: the current pool is written off — workers are killed where
        the platform allows it — and the next wave transparently builds a
        fresh one.  Defaults to :meth:`close` for backends with nothing to
        kill.
        """
        self.close()


class SerialBackend(ExecutionBackend):
    """Inline execution — the bit-exact reference for the pooled backends."""

    name = "serial"

    def run_wave(self, job, start_index, seeds):
        batch = job.batch_fn()
        if batch is not None:
            return list(batch([
                (start_index + k, np.random.default_rng(seq))
                for k, seq in enumerate(seeds)
            ]))
        return [
            job.call(start_index + k, np.random.default_rng(seq))
            for k, seq in enumerate(seeds)
        ]


class _PooledBackend(ExecutionBackend):
    """Shared wave logic for executor-pool backends."""

    def __init__(self, workers: int) -> None:
        _validate_workers(workers)
        self.workers = workers
        self._pool: Optional[Executor] = None
        self._pool_lock = threading.Lock()

    @abstractmethod
    def _make_pool(self) -> Executor:
        ...

    def _ensure_pool(self) -> Executor:
        # Guarded: the supervision layer runs chunks from concurrent
        # watchdog threads, and an unlocked check-then-create would leak a
        # second pool when two of them arrive at a rebuilt backend at once.
        with self._pool_lock:
            if self._pool is None:
                self._pool = self._make_pool()
            return self._pool

    def _take_pool(self) -> Optional[Executor]:
        """Detach the current pool under the lock (None when already gone).

        Close/abandon first *swap* the reference atomically and only then
        shut the detached pool down outside the lock: two concurrent
        closers each shut down at most their own detached pool (double
        close is a no-op), and a close racing a rebuild either takes the
        fresh pool or leaves it for the next wave — never shuts down a
        pool another thread is still installing.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
            return pool

    def close(self) -> None:
        pool = self._take_pool()
        if pool is not None:
            pool.shutdown()

    def _submit_wave(self, submit):
        """Run ``submit(pool)`` against a live pool, resubmitting if a
        concurrent ``close``/``abandon`` shut the pool down between
        ``_ensure_pool`` returning it and the submission landing.  Safe
        because waves are idempotent (pure functions of their
        ``(index, seed)`` items) — a resubmitted wave returns
        bit-identical results.
        """
        while True:
            pool = self._ensure_pool()
            try:
                return submit(pool)
            except RuntimeError as exc:
                if "shutdown" not in str(exc):
                    raise


def _run_spec_chunk(spec: TrialSpec,
                    items: List[Tuple[int, np.random.SeedSequence]]
                    ) -> List[Mapping[str, float]]:
    """Worker entry point: resolve ``spec`` (memoized) and run its items."""
    fn = resolve_cached(spec)
    batch = getattr(fn, "run_batch", None)
    if batch is not None:
        return list(batch([
            (index, np.random.default_rng(seq)) for index, seq in items
        ]))
    return [fn(index, np.random.default_rng(seq)) for index, seq in items]


def _chunk(items: list, pieces: int) -> List[list]:
    """Split ``items`` into at most ``pieces`` contiguous runs."""
    size = max(1, math.ceil(len(items) / max(1, pieces)))
    return [items[i:i + size] for i in range(0, len(items), size)]


class ThreadBackend(_PooledBackend):
    """Thread-pool execution.

    Kept for trial functions that release the GIL; for the pure-Python
    pipeline prefer :class:`ProcessBackend`.  Accepts both closures and
    specs (nothing crosses a process boundary).  Batch-capable trials run
    per item here — interleaving items across threads is the point, and
    bit-exactness makes the two routes indistinguishable.
    """

    name = "thread"

    def _make_pool(self) -> Executor:
        return ThreadPoolExecutor(max_workers=self.workers)

    def abandon(self) -> None:
        """Drop the pool without joining its threads.

        Threads cannot be killed, so a genuinely hung trial keeps its
        thread until the function returns; pending work is cancelled and
        the pool reference is dropped so the next wave starts fresh.
        """
        pool = self._take_pool()
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def run_wave(self, job, start_index, seeds):
        indexed = list(enumerate(seeds, start=start_index))
        return self._submit_wave(lambda pool: list(pool.map(
            lambda item: job.call(item[0], np.random.default_rng(item[1])),
            indexed,
        )))


class ProcessBackend(_PooledBackend):
    """Process-pool execution: real multi-core throughput.

    The pool is persistent (created on first wave, reused until
    :meth:`close`); work ships as ``(spec, [(index, seed), ...])`` chunks —
    roughly one chunk per worker per wave — and results come back in chunk
    order, which is trial-index order.
    """

    name = "process"

    def _make_pool(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.workers)

    def abandon(self) -> None:
        """Kill the worker processes and write the pool off.

        Used to reclaim a *hung* pool: killing the workers breaks the
        executor, which promptly fails every outstanding future (so a
        supervisor thread blocked on a wedged chunk unblocks instead of
        waiting forever), and the dead pool is dropped for
        :meth:`_ensure_pool` to rebuild on the next wave.
        """
        pool = self._take_pool()
        if pool is None:
            return
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.kill()
            except Exception:  # pragma: no cover - best-effort cleanup
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def run_wave(self, job, start_index, seeds):
        if job.spec is None:
            raise ConfigurationError(
                "the process backend needs a picklable TrialSpec; plain "
                "trial closures cannot cross the process boundary — build "
                "the trial with TrialSpec.create(...) or use the serial/"
                "thread backend"
            )
        items = list(enumerate(seeds, start=start_index))
        chunks = _chunk(items, self.workers)

        def submit(pool):
            futures = [
                pool.submit(_run_spec_chunk, job.spec, chunk)
                for chunk in chunks
            ]
            results: List[Mapping[str, float]] = []
            for future in futures:  # submission order == trial-index order
                results.extend(future.result())
            return results

        return self._submit_wave(submit)


_SHARED: Dict[Tuple[str, int], ExecutionBackend] = {}
_SHARED_LOCK = threading.Lock()

BackendLike = Union[None, str, ExecutionBackend]


def shared_backend(name: str, workers: int = 1) -> ExecutionBackend:
    """A memoized backend per ``(name, workers)`` — pools stay warm.

    Shared pools are shut down at interpreter exit (the registered
    :func:`shutdown_shared_backends` ``atexit`` hook) or explicitly.
    Registry access is lock-guarded: concurrent first requests for the
    same key get one backend, not one each.
    """
    _validate_workers(workers)
    if name == "serial":
        return SerialBackend()
    if name not in ("thread", "process"):
        raise ConfigurationError(
            f"unknown backend {name!r}; expected one of {BACKENDS}"
        )
    key = (name, workers)
    with _SHARED_LOCK:
        backend = _SHARED.get(key)
        if backend is None:
            if name == "thread":
                backend = ThreadBackend(workers)
            else:
                backend = ProcessBackend(workers)
            _SHARED[key] = backend
        return backend


def shutdown_shared_backends() -> None:
    """Close every pooled backend handed out by :func:`shared_backend`.

    Idempotent and safe against concurrent callers (and against a
    shared_backend() racing in): the registry is drained under the lock,
    each detached backend is closed outside it, and pooled ``close`` is
    itself idempotent — a backend that was already closed (or is closed
    twice by racing shutdowns) is a no-op.
    """
    while True:
        with _SHARED_LOCK:
            if not _SHARED:
                return
            _, backend = _SHARED.popitem()
        backend.close()


atexit.register(shutdown_shared_backends)


def as_backend(backend: BackendLike, workers: int = 1) -> ExecutionBackend:
    """Normalise ``backend`` (name, instance or ``None``) into an instance.

    ``None`` selects ``serial`` for one worker and ``thread`` for more —
    the backward-compatible default of ``paired_trials(parallel=)``.
    """
    _validate_workers(workers)
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None:
        backend = "serial" if workers <= 1 else "thread"
    if not isinstance(backend, str):
        raise ConfigurationError(
            f"backend must be a name or ExecutionBackend, got "
            f"{type(backend).__name__}"
        )
    return shared_backend(backend, workers)
