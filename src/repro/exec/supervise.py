"""Supervised execution: retry, timeout, pool recovery, graceful degrade.

The pooled backends in :mod:`repro.exec.backends` are *fast* but brittle:
one SIGKILLed worker breaks the whole ``ProcessPoolExecutor``, a trial that
never returns wedges the wave forever, and either failure aborts a run that
may already hold thousands of converged trials.  :class:`SupervisedBackend`
wraps any backend with the preemption-tolerance discipline of a training
stack:

* each wave is split into **chunks** (one per inner worker) and every chunk
  runs under a watchdog with an optional per-chunk timeout;
* failures are **classified** — ``crash`` (a broken executor or dead
  worker: ``BrokenExecutor``, ``BrokenPipeError``, ``MemoryError``),
  ``timeout`` (the chunk overran its deadline), ``fatal`` (an environment
  failure retrying cannot fix, e.g. ``ENOSPC``/``EROFS``) or ``transient``
  (any other exception, including retryable OS errors such as
  ``EMFILE``/``EAGAIN``) — while
  :class:`~repro.errors.ConfigurationError` is never retried, because a
  misconfigured job fails the same way every time, and ``fatal`` failures
  are re-raised immediately for the same reason;
* failed chunks are **retried** with capped exponential backoff plus jitter.
  Retrying is safe because chunks are idempotent: a chunk is a pure function
  of its ``(trial index, seed sequence)`` items, so a re-run returns
  bit-identical metrics and the caller's trial-index-ordered fold never sees
  the difference;
* a ``crash``/``timeout`` **abandons** the inner pool (killing its workers
  where possible) so the next attempt gets a fresh one, and after
  ``degrade_after`` pool-level failures the supervisor **degrades**
  ``process`` → ``thread`` → ``serial`` — trading speed for progress without
  changing a single estimate (the backends share one determinism contract);
* every decision is emitted as a structured :class:`ExecEvent` (collected on
  ``.events`` and forwarded to an optional ``on_event`` callback) so the CLI
  and the perf layer can surface what the supervisor had to survive.

A chunk that still fails after the retry budget raises
:class:`~repro.errors.ChunkRetryExhaustedError`: the supervisor degrades
around infrastructure failures, never around a trial that is itself broken.
"""

from __future__ import annotations

import errno
import random
import threading
import time
from concurrent.futures import BrokenExecutor
from dataclasses import asdict, dataclass
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ChunkRetryExhaustedError, ConfigurationError
from repro.exec.backends import (
    BackendLike,
    ExecutionBackend,
    SerialBackend,
    ThreadBackend,
    TrialJob,
    _chunk,
    as_backend,
)

#: Failure classes the supervisor distinguishes.
FAILURE_KINDS = ("crash", "timeout", "transient", "fatal")

#: OS errnos that a retry genuinely can fix: resource-exhaustion blips
#: (file descriptors, fork pressure) and interrupted syscalls.
_TRANSIENT_ERRNOS = frozenset({
    errno.EMFILE, errno.ENFILE, errno.EAGAIN, errno.EINTR,
})

#: OS errnos no retry can fix: a full or read-only filesystem fails the
#: same way on every attempt, so burning the retry budget only delays the
#: inevitable (and hides the real problem from the operator).
_FATAL_ERRNOS = frozenset({errno.ENOSPC, errno.EROFS, errno.EDQUOT})

#: The graceful-degradation ladder, fastest tier first.
DEGRADE_ORDER = ("process", "thread", "serial")


@dataclass(frozen=True)
class ExecEvent:
    """One structured supervision decision.

    Attributes:
        kind: ``"chunk-failure"`` (a chunk attempt failed),
            ``"retry"`` (failed chunks are about to re-run),
            ``"pool-rebuild"`` (the inner pool was abandoned),
            ``"degrade"`` (the inner backend moved down the ladder) or
            ``"give-up"`` (the retry budget ran out).
        backend: Name of the inner backend at the time of the event.
        failure: The classified failure (one of :data:`FAILURE_KINDS`), or
            ``None`` for events not tied to a failure.
        attempt: Zero-based attempt number the event belongs to.
        chunk_start: First trial index of the affected chunk (``None`` for
            pool-level events).
        chunk_size: Trial count of the affected chunk (``None`` likewise).
        detail: Human-readable context (exception repr, new tier, ...).
    """

    kind: str
    backend: str
    failure: Optional[str] = None
    attempt: int = 0
    chunk_start: Optional[int] = None
    chunk_size: Optional[int] = None
    detail: str = ""

    def to_dict(self) -> dict:
        """A JSON-serialisable view (the serve layer streams these)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "ExecEvent":
        """Rebuild an event from :meth:`to_dict` output (extras ignored)."""
        fields = {"kind", "backend", "failure", "attempt",
                  "chunk_start", "chunk_size", "detail"}
        return cls(**{k: v for k, v in dict(data).items() if k in fields})


class _ChunkTimeout(Exception):
    """Internal marker: a chunk overran its per-chunk deadline."""


def classify_failure(exc: BaseException) -> str:
    """Classify an execution failure into one of :data:`FAILURE_KINDS`.

    ``BrokenExecutor`` (including ``BrokenProcessPool``: a worker died or
    was killed), ``BrokenPipeError`` (a worker vanished mid-IPC) and
    ``MemoryError`` (recovering takes a fresh — and, after degradation, a
    smaller — pool) are a ``crash``; the internal timeout marker is a
    ``timeout``; ``OSError`` is split by errno — ``ENOSPC``/``EROFS``/
    ``EDQUOT`` are ``fatal`` (a full disk fails identically on every
    attempt), ``EMFILE``/``ENFILE``/``EAGAIN``/``EINTR`` are resource
    blips and stay ``transient``; everything else is ``transient``.
    Configuration errors are *not* classified — callers re-raise them,
    retrying cannot fix a bad job description.
    """
    if isinstance(exc, _ChunkTimeout):
        return "timeout"
    if isinstance(exc, BrokenExecutor):
        return "crash"
    if isinstance(exc, BrokenPipeError):  # pre-empts the OSError branch
        return "crash"
    if isinstance(exc, MemoryError):
        return "crash"
    if isinstance(exc, OSError):
        if exc.errno in _FATAL_ERRNOS:
            return "fatal"
        if exc.errno in _TRANSIENT_ERRNOS:
            return "transient"
    return "transient"


class SupervisedBackend(ExecutionBackend):
    """An :class:`ExecutionBackend` that survives its inner backend failing.

    Wraps another backend (instance or name) and runs each wave chunk
    under retry/timeout/backoff supervision with pool recovery and the
    ``process`` → ``thread`` → ``serial`` degradation ladder described in
    the module docstring.  Because retried chunks are idempotent and
    results are still returned in trial-index order, a supervised run
    produces estimates **bit-identical** to an undisturbed one.
    """

    name = "supervised"

    def __init__(
        self,
        inner: BackendLike = None,
        *,
        workers: int = 1,
        retries: int = 3,
        chunk_timeout: Optional[float] = None,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        degrade_after: int = 2,
        on_event: Optional[Callable[[ExecEvent], None]] = None,
        owns_inner: bool = True,
    ) -> None:
        """Wrap ``inner`` (a backend instance, name, or ``None``).

        Args:
            inner: The supervised backend; names resolve through
                :func:`~repro.exec.backends.as_backend` with ``workers``.
            workers: Worker count used when ``inner`` is a name/``None``.
            retries: Extra attempts per chunk after the first failure.
            chunk_timeout: Per-chunk deadline in seconds (``None``: no
                deadline).  Reclaiming a timed-out chunk needs a killable
                pool, so timeouts are fully effective on the process
                backend; thread/serial timeouts are detected and retried
                but the stuck call cannot be interrupted.
            backoff_base: First retry delay in seconds (doubled per
                attempt, jittered to 50-100%).
            backoff_cap: Upper bound on any single backoff delay.
            degrade_after: Pool-level failures (crash/timeout) tolerated
                before stepping down the degradation ladder.
            on_event: Optional callback invoked with every
                :class:`ExecEvent` (events are also collected on
                ``self.events``).
            owns_inner: Whether :meth:`close` closes the inner backend.
                Pass ``False`` when supervising a *shared* pool (the serve
                layer wraps one warm pool in a fresh request-scoped
                supervisor per request): the request's supervisor is
                closed, the pool lives on.  Recovery (``abandon``) is
                unaffected — a broken shared pool must still be written
                off, whoever owns it; it rebuilds lazily on its next wave.
        """
        if retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {retries}")
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise ConfigurationError(
                f"chunk_timeout must be positive, got {chunk_timeout}"
            )
        if degrade_after < 1:
            raise ConfigurationError(
                f"degrade_after must be >= 1, got {degrade_after}"
            )
        self.inner = as_backend(inner, workers)
        self.retries = retries
        self.chunk_timeout = chunk_timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.degrade_after = degrade_after
        self.events: List[ExecEvent] = []
        self._on_event = on_event
        self._pool_failures = 0
        self._owns_inner = owns_inner

    # -- event plumbing ---------------------------------------------------

    def _emit(self, **kwargs) -> None:
        event = ExecEvent(backend=self.inner.name, **kwargs)
        self.events.append(event)
        if self._on_event is not None:
            self._on_event(event)

    # -- chunk execution --------------------------------------------------

    def _run_chunk(self, job: TrialJob, chunk: List[Tuple[int, object]],
                   holder: dict) -> None:
        """Watchdog-thread body: one inner wave for one chunk."""
        try:
            start = chunk[0][0]
            seeds = [seq for _i, seq in chunk]
            holder["value"] = self.inner.run_wave(job, start, seeds)
        except BaseException as exc:  # noqa: BLE001 - classified upstream
            holder["error"] = exc

    def _attempt_round(self, job: TrialJob,
                       chunk_list: List[Tuple[int, list]]):
        """Run the pending chunks concurrently; return per-chunk outcomes."""
        entries = []
        for cid, chunk in chunk_list:
            holder: dict = {}
            thread = threading.Thread(
                target=self._run_chunk, args=(job, chunk, holder),
                daemon=True, name=f"repro-supervise-{cid}",
            )
            entries.append((cid, chunk, holder, thread))
            thread.start()
        deadline = (None if self.chunk_timeout is None
                    else time.monotonic() + self.chunk_timeout)
        outcomes = []
        for cid, chunk, holder, thread in entries:
            remaining = (None if deadline is None
                         else max(0.0, deadline - time.monotonic()))
            thread.join(remaining)
            if thread.is_alive():
                outcomes.append((cid, chunk, _ChunkTimeout(
                    f"chunk did not finish within {self.chunk_timeout:g}s"
                )))
            elif "error" in holder:
                outcomes.append((cid, chunk, holder["error"]))
            else:
                outcomes.append((cid, chunk, holder["value"]))
        return outcomes

    # -- recovery ---------------------------------------------------------

    def _degraded_inner(self) -> Optional[ExecutionBackend]:
        """The next backend down the ladder, or ``None`` at the bottom."""
        tier = self.inner.name
        workers = getattr(self.inner, "workers", 1)
        if tier == "process":
            return ThreadBackend(workers)
        if tier == "thread":
            return SerialBackend()
        return None

    def _recover_pool(self, attempt: int) -> None:
        """Abandon the broken/hung pool; degrade after repeated failures."""
        self.inner.abandon()
        self._pool_failures += 1
        self._emit(kind="pool-rebuild", attempt=attempt,
                   detail=f"pool failure #{self._pool_failures}")
        if self._pool_failures >= self.degrade_after:
            replacement = self._degraded_inner()
            if replacement is not None:
                self._emit(kind="degrade", attempt=attempt,
                           detail=f"{self.inner.name} -> {replacement.name}")
                self.inner = replacement
                # The replacement was created here, so this supervisor
                # owns it even when the original inner pool was shared.
                self._owns_inner = True
                self._pool_failures = 0

    def _backoff(self, attempt: int) -> float:
        """Capped exponential backoff with 50-100% jitter."""
        delay = min(self.backoff_cap, self.backoff_base * (2.0 ** attempt))
        return delay * random.uniform(0.5, 1.0)

    # -- the backend contract ---------------------------------------------

    def run_wave(self, job: TrialJob, start_index: int,
                 seeds: Sequence[np.random.SeedSequence]
                 ) -> List[Mapping[str, float]]:
        """Run one supervised wave; results in trial-index order.

        Chunks that fail are retried (after pool recovery and backoff)
        until they succeed or the retry budget is exhausted, in which case
        :class:`~repro.errors.ChunkRetryExhaustedError` carries the last
        classified failure.
        """
        items = list(enumerate(seeds, start=start_index))
        if not items:
            return []
        pieces = max(1, getattr(self.inner, "workers", 1))
        chunks = _chunk(items, pieces)
        pending = list(range(len(chunks)))
        results: dict = {}
        attempt = 0
        while pending:
            outcomes = self._attempt_round(
                job, [(cid, chunks[cid]) for cid in pending]
            )
            failed: List[int] = []
            last_failure = ("transient", None)
            pool_hit = False
            for cid, chunk, out in outcomes:
                if not isinstance(out, BaseException):
                    results[cid] = out
                    continue
                if isinstance(out, ConfigurationError):
                    raise out  # retrying cannot fix a bad job description
                kind = classify_failure(out)
                self._emit(kind="chunk-failure", failure=kind,
                           attempt=attempt, chunk_start=chunk[0][0],
                           chunk_size=len(chunk), detail=repr(out))
                if kind == "fatal":
                    # A full/read-only filesystem fails identically on
                    # every attempt; surface it now instead of burning
                    # the retry budget.
                    raise out
                failed.append(cid)
                last_failure = (kind, out)
                pool_hit = pool_hit or kind in ("crash", "timeout")
            if not failed:
                break
            if pool_hit:
                self._recover_pool(attempt)
            if attempt >= self.retries:
                kind, cause = last_failure
                first = chunks[failed[0]]
                self._emit(kind="give-up", failure=kind, attempt=attempt,
                           chunk_start=first[0][0], chunk_size=len(first),
                           detail=repr(cause))
                raise ChunkRetryExhaustedError(
                    chunk_start=first[0][0], chunk_size=len(first),
                    attempts=attempt + 1, failure=kind,
                    cause=cause if cause is not None else Exception("unknown"),
                )
            delay = self._backoff(attempt)
            self._emit(kind="retry", attempt=attempt,
                       detail=f"{len(failed)} chunk(s) after {delay:.3f}s")
            if delay > 0:
                time.sleep(delay)
            attempt += 1
            pending = failed
        return [metrics for cid in sorted(results)
                for metrics in results[cid]]

    def close(self) -> None:
        """Close the (possibly degraded) inner backend, if owned."""
        if self._owns_inner:
            self.inner.close()

    def event_summary(self) -> Mapping[str, int]:
        """Event counts by kind — the CLI's one-line supervision report."""
        counts: dict = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts
