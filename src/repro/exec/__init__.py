"""Execution subsystem: backends, trial specs and the scenario cache.

``repro.exec`` is the layer between the workload drivers and the hardware:

* :mod:`repro.exec.backends` — pluggable ``serial`` / ``thread`` /
  ``process`` execution for :func:`repro.workload.trials.paired_trials`,
  with a persistent process pool and an index-ordered determinism contract
  (estimates are bit-identical across backends and worker counts);
* :mod:`repro.exec.spec` — picklable :class:`TrialSpec` descriptions so
  trial functions resolve worker-side instead of pickling per call;
* :mod:`repro.exec.scenarios` — the cross-experiment scenario cache that
  draws each connected network sample once and shares it between figures,
  sweeps and fault scenarios;
* :mod:`repro.exec.supervise` — the fault-tolerant wrapper: per-chunk
  timeouts, classified failures, retry with backoff, pool rebuilds and
  the ``process`` → ``thread`` → ``serial`` degradation ladder;
* :mod:`repro.exec.journal` — crash-safe run journaling (append-only
  fsync'd JSONL) so an interrupted run resumes bit-identically.

See docs/performance.md and docs/resilience.md for the user-level tour.
"""

from repro.exec.backends import (
    BACKENDS,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    TrialJob,
    as_backend,
    shared_backend,
    shutdown_shared_backends,
)
from repro.exec.scenarios import (
    Scenario,
    ScenarioCache,
    ScenarioKey,
    connected_network,
    connected_scenario,
    get_scenario_cache,
    scenario_positions,
)
from repro.exec.journal import (
    PointJournal,
    RunJournal,
    open_journal,
)
from repro.exec.spec import IndexedTrialFn, TrialSpec, resolve_cached
from repro.exec.supervise import (
    DEGRADE_ORDER,
    FAILURE_KINDS,
    ExecEvent,
    SupervisedBackend,
    classify_failure,
)

__all__ = [
    "BACKENDS",
    "DEGRADE_ORDER",
    "FAILURE_KINDS",
    "ExecEvent",
    "ExecutionBackend",
    "IndexedTrialFn",
    "PointJournal",
    "ProcessBackend",
    "RunJournal",
    "Scenario",
    "ScenarioCache",
    "ScenarioKey",
    "SerialBackend",
    "SupervisedBackend",
    "ThreadBackend",
    "TrialJob",
    "TrialSpec",
    "as_backend",
    "classify_failure",
    "connected_network",
    "connected_scenario",
    "get_scenario_cache",
    "open_journal",
    "resolve_cached",
    "scenario_positions",
    "shared_backend",
    "shutdown_shared_backends",
]
