"""Picklable trial specifications for cross-process execution.

The trial pipeline is pure Python, so real multi-core throughput needs a
``ProcessPoolExecutor`` — and the trial function has to cross the process
boundary.  Closures don't pickle (and pickling a resolved function per call
would dominate small trials), so the process backend ships a
:class:`TrialSpec` instead: a dotted reference to a module-level *factory*
plus its keyword arguments.  Workers resolve the spec once (memoized by
value) and call the resulting trial function directly from then on.

The factory contract::

    def make_my_trial(**kwargs) -> Callable[[int, np.random.Generator],
                                            Mapping[str, float]]

i.e. a spec-built trial takes ``(trial_index, generator)`` — the index is
what lets trials key into the cross-experiment scenario cache
(:mod:`repro.exec.scenarios`) deterministically.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: A spec-resolved trial: ``(trial_index, generator) -> metric values``.
IndexedTrialFn = Callable[[int, np.random.Generator], Mapping[str, float]]

#: Worker-side memo: spec -> resolved trial function.  Lives at module level
#: so a persistent pool resolves each distinct spec once per worker process,
#: not once per submitted chunk.
_RESOLVED: dict["TrialSpec", IndexedTrialFn] = {}


@dataclass(frozen=True)
class TrialSpec:
    """A picklable, hashable description of a trial function.

    Attributes:
        task: ``"package.module:factory"`` — the factory is imported and
            called with ``kwargs`` to produce the trial function.
        kwargs: The factory's keyword arguments as a sorted tuple of
            ``(name, value)`` pairs (tuples keep the spec hashable so
            workers can memoize resolution; values must be picklable and
            should be hashable).
    """

    task: str
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def create(cls, task: str, **kwargs: Any) -> "TrialSpec":
        """Build a spec from a dotted task and plain keyword arguments."""
        if ":" not in task:
            raise ConfigurationError(
                f"task must look like 'package.module:factory', got {task!r}"
            )
        return cls(task=task, kwargs=tuple(sorted(kwargs.items())))

    def resolve(self) -> IndexedTrialFn:
        """Import the factory and build the trial function (no memo)."""
        module_name, _, attr = self.task.partition(":")
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise ConfigurationError(
                f"cannot import trial module {module_name!r}: {exc}"
            ) from None
        factory = getattr(module, attr, None)
        if factory is None:
            raise ConfigurationError(
                f"module {module_name!r} has no attribute {attr!r}"
            )
        return factory(**dict(self.kwargs))


def resolve_cached(spec: TrialSpec) -> IndexedTrialFn:
    """Resolve ``spec``, memoizing by value when the spec is hashable.

    Unhashable kwarg values degrade gracefully to per-call resolution
    (the factory call itself is cheap; the memo only saves the import
    lookup and closure construction).
    """
    try:
        fn = _RESOLVED.get(spec)
    except TypeError:  # unhashable kwargs
        return spec.resolve()
    if fn is None:
        fn = _RESOLVED[spec] = spec.resolve()
    return fn
