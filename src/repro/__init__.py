"""repro — Cluster-Based Backbone Infrastructure for Broadcasting in MANETs.

A full reproduction of Lou & Wu (IPPS 2003): lowest-ID clustering, 2.5-hop
and 3-hop coverage sets, the static (source-independent) and dynamic
(source-dependent) cluster-based CDS backbones, the MO_CDS baseline, the
distributed message-level protocols on a discrete-event simulator, and the
experiment harness regenerating the paper's Figures 6-8.

Quickstart::

    from repro import (
        random_geometric_network, lowest_id_clustering,
        build_static_backbone, broadcast_sd,
    )

    net = random_geometric_network(n=60, average_degree=6, rng=42)
    clustering = lowest_id_clustering(net.graph)
    backbone = build_static_backbone(clustering)          # SI-CDS
    dyn = broadcast_sd(clustering, source=0)              # SD-CDS broadcast
    print(backbone.size, dyn.result.num_forward_nodes)
"""

from repro.backbone import (
    Backbone,
    GatewaySelection,
    build_mo_cds,
    build_static_backbone,
    select_gateways,
    verify_backbone,
)
from repro.broadcast import (
    BroadcastResult,
    DynamicBroadcast,
    blind_flooding,
    broadcast_dominant_pruning,
    broadcast_forwarding_tree,
    broadcast_mpr,
    broadcast_passive_clustering,
    broadcast_rad,
    broadcast_sd,
    broadcast_si,
    check_full_delivery,
    delivery_ratio,
)
from repro.cluster import (
    Cluster,
    ClusterStructure,
    build_cluster_graph,
    cluster_graph_is_strongly_connected,
    highest_degree_clustering,
    lowest_id_clustering,
    validate_cluster_structure,
)
from repro.coverage import (
    CoverageSet,
    compute_all_coverage_sets,
    compute_coverage_set,
    three_hop_coverage,
    two_five_hop_coverage,
)
from repro.errors import ReproError
from repro.geometry import Area
from repro.topology import CoverageIndex, TopologyView, as_view
from repro.graph import (
    Graph,
    Network,
    paper_figure3_graph,
    random_geometric_network,
    unit_disk_graph,
)
from repro.types import CoveragePolicy, NodeRole, PruningLevel

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    # geometry / graph
    "Area",
    "Graph",
    "Network",
    "unit_disk_graph",
    "random_geometric_network",
    "paper_figure3_graph",
    # clustering
    "Cluster",
    "ClusterStructure",
    "lowest_id_clustering",
    "highest_degree_clustering",
    "validate_cluster_structure",
    "build_cluster_graph",
    "cluster_graph_is_strongly_connected",
    # topology
    "TopologyView",
    "CoverageIndex",
    "as_view",
    # coverage
    "CoverageSet",
    "CoveragePolicy",
    "compute_coverage_set",
    "compute_all_coverage_sets",
    "two_five_hop_coverage",
    "three_hop_coverage",
    # backbone
    "Backbone",
    "GatewaySelection",
    "select_gateways",
    "build_static_backbone",
    "build_mo_cds",
    "verify_backbone",
    # broadcast
    "BroadcastResult",
    "DynamicBroadcast",
    "blind_flooding",
    "broadcast_si",
    "broadcast_sd",
    "broadcast_dominant_pruning",
    "broadcast_mpr",
    "broadcast_rad",
    "broadcast_forwarding_tree",
    "broadcast_passive_clustering",
    "check_full_delivery",
    "delivery_ratio",
    "PruningLevel",
    "NodeRole",
]
