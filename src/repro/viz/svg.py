"""SVG export of networks and backbones (pure string generation, no deps).

Produces self-contained SVG documents in the visual language of the paper's
figures: black disks for clusterheads, grey disks for gateways, white disks
for other nodes, light edges for links and heavy edges for the backbone's
connector paths.  Useful for papers, READMEs and debugging.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.backbone.static_backbone import Backbone
from repro.cluster.state import ClusterStructure
from repro.errors import ConfigurationError
from repro.graph.network import Network
from repro.types import NodeId

_STYLE = {
    "clusterhead": ("#1a1a1a", "#000000"),
    "gateway": ("#9aa0a6", "#4d4d4d"),
    "member": ("#ffffff", "#555555"),
}


def _header(width: float, height: float) -> List[str]:
    return [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'viewBox="0 0 {width:g} {height:g}" '
        f'width="{width:g}" height="{height:g}">',
        f'<rect width="{width:g}" height="{height:g}" fill="#fcfcfa"/>',
    ]


def network_to_svg(
    network: Network,
    *,
    structure: Optional[ClusterStructure] = None,
    gateways: Iterable[NodeId] = (),
    highlight_edges: Iterable[Tuple[NodeId, NodeId]] = (),
    scale: float = 6.0,
    node_radius: float = 2.2,
    labels: bool = True,
) -> str:
    """Render ``network`` (optionally with roles) as an SVG document string.

    Args:
        network: Positions, area and links.
        structure: If given, clusterheads are drawn black (paper style).
        gateways: Drawn grey.
        highlight_edges: Drawn with heavy strokes (e.g. backbone connectors).
        scale: Pixels per area unit.
        node_radius: Node disk radius in area units.
        labels: Draw node ids next to the disks.

    Returns:
        The SVG XML as a string (write it to a ``.svg`` file to view).
    """
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    w = network.area.width * scale
    h = network.area.height * scale
    gateway_set: Set[NodeId] = set(gateways)
    highlight: Set[Tuple[NodeId, NodeId]] = {
        (min(u, v), max(u, v)) for u, v in highlight_edges
    }

    def xy(v: NodeId) -> Tuple[float, float]:
        x, y = network.positions[v]
        return x * scale, (network.area.height - y) * scale  # y grows upward

    parts = _header(w, h)
    parts.append('<g stroke="#c9d1d9" stroke-width="1">')
    for u, v in network.graph.edges():
        if (u, v) in highlight:
            continue
        (x1, y1), (x2, y2) = xy(u), xy(v)
        parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}"/>'
        )
    parts.append("</g>")
    if highlight:
        parts.append('<g stroke="#2f6fab" stroke-width="2.5">')
        for u, v in sorted(highlight):
            if not network.graph.has_edge(u, v):
                raise ConfigurationError(
                    f"highlight edge ({u}, {v}) is not a link of the network"
                )
            (x1, y1), (x2, y2) = xy(u), xy(v)
            parts.append(
                f'<line x1="{x1:.1f}" y1="{y1:.1f}" '
                f'x2="{x2:.1f}" y2="{y2:.1f}"/>'
            )
        parts.append("</g>")

    r = node_radius * scale
    parts.append('<g stroke-width="1.2">')
    for v in network.graph.nodes():
        if structure is not None and structure.is_clusterhead(v):
            fill, stroke = _STYLE["clusterhead"]
        elif v in gateway_set:
            fill, stroke = _STYLE["gateway"]
        else:
            fill, stroke = _STYLE["member"]
        x, y = xy(v)
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r:.1f}" '
            f'fill="{fill}" stroke="{stroke}"/>'
        )
        if labels:
            parts.append(
                f'<text x="{x + r + 1:.1f}" y="{y - r - 1:.1f}" '
                f'font-size="{max(8.0, 1.6 * r):.0f}" '
                f'font-family="sans-serif" fill="#333">{v}</text>'
            )
    parts.append("</g>")
    parts.append("</svg>")
    return "\n".join(parts)


def backbone_to_svg(network: Network, backbone: Backbone, **kwargs) -> str:
    """Render a backbone: heads black, gateways grey, connectors heavy.

    Connector paths come from the per-head selections, giving the same
    marked-edge look as the paper's Figure 2(a).
    """
    edges: List[Tuple[NodeId, NodeId]] = []
    for head, selection in backbone.selections.items():
        for target, path in selection.connectors.items():
            hops = [head, *path, target]
            edges.extend(zip(hops, hops[1:]))
    return network_to_svg(
        network,
        structure=backbone.structure,
        gateways=backbone.gateways,
        highlight_edges=edges,
        **kwargs,
    )
