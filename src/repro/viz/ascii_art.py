"""ASCII rendering of networks and backbones.

Scales node positions onto a character grid.  Glyphs follow the paper's
figure conventions: ``#`` clusterhead (black node), ``o`` gateway (grey
node), ``.`` other nodes (white).  Collisions keep the most significant
glyph (``#`` over ``o`` over ``.``).  Intended for terminals, examples and
debugging — not pixel-perfect geometry.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.cluster.state import ClusterStructure
from repro.errors import ConfigurationError
from repro.graph.network import Network
from repro.types import NodeId

#: Glyph precedence (higher wins a shared cell).
_RANK = {"#": 3, "o": 2, ".": 1, " ": 0}


def _paint(
    network: Network,
    glyph_of: Dict[NodeId, str],
    width: int,
    height: int,
    label_ids: bool,
) -> str:
    if width < 8 or height < 4:
        raise ConfigurationError(f"grid {width}x{height} too small to render")
    grid = [[" "] * width for _ in range(height)]
    sx = (width - 1) / network.area.width
    sy = (height - 1) / network.area.height
    for v, (x, y) in network.positions.items():
        col = min(width - 1, max(0, round(x * sx)))
        row = min(height - 1, max(0, round((network.area.height - y) * sy)))
        glyph = glyph_of.get(v, ".")
        if _RANK[glyph] >= _RANK[grid[row][col]]:
            grid[row][col] = glyph
    lines = ["".join(r).rstrip() for r in grid]
    if label_ids:
        legend = ", ".join(
            f"{v}{glyph_of.get(v, '.')}"
            for v in sorted(network.positions)
        )
        lines.append(f"[{legend}]")
    return "\n".join(lines)


def render_network(
    network: Network,
    *,
    width: int = 64,
    height: int = 24,
    label_ids: bool = False,
) -> str:
    """Render the bare topology (every node as ``.``)."""
    return _paint(network, {}, width, height, label_ids)


def render_backbone(
    network: Network,
    structure: ClusterStructure,
    gateways: Optional[Iterable[NodeId]] = None,
    *,
    width: int = 64,
    height: int = 24,
    label_ids: bool = False,
) -> str:
    """Render the clustered network with backbone roles.

    Args:
        network: Positions and area.
        structure: The clustering (heads drawn as ``#``).
        gateways: Backbone gateways drawn as ``o`` (e.g.
            ``backbone.gateways``).
        width: Grid columns.
        height: Grid rows.
        label_ids: Append a node-id legend line.
    """
    gateway_set: Set[NodeId] = set(gateways or ())
    glyph_of: Dict[NodeId, str] = {}
    for v in network.positions:
        if structure.is_clusterhead(v):
            glyph_of[v] = "#"
        elif v in gateway_set:
            glyph_of[v] = "o"
        else:
            glyph_of[v] = "."
    return _paint(network, glyph_of, width, height, label_ids)
