"""Plain-text and SVG visualisation (no plotting dependencies)."""

from repro.viz.ascii_art import render_backbone, render_network
from repro.viz.svg import backbone_to_svg, network_to_svg

__all__ = [
    "render_network",
    "render_backbone",
    "network_to_svg",
    "backbone_to_svg",
]
