"""Broadcast latency analysis.

With unit transmission delays, the fastest any broadcast can finish is the
source's eccentricity (blind flooding achieves it).  A backbone forwards
through fewer nodes, so packets may detour: the **latency stretch** is the
ratio of achieved latency to that BFS lower bound.  The ablation bench shows
the paper's backbones pay only a small constant stretch — worth knowing,
since the paper never reports latency.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Tuple

from repro.broadcast.result import BroadcastResult
from repro.errors import BroadcastError
from repro.graph.adjacency import Graph
from repro.graph.traversal import eccentricity
from repro.types import NodeId


def latency_stretch(graph: Graph, result: BroadcastResult) -> float:
    """Achieved latency over the BFS optimum from the result's source.

    Args:
        graph: The network the broadcast ran on.
        result: A completed broadcast (must have reached all nodes —
            otherwise "latency" compares incomparable coverage).

    Returns:
        ``latency / eccentricity(source)``; 1.0 means optimal.  A
        single-node network returns 1.0 by convention.
    """
    if not result.delivered_to_all(graph):
        raise BroadcastError(
            f"{result.algorithm}: latency stretch undefined for partial "
            f"delivery"
        )
    optimum = eccentricity(graph, result.source)
    if optimum == 0:
        return 1.0
    return result.latency / optimum


def latency_study(
    graph: Graph,
    protocols: Mapping[str, Callable[[Graph, NodeId], BroadcastResult]],
    source: NodeId,
) -> Dict[str, Tuple[int, float]]:
    """Run several protocols from one source and report (latency, stretch).

    Args:
        graph: The network.
        protocols: Label -> callable ``(graph, source) -> BroadcastResult``.
        source: The broadcast source.

    Returns:
        Label -> ``(latency, stretch)``.
    """
    out: Dict[str, Tuple[int, float]] = {}
    for label, fn in protocols.items():
        result = fn(graph, source)
        out[label] = (result.latency, latency_stretch(graph, result))
    return out
