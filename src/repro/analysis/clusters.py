"""Cluster-shape statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cluster.state import ClusterStructure
from repro.errors import ConfigurationError
from repro.metrics.stats import Summary, summary


@dataclass(frozen=True)
class ClusterReport:
    """Shape statistics of one clustering.

    Attributes:
        num_clusters: Number of clusters.
        size: Summary of cluster sizes (head included).
        head_degree: Summary of clusterhead degrees.
        gateway_candidates: Nodes adjacent to a foreign cluster (the pool
            GATEWAY selection draws from), as a count.
        singleton_clusters: Clusters with no members.
    """

    num_clusters: int
    size: Summary
    head_degree: Summary
    gateway_candidates: int
    singleton_clusters: int

    @property
    def mean_size(self) -> float:
        """Average cluster size."""
        return self.size.mean


def cluster_report(structure: ClusterStructure) -> ClusterReport:
    """Compute shape statistics of ``structure``."""
    if structure.num_clusters == 0:
        raise ConfigurationError("cannot report on an empty clustering")
    graph = structure.graph
    sizes: List[float] = []
    singletons = 0
    for head, cluster in structure.clusters.items():
        sizes.append(float(cluster.size))
        if not cluster.members:
            singletons += 1
    head_degrees = [float(graph.degree(h)) for h in structure.clusterheads]
    candidates = 0
    for v in graph.nodes():
        if structure.is_clusterhead(v):
            continue
        my_head = structure.head_of[v]
        if any(
            structure.head_of[w] != my_head
            for w in graph.neighbours_view(v)
        ):
            candidates += 1
    return ClusterReport(
        num_clusters=structure.num_clusters,
        size=summary(sizes),
        head_degree=summary(head_degrees),
        gateway_candidates=candidates,
        singleton_clusters=singletons,
    )
