"""Post-hoc analysis of networks, clusterings and broadcast outcomes.

Three lenses the paper's evaluation does not plot but users of a broadcast
backbone care about:

* **latency** — restricting forwarding to a backbone can lengthen delivery
  paths; :func:`~repro.analysis.latency.latency_stretch` measures the
  slowdown relative to the BFS optimum;
* **redundancy** — how many copies of the packet each host receives
  (the broadcast-storm quantity the backbones exist to shrink);
* **cluster shape** — sizes, gateway ratios and head degrees of a
  clustering.
"""

from repro.analysis.clusters import ClusterReport, cluster_report
from repro.analysis.latency import latency_stretch, latency_study
from repro.analysis.redundancy import RedundancyReport, redundancy_report

__all__ = [
    "latency_stretch",
    "latency_study",
    "RedundancyReport",
    "redundancy_report",
    "ClusterReport",
    "cluster_report",
]
