"""Reception redundancy: the broadcast-storm quantity, measured.

Every transmission is received by all of the sender's unit-disk neighbours,
so a broadcast with forward set ``F`` delivers ``sum(deg(v) for v in F)``
packet copies in total.  The per-host average of that count is the channel
pressure the broadcast-storm paper (Ni et al.) warns about, and the number
the cluster backbones push down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.broadcast.result import BroadcastResult
from repro.errors import ConfigurationError
from repro.graph.adjacency import Graph
from repro.types import NodeId


@dataclass(frozen=True, slots=True)
class RedundancyReport:
    """Copy-count statistics of one broadcast.

    Attributes:
        total_receptions: Packet copies delivered network-wide.
        mean_copies: Average copies per host.
        max_copies: Copies at the busiest host.
        silent_hosts: Hosts that received zero copies (0 on full delivery
            from a transmitting source).
        forward_fraction: ``|F| / n``.
    """

    total_receptions: int
    mean_copies: float
    max_copies: int
    silent_hosts: int
    forward_fraction: float


def redundancy_report(graph: Graph, result: BroadcastResult) -> RedundancyReport:
    """Compute the copy-count statistics of ``result`` on ``graph``.

    Uses the forward set (not reception times), so it also works for partial
    deliveries.
    """
    n = graph.num_nodes
    if n == 0:
        raise ConfigurationError("redundancy undefined on an empty network")
    copies: Dict[NodeId, int] = {v: 0 for v in graph}
    for sender in result.forward_nodes:
        for x in graph.neighbours_view(sender):
            copies[x] += 1
    total = sum(copies.values())
    return RedundancyReport(
        total_receptions=total,
        mean_copies=total / n,
        max_copies=max(copies.values()),
        silent_hosts=sum(
            1 for v, c in copies.items()
            if c == 0 and v != result.source
        ),
        forward_fraction=len(result.forward_nodes) / n,
    )
