"""Per-stage performance instrumentation.

Lightweight wall-clock/call counters on the trial pipeline's stages —
``placement``, ``construction``, ``clustering``, ``coverage``,
``selection``, ``broadcast``, ``channel`` (PHY/MAC decision time, which
nests inside ``broadcast`` and is attributed exclusively) and
``maintenance`` (per-tick mobility upkeep, with ``maintenance.step`` /
``maintenance.delta`` / ``maintenance.repair`` sub-stages nested inside
it) — so sweeps can report *where* their time goes instead of one opaque
total.  The ``repro perf`` CLI subcommand and
``benchmarks/bench_trials_parallel.py`` are the consumers.

Design constraints:

* **Zero overhead when off.**  Instrumented functions pay one module-level
  boolean check per call while disabled (the default); enable with
  :func:`enable` or the ``REPRO_PERF=1`` environment variable.
* **Exclusive attribution.**  Stages nest (a dynamic broadcast computes
  coverage sets internally); the active-stage stack *pauses* the outer
  stage while an inner one runs, so per-stage seconds sum to the pipeline
  total instead of double-counting.
* **Thread-aware.**  The stage stack is thread-local (the thread backend
  runs trials concurrently); the accumulated counters are global behind a
  lock, flushed once per stage exit.
* **Process-local.**  Counters live in the worker that does the work; the
  process backend's workers each keep their own registry.  Attribute
  stages with the ``serial``/``thread`` backends (see docs/performance.md).
"""

from __future__ import annotations

import os
import threading
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from functools import wraps
from typing import Callable, Dict, Iterator, TypeVar

#: The canonical pipeline stages, in execution order.  :func:`stage` accepts
#: any name; these are the ones the built-in instrumentation emits.
STAGES = (
    "placement",
    "construction",
    "clustering",
    "coverage",
    "selection",
    "broadcast",
    "channel",
    "maintenance",
)

_enabled = os.environ.get("REPRO_PERF", "") not in ("", "0")
_mem_enabled = os.environ.get("REPRO_PERF_MEM", "") not in ("", "0")
if _mem_enabled and not tracemalloc.is_tracing():
    tracemalloc.start()
_lock = threading.Lock()
_counters: Dict[str, "StageStats"] = {}
_local = threading.local()

F = TypeVar("F", bound=Callable)


@dataclass
class StageStats:
    """Accumulated wall-clock, call count and (optional) memory for one stage.

    ``alloc_bytes`` is the net Python-heap growth attributed to the stage
    (tracemalloc delta, exclusive of nested stages, can be negative when a
    stage frees more than it allocates); ``peak_bytes`` is the highest
    traced heap watermark observed while the stage was running.  Both stay
    zero unless memory sampling is on (:func:`enable_memory` or
    ``REPRO_PERF_MEM=1``).
    """

    seconds: float = 0.0
    calls: int = 0
    alloc_bytes: int = 0
    peak_bytes: int = 0

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly representation."""
        out: Dict[str, float] = {"seconds": self.seconds, "calls": self.calls}
        if self.alloc_bytes or self.peak_bytes:
            out["alloc_bytes"] = self.alloc_bytes
            out["peak_bytes"] = self.peak_bytes
        return out


def enabled() -> bool:
    """Whether stage timing is currently recording."""
    return _enabled


def enable(on: bool = True) -> None:
    """Turn stage timing on (or off with ``on=False``)."""
    global _enabled
    _enabled = bool(on)


def memory_enabled() -> bool:
    """Whether per-stage memory sampling is currently recording."""
    return _mem_enabled


def enable_memory(on: bool = True) -> None:
    """Turn per-stage memory sampling on (or off with ``on=False``).

    Sampling uses :mod:`tracemalloc` (started on demand), which itself
    costs time and memory — keep it off for pure timing runs.  Memory is
    only recorded while stage timing is also enabled.
    """
    global _mem_enabled
    _mem_enabled = bool(on)
    if _mem_enabled and not tracemalloc.is_tracing():
        tracemalloc.start()


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes (0 if unknown).

    Complements the tracemalloc numbers: RSS covers numpy buffer pools and
    allocator overhead that the Python-heap tracer does not see.
    """
    try:
        import resource

        peak_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return int(peak_kib) * 1024  # Linux reports KiB
    except Exception:  # pragma: no cover - non-POSIX fallback
        return 0


def reset() -> None:
    """Drop all accumulated counters."""
    with _lock:
        _counters.clear()


def snapshot() -> Dict[str, Dict[str, float]]:
    """Current counters as ``{stage: {"seconds": s, "calls": n}}``."""
    with _lock:
        return {name: stats.as_dict() for name, stats in _counters.items()}


class _Frame:
    """One entry of the active-stage stack: a pausable stopwatch.

    With memory sampling on, each run segment (entry to pause, resume to
    pause, ...) also snapshots the traced heap at its start and resets the
    tracemalloc peak, so nested stages never leak their allocations — or
    their peaks — into the enclosing stage's numbers.
    """

    __slots__ = ("name", "started", "accumulated", "mem", "mem_start",
                 "alloc_bytes", "peak_bytes")

    def __init__(self, name: str) -> None:
        self.name = name
        self.mem = _mem_enabled and tracemalloc.is_tracing()
        self.accumulated = 0.0
        self.alloc_bytes = 0
        self.peak_bytes = 0
        self._begin_segment()
        self.started = time.perf_counter()

    def _begin_segment(self) -> None:
        if self.mem:
            tracemalloc.reset_peak()
            self.mem_start = tracemalloc.get_traced_memory()[0]

    def _end_segment(self) -> None:
        if self.mem:
            current, peak = tracemalloc.get_traced_memory()
            self.alloc_bytes += current - self.mem_start
            self.peak_bytes = max(self.peak_bytes, peak)

    def pause(self) -> None:
        self.accumulated += time.perf_counter() - self.started
        self._end_segment()

    def resume(self) -> None:
        self._begin_segment()
        self.started = time.perf_counter()

    def stop(self) -> float:
        self.pause()
        return self.accumulated


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Attribute the enclosed wall-clock time to ``name``.

    Entering a stage pauses the enclosing one (exclusive attribution); the
    call counter increments once per entry.  A no-op while disabled.
    """
    if not _enabled:
        yield
        return
    stack = _stack()
    if stack:
        stack[-1].pause()
    frame = _Frame(name)
    stack.append(frame)
    try:
        yield
    finally:
        elapsed = frame.stop()
        stack.pop()
        if stack:
            stack[-1].resume()
        with _lock:
            stats = _counters.get(name)
            if stats is None:
                stats = _counters[name] = StageStats()
            stats.seconds += elapsed
            stats.calls += 1
            if frame.mem:
                stats.alloc_bytes += frame.alloc_bytes
                stats.peak_bytes = max(stats.peak_bytes, frame.peak_bytes)


def timed(name: str) -> Callable[[F], F]:
    """Decorator form of :func:`stage` (one boolean check when disabled)."""

    def decorate(fn: F) -> F:
        @wraps(fn)
        def wrapper(*args, **kwargs):
            if not _enabled:
                return fn(*args, **kwargs)
            with stage(name):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


def _fmt_bytes(n: float) -> str:
    sign = "-" if n < 0 else ""
    n = abs(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{sign}{n:.1f}{unit}" if unit != "B" else f"{sign}{int(n)}B"
        n /= 1024.0
    return f"{sign}{n:.1f}GiB"  # pragma: no cover - unreachable


def render_report(counters: Dict[str, Dict[str, float]] | None = None) -> str:
    """The counters as an aligned text table (canonical stage order first).

    Memory columns (net allocation and traced-heap peak) appear when any
    counter carries memory samples — i.e. the run had
    :func:`enable_memory` / ``REPRO_PERF_MEM=1`` active.
    """
    counters = snapshot() if counters is None else counters
    names = [s for s in STAGES if s in counters]
    names += sorted(set(counters) - set(STAGES))
    total = sum(c["seconds"] for c in counters.values()) or 1.0
    with_mem = any(
        c.get("alloc_bytes") or c.get("peak_bytes") for c in counters.values()
    )
    header = f"{'stage':<14} {'calls':>8} {'seconds':>10} {'share':>7}"
    if with_mem:
        header += f" {'alloc':>10} {'peak':>10}"
    lines = [header]
    for name in names:
        c = counters[name]
        line = (
            f"{name:<14} {int(c['calls']):>8} {c['seconds']:>10.4f} "
            f"{c['seconds'] / total:>6.1%}"
        )
        if with_mem:
            line += (
                f" {_fmt_bytes(c.get('alloc_bytes', 0)):>10}"
                f" {_fmt_bytes(c.get('peak_bytes', 0)):>10}"
            )
        lines.append(line)
    lines.append(
        f"{'total':<14} {'':>8} "
        f"{sum(c['seconds'] for c in counters.values()):>10.4f} {'':>7}"
    )
    if with_mem:
        rss = peak_rss_bytes()
        if rss:
            lines.append(f"peak RSS {_fmt_bytes(rss)}")
    return "\n".join(lines)
