"""Per-stage performance instrumentation.

Lightweight wall-clock/call counters on the trial pipeline's six stages —
``placement``, ``construction``, ``clustering``, ``coverage``, ``selection``
and ``broadcast`` — so sweeps can report *where* their time goes instead of
one opaque total.  The ``repro perf`` CLI subcommand and
``benchmarks/bench_trials_parallel.py`` are the consumers.

Design constraints:

* **Zero overhead when off.**  Instrumented functions pay one module-level
  boolean check per call while disabled (the default); enable with
  :func:`enable` or the ``REPRO_PERF=1`` environment variable.
* **Exclusive attribution.**  Stages nest (a dynamic broadcast computes
  coverage sets internally); the active-stage stack *pauses* the outer
  stage while an inner one runs, so per-stage seconds sum to the pipeline
  total instead of double-counting.
* **Thread-aware.**  The stage stack is thread-local (the thread backend
  runs trials concurrently); the accumulated counters are global behind a
  lock, flushed once per stage exit.
* **Process-local.**  Counters live in the worker that does the work; the
  process backend's workers each keep their own registry.  Attribute
  stages with the ``serial``/``thread`` backends (see docs/performance.md).
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from functools import wraps
from typing import Callable, Dict, Iterator, TypeVar

#: The canonical pipeline stages, in execution order.  :func:`stage` accepts
#: any name; these are the ones the built-in instrumentation emits.
STAGES = (
    "placement",
    "construction",
    "clustering",
    "coverage",
    "selection",
    "broadcast",
)

_enabled = os.environ.get("REPRO_PERF", "") not in ("", "0")
_lock = threading.Lock()
_counters: Dict[str, "StageStats"] = {}
_local = threading.local()

F = TypeVar("F", bound=Callable)


@dataclass
class StageStats:
    """Accumulated wall-clock and call count for one stage."""

    seconds: float = 0.0
    calls: int = 0

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly representation."""
        return {"seconds": self.seconds, "calls": self.calls}


def enabled() -> bool:
    """Whether stage timing is currently recording."""
    return _enabled


def enable(on: bool = True) -> None:
    """Turn stage timing on (or off with ``on=False``)."""
    global _enabled
    _enabled = bool(on)


def reset() -> None:
    """Drop all accumulated counters."""
    with _lock:
        _counters.clear()


def snapshot() -> Dict[str, Dict[str, float]]:
    """Current counters as ``{stage: {"seconds": s, "calls": n}}``."""
    with _lock:
        return {name: stats.as_dict() for name, stats in _counters.items()}


class _Frame:
    """One entry of the active-stage stack: a pausable stopwatch."""

    __slots__ = ("name", "started", "accumulated")

    def __init__(self, name: str) -> None:
        self.name = name
        self.started = time.perf_counter()
        self.accumulated = 0.0

    def pause(self) -> None:
        self.accumulated += time.perf_counter() - self.started

    def resume(self) -> None:
        self.started = time.perf_counter()

    def stop(self) -> float:
        self.pause()
        return self.accumulated


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Attribute the enclosed wall-clock time to ``name``.

    Entering a stage pauses the enclosing one (exclusive attribution); the
    call counter increments once per entry.  A no-op while disabled.
    """
    if not _enabled:
        yield
        return
    stack = _stack()
    if stack:
        stack[-1].pause()
    frame = _Frame(name)
    stack.append(frame)
    try:
        yield
    finally:
        elapsed = frame.stop()
        stack.pop()
        if stack:
            stack[-1].resume()
        with _lock:
            stats = _counters.get(name)
            if stats is None:
                stats = _counters[name] = StageStats()
            stats.seconds += elapsed
            stats.calls += 1


def timed(name: str) -> Callable[[F], F]:
    """Decorator form of :func:`stage` (one boolean check when disabled)."""

    def decorate(fn: F) -> F:
        @wraps(fn)
        def wrapper(*args, **kwargs):
            if not _enabled:
                return fn(*args, **kwargs)
            with stage(name):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


def render_report(counters: Dict[str, Dict[str, float]] | None = None) -> str:
    """The counters as an aligned text table (canonical stage order first)."""
    counters = snapshot() if counters is None else counters
    names = [s for s in STAGES if s in counters]
    names += sorted(set(counters) - set(STAGES))
    total = sum(c["seconds"] for c in counters.values()) or 1.0
    lines = [f"{'stage':<14} {'calls':>8} {'seconds':>10} {'share':>7}"]
    for name in names:
        c = counters[name]
        lines.append(
            f"{name:<14} {int(c['calls']):>8} {c['seconds']:>10.4f} "
            f"{c['seconds'] / total:>6.1%}"
        )
    lines.append(
        f"{'total':<14} {'':>8} "
        f"{sum(c['seconds'] for c in counters.values()):>10.4f} {'':>7}"
    )
    return "\n".join(lines)
