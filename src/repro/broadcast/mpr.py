"""Multipoint relay (MPR) broadcasting — Qayyum/Viennot/Laouiti baseline.

The paper cites multipoint relaying as a classic source-dependent scheme
(Section 2).  Every node ``v`` selects a *multipoint relay set*
``MPR(v) ⊆ N(v)`` covering its strict 2-hop neighbourhood with the standard
greedy heuristic:

1. take every neighbour that is the **only** path to some 2-hop node;
2. then repeatedly take the neighbour covering the most still-uncovered
   2-hop nodes (ties: higher degree, then lower id).

Forwarding rule: a node retransmits iff it received the packet's **first
copy from a node that selected it as MPR**.  Full delivery on connected
graphs is the classic MPR flooding theorem; our property tests confirm it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.broadcast.result import BroadcastResult
from repro.errors import BroadcastError, NodeNotFoundError
from repro.topology.view import TopologyLike, as_view
from repro.types import NodeId


def mpr_set(graph: TopologyLike, v: NodeId) -> FrozenSet[NodeId]:
    """The greedy multipoint relay set of ``v``.

    Accepts a plain graph or a shared
    :class:`~repro.topology.view.TopologyView`; with a view, the neighbour
    sets fetched here are reused by every other node's MPR computation.

    Returns:
        A subset of ``N(v)`` covering every node at distance exactly 2.
    """
    view = as_view(graph)
    graph = view.graph
    if v not in graph:
        raise NodeNotFoundError(v)
    n1 = view.neighbours(v)
    n2: Set[NodeId] = set()
    reach: Dict[NodeId, Set[NodeId]] = {}
    for u in n1:
        targets = view.neighbours(u) - n1 - {v}
        reach[u] = set(targets)
        n2 |= targets
    mpr: Set[NodeId] = set()
    uncovered = set(n2)
    # Rule 1: sole providers are mandatory.
    for w in n2:
        providers = [u for u in n1 if w in reach[u]]
        if len(providers) == 1:
            mpr.add(providers[0])
    for u in mpr:
        uncovered -= reach[u]
    # Rule 2: greedy max coverage.
    while uncovered:
        best: Optional[NodeId] = None
        best_key: Tuple[int, int, int] = (0, 0, 0)
        for u in n1 - mpr:
            gain = len(reach[u] & uncovered)
            if gain == 0:
                continue
            key = (gain, graph.degree(u), -u)
            if best is None or key > best_key:
                best, best_key = u, key
        if best is None:  # pragma: no cover - impossible: n2 reachable
            raise BroadcastError(f"MPR selection stuck at node {v}")
        mpr.add(best)
        uncovered -= reach[best]
    return frozenset(mpr)


def all_mpr_sets(graph: TopologyLike) -> Dict[NodeId, FrozenSet[NodeId]]:
    """MPR sets of every node (one shared view serves all of them)."""
    view = as_view(graph)
    return {v: mpr_set(view, v) for v in view.graph.nodes()}


def broadcast_mpr(
    graph: TopologyLike,
    source: NodeId,
    *,
    mpr_sets: Optional[Dict[NodeId, FrozenSet[NodeId]]] = None,
) -> BroadcastResult:
    """Run an MPR-flooding broadcast from ``source``.

    Args:
        graph: The network (plain graph or shared topology view).
        source: Originating node.
        mpr_sets: Pre-computed MPR sets (computed when omitted).

    Returns:
        The :class:`~repro.broadcast.result.BroadcastResult`.
    """
    view = as_view(graph)
    graph = view.graph
    if source not in graph:
        raise NodeNotFoundError(source)
    if mpr_sets is None:
        mpr_sets = all_mpr_sets(view)

    reception: Dict[NodeId, int] = {source: 0}
    forwarded: Set[NodeId] = set()
    schedule: Dict[int, List[NodeId]] = {}

    def transmit(time: int, sender: NodeId) -> None:
        forwarded.add(sender)
        schedule.setdefault(time, []).append(sender)

    transmit(0, source)
    guard = 4 * graph.num_nodes + 8
    while schedule:
        t = min(schedule)
        if t > guard:
            raise BroadcastError("MPR broadcast failed to terminate")
        for sender in sorted(schedule.pop(t)):
            relays = mpr_sets[sender]
            for x in view.sorted_neighbours(sender):
                if x not in reception:
                    reception[x] = t + 1
                    # Forward iff the *first* copy came from a selector.
                    if x in relays and x not in forwarded:
                        transmit(t + 1, x)
    return BroadcastResult(
        source=source,
        algorithm="mpr",
        forward_nodes=frozenset(forwarded),
        received=frozenset(reception),
        reception_time=reception,
        transmissions=len(forwarded),
    )
