"""Broadcast outcome accounting.

The paper's headline metric is the **size of the forward node set** — the
number of distinct nodes that transmit the packet (Figures 7 and 8).  The
result object also records total transmissions (a forward node may,
exceptionally, transmit more than once in the SD protocol — see DESIGN.md),
per-node reception times and the derived latency, so the same object feeds
delivery checks, latency studies and the benchmark tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Mapping, Optional

from repro.graph.adjacency import Graph
from repro.types import NodeId


@dataclass(frozen=True)
class BroadcastResult:
    """Outcome of one broadcast.

    Attributes:
        source: Originating node.
        algorithm: Name of the protocol that produced this result.
        forward_nodes: Distinct nodes that transmitted the packet, including
            the source.
        received: Nodes that received the packet (the source counts as
            having received at time 0).
        reception_time: Node -> first reception time (unit transmission
            delays; the source maps to 0).
        transmissions: Total number of transmissions (>= ``len(forward_nodes)``).
        channel: PHY/MAC counters of the run
            (:meth:`repro.channel.model.ChannelStats.as_dict` — collisions,
            captures, MAC deferrals/drops) when the medium carried a
            channel model; ``None`` on the bare medium and for the
            centralised algorithms, which never touch a channel.
    """

    source: NodeId
    algorithm: str
    forward_nodes: FrozenSet[NodeId]
    received: FrozenSet[NodeId]
    reception_time: Mapping[NodeId, int]
    transmissions: int
    channel: Optional[Mapping[str, int]] = None

    def __post_init__(self) -> None:
        if self.source not in self.received:
            raise ValueError("the source must be counted as having received")
        if not self.forward_nodes <= self.received:
            raise ValueError("every forward node must have received the packet")
        if self.transmissions < len(self.forward_nodes):
            raise ValueError("transmissions cannot undercount forward nodes")

    @property
    def num_forward_nodes(self) -> int:
        """The paper's metric: ``|forward node set|``."""
        return len(self.forward_nodes)

    @property
    def latency(self) -> int:
        """Largest first-reception time (0 for a single-node network)."""
        return max(self.reception_time.values())

    def delivered_to_all(self, graph: Graph) -> bool:
        """Whether every node of ``graph`` received the packet."""
        return set(graph.nodes()) <= set(self.received)
