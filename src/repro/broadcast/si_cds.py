"""Broadcasting over a source-independent CDS (paper, Section 3).

Protocol: the source transmits; a CDS node forwards on first reception;
everyone else stays silent.  In a connected network every CDS node receives
the packet, so the forward node set is ``CDS ∪ {source}`` — simulated here
(rather than assumed) so delivery and latency fall out as checked facts.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Set, Union

from repro import perf
from repro.backbone.static_backbone import Backbone
from repro.broadcast.result import BroadcastResult
from repro.errors import NodeNotFoundError
from repro.topology.view import TopologyLike, as_view
from repro.types import NodeId


@perf.timed("broadcast")
def broadcast_si(
    graph: TopologyLike,
    cds: Union[Backbone, Iterable[NodeId]],
    source: NodeId,
    *,
    algorithm: str = "si-cds",
) -> BroadcastResult:
    """Broadcast from ``source`` with forwarding restricted to ``cds``.

    Args:
        graph: The network — a plain :class:`~repro.graph.adjacency.Graph`
            or a shared :class:`~repro.topology.view.TopologyView` (pass the
            view when broadcasting repeatedly over one topology so the
            neighbour sets are memoized across calls).
        cds: A :class:`~repro.backbone.static_backbone.Backbone` or a bare
            node set acting as the source-independent CDS.
        source: Originating node (need not be in the CDS).
        algorithm: Label recorded in the result (defaults to ``si-cds``; the
            backbone's own algorithm name is used when a backbone is given).

    Returns:
        The :class:`~repro.broadcast.result.BroadcastResult`.
    """
    view = as_view(graph)
    graph = view.graph
    if source not in graph:
        raise NodeNotFoundError(source)
    if isinstance(cds, Backbone):
        members: Set[NodeId] = set(cds.nodes)
        algorithm = f"si-cds[{cds.algorithm}]"
    else:
        members = set(cds)

    reception: Dict[NodeId, int] = {source: 0}
    forwarded: Set[NodeId] = set()
    # Unit-delay synchronous propagation: transmissions scheduled at time t
    # are received at t + 1.
    queue: deque[tuple[int, NodeId]] = deque([(0, source)])
    forwarded.add(source)
    while queue:
        t, sender = queue.popleft()
        for w in view.neighbours(sender):
            if w not in reception:
                reception[w] = t + 1
                if w in members:
                    forwarded.add(w)
                    queue.append((t + 1, w))
    return BroadcastResult(
        source=source,
        algorithm=algorithm,
        forward_nodes=frozenset(forwarded),
        received=frozenset(reception),
        reception_time=reception,
        transmissions=len(forwarded),
    )
