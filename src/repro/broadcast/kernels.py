"""Array-native broadcast kernels: whole frontiers instead of packet objects.

The CSR core (PR 6) made construction, clustering, coverage and gateway
selection array-native; this module does the same for the **delivery
simulation** itself, the last per-trial hot path.  Three kernels:

* :func:`flooding_rows` — blind flooding as a frontier BFS over
  ``indptr``/``indices`` gathers;
* :func:`si_rows` — SI-CDS delivery: the same BFS with forwarding
  restricted to the backbone rows;
* :func:`sd_rows` — SD-CDS delivery: per-level masked gateway selection
  (:func:`~repro.backbone.gateway_selection.select_gateways_masked`) with
  the piggyback state (origin coverage, forward sets, relay-head chains)
  held in pooled arrays.

Equivalence contract (pinned by ``tests/test_broadcast_kernels.py``):

* At ``loss == 0`` the kernels reproduce the event-engine protocols and
  the centralised reference algorithms **exactly** — same received set,
  reception times, forward nodes, forward sets and transmission counts.
* At ``loss > 0`` the kernels consume the medium's RNG stream in the
  engine's delivery order — airings chronologically, one Bernoulli draw
  per neighbour in ascending receiver order (see
  :meth:`repro.sim.medium.WirelessMedium._plan_deliveries`) — so loss
  estimates are bit-identical to the engine, draw for draw.  ``loss == 0``
  consumes **no** draws, exactly like the engine's ``_rng is None`` path.

Batched trials: disjoint scenarios stack into one block-diagonal CSR
(:func:`stack_trials`) and all three kernels run *B* broadcasts per
invocation — per-block results are identical to running the kernel on each
block alone, because every propagation rule is local to a connected
component.  Per-scenario inputs (coverage tables, backbone rows) are
memoized on the scenario cache via :func:`scenario_assets`.

Dispatch: the object-layer trial path keeps the event engine / centralised
algorithms below :data:`KERNEL_CUTOVER` nodes (paper-scale goldens stay
byte-identical); the channel/MAC path (:mod:`repro.workload.storm`,
:mod:`repro.workload.contention`) stays on the engine at every size —
contention is inherently sequential.  See ``docs/broadcast_kernels.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro import perf
from repro.backbone.gateway_selection import select_gateways_masked
from repro.broadcast.result import BroadcastResult
from repro.broadcast.sd_cds import DynamicBroadcast
from repro.coverage.arrays import CoverageArrays
from repro.coverage.three_hop import three_hop_arrays
from repro.coverage.two_five_hop import two_five_hop_arrays
from repro.errors import BroadcastError
from repro.geometry.grid import grouped_ranges
from repro.graph.csr import CSRGraph, searchsorted_membership
from repro.types import CoveragePolicy, NodeId, PruningLevel

#: Node count at which the trial paths switch from the event-engine /
#: centralised reference implementations to the array kernels.  Paper-scale
#: networks (n <= 100) stay on the reference path, keeping the regression
#: goldens byte-identical; from a few hundred nodes the kernels win by a
#: growing margin (see benchmarks/bench_broadcast_kernels.py).
KERNEL_CUTOVER = 256

_EMPTY = np.empty(0, dtype=np.int64)


def _sorted_unique(a: np.ndarray) -> np.ndarray:
    """``np.unique`` for int keys via an in-place sort.

    The hot SD loop dedups mostly-distinct key arrays; a plain sort plus
    boundary scan beats ``np.unique``'s hash path there.
    """
    if a.shape[0] <= 1:
        return a
    a.sort()
    keep = np.ones(a.shape[0], dtype=bool)
    np.not_equal(a[1:], a[:-1], out=keep[1:])
    return a[keep]


class _SortedKeySet:
    """A growing set of int64 keys held as sorted chunks.

    Appending a sorted chunk is O(1); membership is one ``searchsorted``
    per chunk.  Once there are more than ``_MAX_CHUNKS`` chunks, the small
    ones fold into a single run while the largest chunk stays untouched —
    the SD kernel's per-step dedup sets (forward designations, relayed
    pairs) grow monotonically, and re-sorting the whole set every merge
    would dominate the kernel.
    """

    __slots__ = ("_chunks",)

    _MAX_CHUNKS = 4

    def __init__(self) -> None:
        self._chunks: List[np.ndarray] = []

    def add(self, keys: np.ndarray) -> None:
        """Add a **sorted** key array, disjoint from every earlier add."""
        if keys.shape[0] == 0:
            return
        self._chunks.append(keys)
        if len(self._chunks) > self._MAX_CHUNKS:
            # Chunks are pairwise disjoint, so folding needs no dedup.
            self._chunks.sort(key=lambda c: c.shape[0], reverse=True)
            tail = np.concatenate(self._chunks[1:])
            tail.sort()
            self._chunks = [self._chunks[0], tail]

    def contains(self, keys: np.ndarray) -> np.ndarray:
        """Boolean mask of which ``keys`` are in the set."""
        out = np.zeros(keys.shape[0], dtype=bool)
        for chunk in self._chunks:
            out |= searchsorted_membership(chunk, keys)
        return out


# ---------------------------------------------------------------------------
# Flooding / SI-CDS
# ---------------------------------------------------------------------------


def si_rows(
    csr: CSRGraph,
    relay_mask: np.ndarray,
    source_rows: np.ndarray,
    *,
    loss: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """SI-CDS delivery: forwarding restricted to ``relay_mask`` rows.

    Protocol: sources transmit at time 0; a relay-set node forwards once,
    on its first reception; everyone else stays silent.  Unit delay.

    Args:
        csr: The network (possibly a :func:`stack_trials` union).
        relay_mask: Boolean per-row backbone membership.  Sources forward
            regardless of membership (the engine pre-marks the source).
        source_rows: One source row per connected block.
        loss: Independent per-link drop probability.
        rng: The medium's RNG; required when ``loss > 0``, never touched
            when ``loss == 0`` (the engine's contract).

    Returns:
        ``(time, forwarded)`` — per-row first-reception step (``-1``
        unreached) and per-row transmitted flag.  ``received`` is
        ``time >= 0``; transmissions equal ``forwarded.sum()`` (a node airs
        at most once).
    """
    with perf.stage("broadcast.si"):
        return _si_rows(csr, relay_mask, source_rows, loss=loss, rng=rng)


def _si_rows(
    csr: CSRGraph,
    relay_mask: np.ndarray,
    source_rows: np.ndarray,
    *,
    loss: float,
    rng: Optional[np.random.Generator],
) -> Tuple[np.ndarray, np.ndarray]:
    n = csr.num_nodes
    time = np.full(n, -1, dtype=np.int64)
    forwarded = np.zeros(n, dtype=bool)
    src = np.unique(np.asarray(source_rows, dtype=np.int64))
    time[src] = 0
    forwarded[src] = True
    if loss <= 0.0:
        # Lossless fast path: trigger order is irrelevant (no draws, and
        # reception times depend only on BFS level), so plain frontier
        # expansion suffices.
        frontier = src
        t = 0
        while frontier.shape[0]:
            flat, _ = csr.gather_rows(frontier)
            t += 1
            nv = time[flat] < 0
            time[flat[nv]] = t
            # Scatter-then-scan dedup: cheaper than uniquing the frontier's
            # (duplicate-heavy) neighbour list.
            new = np.flatnonzero(time == t)
            frontier = new[relay_mask[new]]
            forwarded[frontier] = True
        return time, forwarded
    if rng is None:
        raise ValueError("loss > 0 needs the medium's rng")
    # Lossy path: consume draws in the engine's order — airings
    # chronologically (within a step: in the order their trigger arrivals
    # were processed, i.e. by (trigger sender, receiver)), one draw per
    # neighbour in ascending receiver order.
    air = src
    t = 0
    guard = 4 * n + 8
    while air.shape[0]:
        if t > guard:
            raise BroadcastError(
                f"si kernel did not terminate within {guard} time units"
            )
        flat, cnt = csr.gather_rows(air)
        ok = rng.random(flat.shape[0]) >= loss
        x = flat[ok]
        s = np.repeat(air, cnt)[ok]
        # First-processed arrival per receiver: deliveries sort by
        # (sender, receiver) and SI senders are distinct, so the trigger
        # copy is the minimum sender per receiver.
        order = np.lexsort((s, x))
        x, s = x[order], s[order]
        first = np.ones(x.shape[0], dtype=bool)
        first[1:] = x[1:] != x[:-1]
        x0, s0 = x[first], s[first]
        fresh = time[x0] < 0
        x0, s0 = x0[fresh], s0[fresh]
        t += 1
        time[x0] = t
        relay = relay_mask[x0]
        xr, sr = x0[relay], s0[relay]
        # Relays air inline while their trigger arrival is processed:
        # next step's draw order is (trigger sender, receiver).
        air = xr[np.lexsort((xr, sr))]
        forwarded[air] = True
    return time, forwarded


def flooding_rows(
    csr: CSRGraph,
    source_rows: np.ndarray,
    *,
    loss: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Blind flooding: :func:`si_rows` with every row in the relay set."""
    with perf.stage("broadcast.flooding"):
        relay_mask = np.ones(csr.num_nodes, dtype=bool)
        return _si_rows(csr, relay_mask, source_rows, loss=loss, rng=rng)


# ---------------------------------------------------------------------------
# SD-CDS
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SDKernelRun:
    """Raw output of :func:`sd_rows` (all values CSR rows).

    Attributes:
        time: Per-row first-reception step; ``-1`` unreached.
        forwarded: Per-row "transmitted at least once" flag.
        tx_row: Per-row transmission count (a gateway designated by two
            heads relays twice; ``tx_row.sum()`` is the engine's
            ``transmissions`` counter).
        done_heads: Rows of clusterheads that ran gateway selection, in
            trigger order.
        fs_head / fs_gw: One entry per selected forward designation —
            head ``fs_head[k]`` designated gateway ``fs_gw[k]``.
        pt_head / pt_ch: One entry per surviving (post-pruning) coverage
            target of a triggered head.
    """

    time: np.ndarray
    forwarded: np.ndarray
    tx_row: np.ndarray
    done_heads: np.ndarray
    fs_head: np.ndarray
    fs_gw: np.ndarray
    pt_head: np.ndarray
    pt_ch: np.ndarray

    @property
    def transmissions(self) -> int:
        """Total airings — the engine's per-transmit counter."""
        return int(self.tx_row.sum())


def coverage_target_keys(cov: CoverageArrays) -> np.ndarray:
    """Sorted unique ``head * n + ch`` keys of every head's coverage set.

    ``all_targets`` of head ``h`` is the slice ``[h*n, (h+1)*n)`` — the
    SD kernel reads origin coverages (for pruning) and pruned target sets
    straight from these keys.
    """
    n = cov.csr.num_nodes
    return np.unique(
        np.concatenate([cov.d_head * n + cov.d_ch, cov.i_head * n + cov.i_ch])
    )


def sd_rows(
    csr: CSRGraph,
    head_row: np.ndarray,
    cov: CoverageArrays,
    source_rows: np.ndarray,
    *,
    pruning: PruningLevel = PruningLevel.FULL,
    cov_keys: Optional[np.ndarray] = None,
    loss: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    collect: bool = True,
) -> SDKernelRun:
    """SD-CDS delivery: dynamic per-head gateway selection, vectorised.

    Replays :func:`repro.broadcast.sd_cds.broadcast_sd` (and the
    distributed protocol) level by level: all clusterheads triggered at a
    step run one masked batch selection; member relays carry the pooled
    relay-head chains forward.  Trigger copies follow the engine's event
    order — arrivals process by ``(sender, receiver, airing)``, so per
    receiver the qualifying copy with the lowest sender (then earliest
    airing) wins.

    Args:
        csr: The network (possibly a :func:`stack_trials` union).
        head_row: Per-row clusterhead assignment.
        cov: Coverage witness tables over ``csr`` (matching the policy).
        source_rows: One source row per connected block.
        pruning: Piggyback exploitation level (paper default ``FULL``).
        cov_keys: Pre-computed :func:`coverage_target_keys` (derived when
            omitted).
        loss / rng: As in :func:`si_rows`.
        collect: Record the reporting arrays (``done_heads``, ``fs_*``,
            ``pt_*``).  Batched metric trials only consume ``time`` /
            ``forwarded`` / ``tx_row`` and pass ``False`` to skip the
            bookkeeping; delivery results are identical either way.

    Returns:
        An :class:`SDKernelRun`.

    Raises:
        BroadcastError: if propagation exceeds ``4 * n + 8`` steps.
    """
    with perf.stage("broadcast.sd"):
        return _sd_rows(
            csr, head_row, cov, source_rows,
            pruning=pruning, cov_keys=cov_keys, loss=loss, rng=rng,
            collect=collect,
        )


def _sd_rows(
    csr: CSRGraph,
    head_row: np.ndarray,
    cov: CoverageArrays,
    source_rows: np.ndarray,
    *,
    pruning: PruningLevel,
    cov_keys: Optional[np.ndarray],
    loss: float,
    rng: Optional[np.random.Generator],
    collect: bool,
) -> SDKernelRun:
    n = csr.num_nodes
    if loss > 0.0 and rng is None:
        raise ValueError("loss > 0 needs the medium's rng")
    if cov_keys is None:
        cov_keys = coverage_target_keys(cov)
    # Head h's coverage keys occupy cov_keys[cov_starts[h]:cov_starts[h+1]]
    # — resolving the bounds once replaces a per-step binary search.
    cov_starts = np.searchsorted(
        cov_keys, np.arange(n + 1, dtype=np.int64) * n
    )
    is_head = head_row == np.arange(n, dtype=head_row.dtype)
    time = np.full(n, -1, dtype=np.int64)
    forwarded = np.zeros(n, dtype=bool)
    tx_row = np.zeros(n, dtype=np.int64)
    # Heads that have not yet run gateway selection (triggered heads leave).
    head_pending = is_head.copy()
    fs_keys = _SortedKeySet()  # origin * n + gateway
    relayed = _SortedKeySet()  # x * (n + 1) + origin + 1
    # Cheap superset filter: per-row count of designations not yet acted
    # on.  Arrivals at rows with no pending designation can never qualify
    # as member relays, so the exact (origin, gateway) membership tests
    # only ever see this small subset.
    gw_pending = np.zeros(n, dtype=np.int64)
    done_parts: List[np.ndarray] = []
    fs_head_parts: List[np.ndarray] = []
    fs_gw_parts: List[np.ndarray] = []
    pt_head_parts: List[np.ndarray] = []
    pt_ch_parts: List[np.ndarray] = []

    def head_select(th_x: np.ndarray, excl_keys: np.ndarray) -> None:
        """Triggered heads ``th_x`` (sorted) select gateways and open."""
        head_pending[th_x] = False
        conn_head, _, conn_v, conn_w = select_gateways_masked(
            cov, th_x, excl_keys
        )
        keys = _sorted_unique(
            np.concatenate([
                conn_head * n + conn_v,
                (conn_head * n + conn_w)[conn_w >= 0],
            ])
        )
        fs_keys.add(keys)
        # Heads designated as gateways never member-relay (the head path
        # handles their arrivals), so keep them out of the filter.  Each
        # (origin, gateway) key is globally unique — an origin selects
        # exactly once — so this counts every designation exactly once.
        g_rows = keys % n
        np.add.at(gw_pending, g_rows[~is_head[g_rows]], 1)
        if not collect:
            return
        done_parts.append(th_x)
        fs_head_parts.append(keys // n)
        fs_gw_parts.append(g_rows)
        starts = cov_starts[th_x]
        counts = cov_starts[th_x + 1] - starts
        tkeys = cov_keys[grouped_ranges(starts, counts)]
        if excl_keys.shape[0]:
            tkeys = tkeys[~searchsorted_membership(excl_keys, tkeys)]
        pt_head_parts.append(tkeys // n)
        pt_ch_parts.append(tkeys % n)

    def exclusion_keys(
        th_x: np.ndarray, th_o: np.ndarray, pool_rows: List[np.ndarray]
    ) -> np.ndarray:
        """Per-head exclusion keys ``x * n + ch`` under ``pruning``."""
        if pruning is PruningLevel.NONE or th_x.shape[0] == 0:
            return _EMPTY
        parts: List[np.ndarray] = []
        has_o = th_o >= 0
        o_safe = np.maximum(th_o, 0)
        starts = cov_starts[o_safe]
        counts = np.where(has_o, cov_starts[o_safe + 1] - starts, 0)
        c_ch = cov_keys[grouped_ranges(starts, counts)] % n
        parts.append(np.repeat(th_x, counts) * n + c_ch)
        parts.append(th_x[has_o] * n + th_o[has_o])
        if pruning is PruningLevel.FULL and pool_rows:
            parts.extend(pool_rows)
        return _sorted_unique(np.concatenate(parts))

    # -- initiation --------------------------------------------------------
    air_s = np.unique(np.asarray(source_rows, dtype=np.int64))
    time[air_s] = 0
    forwarded[air_s] = True
    tx_row[air_s] += 1
    src_is_head = is_head[air_s]
    air_o = np.where(src_is_head, air_s, -1)
    heads0 = air_s[src_is_head]
    if heads0.shape[0]:
        head_select(heads0, _EMPTY)
    # Member sources start the relay-head chain with their own adjacent
    # clusterheads (FULL pruning only), mirroring the initial packet.
    pool_counts = np.zeros(air_s.shape[0], dtype=np.int64)
    pool_vals = _EMPTY
    if pruning is PruningLevel.FULL and (~src_is_head).any():
        flat, cnt = csr.gather_rows(air_s)
        grp = np.repeat(np.arange(air_s.shape[0], dtype=np.int64), cnt)
        sel = is_head[flat] & ~src_is_head[grp]
        pool_vals = flat[sel].astype(np.int64)
        pool_counts = np.bincount(grp[sel], minlength=air_s.shape[0])
    pool_indptr = np.zeros(air_s.shape[0] + 1, dtype=np.int64)
    np.cumsum(pool_counts, out=pool_indptr[1:])

    # -- synchronous unit-delay propagation --------------------------------
    t = 0
    guard = 4 * n + 8
    while air_s.shape[0]:
        if t > guard:
            raise BroadcastError(
                f"sd kernel did not terminate within {guard} time units"
            )
        flat, cnt = csr.gather_rows(air_s)
        a_arr = np.repeat(np.arange(air_s.shape[0], dtype=np.int64), cnt)
        if loss > 0.0:
            ok = rng.random(flat.shape[0]) >= loss  # type: ignore[union-attr]
            # int64 up front: every key product below (x * n, x * (n + 1))
            # must not wrap for union stacks where n * n exceeds int32.
            x_arr, a_arr = flat[ok].astype(np.int64), a_arr[ok]
        else:
            x_arr = flat.astype(np.int64)
        t += 1
        nv = time[x_arr] < 0
        time[x_arr[nv]] = t

        # Arrival processing order is (sender, receiver, airing seq), so
        # per receiver the first-processed copy — min (sender, airing) —
        # is the trigger.  Only two receiver classes act on their trigger
        # (undone heads and designated gateways), so the order is resolved
        # inside those small subsets instead of sorting every arrival.
        hm = head_pending[x_arr]
        xh, ah = x_arr[hm], a_arr[hm]
        if xh.shape[0]:
            sh = air_s[ah]
            horder = np.lexsort((ah, sh, xh))
            xh, sh, ah = xh[horder], sh[horder], ah[horder]
            hfirst = np.ones(xh.shape[0], dtype=bool)
            hfirst[1:] = xh[1:] != xh[:-1]
            th_x, th_s, th_a = xh[hfirst], sh[hfirst], ah[hfirst]
        else:
            th_x = th_s = th_a = _EMPTY

        # Member relays: one per (gateway, designating origin) pair, on
        # the first qualifying copy.
        cand = np.flatnonzero(gw_pending[x_arr] > 0)
        xq, aq = x_arr[cand], a_arr[cand]
        oq = air_o[aq]
        keep = oq >= 0
        xq, aq, oq = xq[keep], aq[keep], oq[keep]
        if xq.shape[0]:
            qual = fs_keys.contains(oq * n + xq)
            xq, oq, aq = xq[qual], oq[qual], aq[qual]
        if xq.shape[0]:
            qual = ~relayed.contains(xq * (n + 1) + oq + 1)
            xq, oq, aq = xq[qual], oq[qual], aq[qual]
        if xq.shape[0]:
            # Group by (x, origin); within a group the (sender, airing)
            # order picks the trigger copy.
            sq = air_s[aq]
            gkey = xq * (n + 1) + oq + 1
            gorder = np.lexsort((aq, sq, gkey))
            gkey = gkey[gorder]
            gfirst = np.ones(gkey.shape[0], dtype=bool)
            gfirst[1:] = gkey[1:] != gkey[:-1]
            pick = gorder[gfirst]
            rm_x, rm_o = xq[pick], oq[pick]
            rm_s, rm_a = sq[pick], aq[pick]
            relayed.add(gkey[gfirst])
            np.subtract.at(gw_pending, rm_x, 1)
        else:
            rm_x = rm_o = rm_s = rm_a = _EMPTY

        # Heads select against the trigger packet's exclusions.
        if th_x.shape[0]:
            th_pool: List[np.ndarray] = []
            if pruning is PruningLevel.FULL:
                p_start = pool_indptr[th_a]
                p_cnt = pool_indptr[th_a + 1] - p_start
                th_pool.append(
                    np.repeat(th_x, p_cnt) * n
                    + pool_vals[grouped_ranges(p_start, p_cnt)]
                )
            head_select(th_x, exclusion_keys(th_x, air_o[th_a], th_pool))

        # New airings, in the engine's inline order: sorted by the trigger
        # arrival's (sender, receiver, airing seq).
        ns = np.concatenate([th_x, rm_x])
        if ns.shape[0] == 0:
            break
        no = np.concatenate([th_x, rm_o])
        ts = np.concatenate([th_s, rm_s])
        ta = np.concatenate([th_a, rm_a])
        txr = np.concatenate([th_x, rm_x])
        aorder = np.lexsort((ta, txr, ts))
        new_s, new_o = ns[aorder], no[aorder]
        forwarded[new_s] = True
        np.add.at(tx_row, new_s, 1)

        # Relay airings extend their parent chain with the relay's own
        # adjacent heads; head airings restart the chain empty.
        new_cnt = np.zeros(new_s.shape[0], dtype=np.int64)
        new_vals = _EMPTY
        if pruning is PruningLevel.FULL and rm_x.shape[0]:
            rel_pos = np.flatnonzero(aorder >= th_x.shape[0])
            rel_orig = aorder[rel_pos] - th_x.shape[0]
            p_start = pool_indptr[rm_a[rel_orig]]
            p_cnt = pool_indptr[rm_a[rel_orig] + 1] - p_start
            parent = pool_vals[grouped_ranges(p_start, p_cnt)]
            nf, nc = csr.gather_rows(rm_x[rel_orig])
            hsel = is_head[nf]
            ngrp = np.repeat(rel_pos, nc)[hsel]
            pkey = _sorted_unique(
                np.concatenate([
                    np.repeat(rel_pos, p_cnt) * n + parent,
                    ngrp * n + nf[hsel],
                ])
            )
            new_vals = pkey % n
            new_cnt = np.bincount(pkey // n, minlength=new_s.shape[0])
        air_s, air_o, pool_vals = new_s, new_o, new_vals
        pool_indptr = np.zeros(air_s.shape[0] + 1, dtype=np.int64)
        np.cumsum(new_cnt, out=pool_indptr[1:])

    def _cat(parts: List[np.ndarray]) -> np.ndarray:
        return np.concatenate(parts) if parts else _EMPTY

    return SDKernelRun(
        time=time,
        forwarded=forwarded,
        tx_row=tx_row,
        done_heads=_cat(done_parts),
        fs_head=_cat(fs_head_parts),
        fs_gw=_cat(fs_gw_parts),
        pt_head=_cat(pt_head_parts),
        pt_ch=_cat(pt_ch_parts),
    )


# ---------------------------------------------------------------------------
# Batched trials: block-diagonal stacking
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TrialStack:
    """*B* disjoint scenarios as one block-diagonal union CSR.

    Attributes:
        csr: The union graph; block ``b`` occupies rows
            ``[offsets[b], offsets[b + 1])``.
        offsets: ``(B + 1,)`` row offsets.
        head_row: Union per-row clusterhead assignment.
    """

    csr: CSRGraph
    offsets: np.ndarray
    head_row: np.ndarray

    @property
    def num_trials(self) -> int:
        return self.offsets.shape[0] - 1

    def per_trial_counts(self, mask: np.ndarray) -> np.ndarray:
        """Per-block count of set rows in a boolean row ``mask``."""
        return np.add.reduceat(mask.astype(np.int64), self.offsets[:-1])

    def per_trial_sums(self, values: np.ndarray) -> np.ndarray:
        """Per-block sum of a per-row int array."""
        return np.add.reduceat(values, self.offsets[:-1])


def stack_trials(
    csrs: Sequence[CSRGraph], head_rows: Sequence[np.ndarray]
) -> TrialStack:
    """Stack per-trial CSRs block-diagonally.

    Rows of block ``b`` shift by ``offsets[b]``; ids become the identity
    (per-trial ids are recovered from the original CSRs, never from the
    union).  Running any kernel on the union equals running it per block,
    because blocks are disconnected.
    """
    offsets = np.zeros(len(csrs) + 1, dtype=np.int64)
    np.cumsum([c.num_nodes for c in csrs], out=offsets[1:])
    indptr_parts = [np.zeros(1, dtype=np.int64)]
    indices_parts: List[np.ndarray] = []
    edge_base = 0
    for b, c in enumerate(csrs):
        indptr_parts.append(c.indptr[1:].astype(np.int64) + edge_base)
        indices_parts.append(c.indices.astype(np.int64) + offsets[b])
        edge_base += c.indices.shape[0]
    union = CSRGraph(
        indptr=np.concatenate(indptr_parts),
        indices=np.concatenate(indices_parts) if indices_parts else _EMPTY,
    )
    head_row = (
        np.concatenate(
            [h.astype(np.int64) + offsets[b] for b, h in enumerate(head_rows)]
        )
        if head_rows
        else _EMPTY
    )
    return TrialStack(csr=union, offsets=offsets, head_row=head_row)


def stack_coverage(
    stack: TrialStack, covs: Sequence[CoverageArrays]
) -> CoverageArrays:
    """Stack per-trial coverage tables onto a :class:`TrialStack`.

    Offsetting rows block by block preserves each table's ``(head, ...)``
    sort (offsets strictly increase), so the concatenation is a valid
    :class:`CoverageArrays` over the union CSR.
    """
    off = stack.offsets

    def cat(field: str) -> np.ndarray:
        parts = [
            getattr(c, field).astype(np.int64) + off[b]
            for b, c in enumerate(covs)
        ]
        return np.concatenate(parts) if parts else _EMPTY

    return CoverageArrays(
        csr=stack.csr,
        policy=covs[0].policy if covs else CoveragePolicy.TWO_FIVE_HOP,
        heads=cat("heads"),
        d_head=cat("d_head"),
        d_ch=cat("d_ch"),
        d_v=cat("d_v"),
        i_head=cat("i_head"),
        i_ch=cat("i_ch"),
        i_v=cat("i_v"),
        i_w=cat("i_w"),
    )


def stack_rows(stack: TrialStack, rows: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate per-trial row arrays with block offsets applied."""
    parts = [
        np.asarray(r, dtype=np.int64) + stack.offsets[b]
        for b, r in enumerate(rows)
    ]
    return np.concatenate(parts) if parts else _EMPTY


def stack_mask(stack: TrialStack, rows: Sequence[np.ndarray]) -> np.ndarray:
    """Boolean union-row mask from per-trial row arrays."""
    mask = np.zeros(stack.csr.num_nodes, dtype=bool)
    mask[stack_rows(stack, rows)] = True
    return mask


# ---------------------------------------------------------------------------
# Per-scenario kernel inputs, memoized on the scenario cache
# ---------------------------------------------------------------------------


class KernelAssets:
    """Array inputs of the kernels for one scenario, computed once.

    Everything here is a pure function of the clustering, so instances are
    shared across every trial that touches the same scenario (the same
    contract as the memoized clustering itself).
    """

    __slots__ = ("structure", "_cov", "_static", "_mo_rows", "_cov_keys")

    def __init__(self, structure) -> None:
        self.structure = structure
        self._cov: Dict[CoveragePolicy, CoverageArrays] = {}
        self._static: Dict[CoveragePolicy, np.ndarray] = {}
        self._mo_rows: Optional[np.ndarray] = None
        self._cov_keys: Dict[CoveragePolicy, np.ndarray] = {}

    @property
    def csr(self) -> CSRGraph:
        return self.structure.csr

    @property
    def head_row(self) -> np.ndarray:
        return np.asarray(self.structure.head_row, dtype=np.int64)

    def coverage(self, policy: CoveragePolicy) -> CoverageArrays:
        """Witness tables for ``policy`` (memoized)."""
        cov = self._cov.get(policy)
        if cov is None:
            with perf.stage("coverage"):
                builder = (
                    two_five_hop_arrays
                    if policy is CoveragePolicy.TWO_FIVE_HOP
                    else three_hop_arrays
                )
                cov = builder(self.csr, self.head_row)
            self._cov[policy] = cov
        return cov

    def coverage_keys(self, policy: CoveragePolicy) -> np.ndarray:
        """:func:`coverage_target_keys` for ``policy`` (memoized)."""
        keys = self._cov_keys.get(policy)
        if keys is None:
            keys = coverage_target_keys(self.coverage(policy))
            self._cov_keys[policy] = keys
        return keys

    def static_rows(self, policy: CoveragePolicy) -> np.ndarray:
        """Static backbone rows (heads plus gateways) for ``policy``."""
        rows = self._static.get(policy)
        if rows is None:
            from repro.backbone.gateway_selection import select_gateways_batch

            with perf.stage("selection"):
                rows = select_gateways_batch(
                    self.coverage(policy)
                ).backbone_rows()
            self._static[policy] = rows
        return rows

    def mo_rows(self) -> np.ndarray:
        """MO_CDS backbone rows: per-target lowest-witness selection.

        The tables sort by ``(head, ch, v[, w])``, so the first row of
        each ``(head, ch)`` group is exactly the deterministic choice of
        :func:`repro.backbone.mo_cds._per_target_selection` — the lowest
        connector for a 2-hop target, the lexicographically smallest relay
        pair for a 3-hop target.
        """
        if self._mo_rows is None:
            cov = self.coverage(CoveragePolicy.THREE_HOP)
            n = self.csr.num_nodes
            with perf.stage("selection"):
                parts = [cov.heads]
                d_pair = cov.d_head * n + cov.d_ch
                if d_pair.shape[0]:
                    firstd = np.ones(d_pair.shape[0], dtype=bool)
                    firstd[1:] = d_pair[1:] != d_pair[:-1]
                    parts.append(cov.d_v[firstd])
                i_pair = cov.i_head * n + cov.i_ch
                if i_pair.shape[0]:
                    firsti = np.ones(i_pair.shape[0], dtype=bool)
                    firsti[1:] = i_pair[1:] != i_pair[:-1]
                    parts.append(cov.i_v[firsti])
                    parts.append(cov.i_w[firsti])
                self._mo_rows = np.unique(np.concatenate(parts))
        return self._mo_rows

    def source_row(self, source: NodeId) -> int:
        """Row of node id ``source``."""
        return self.csr.row_of(source)


def scenario_assets(scenario) -> KernelAssets:
    """The memoized :class:`KernelAssets` of a cached scenario.

    A benign race mirrors ``Scenario.clustering``: two threads may build
    the assets concurrently; both results are identical and one wins.
    """
    assets = scenario._kernel_assets
    if assets is None:
        assets = KernelAssets(scenario.clustering)
        scenario._kernel_assets = assets
    return assets


# ---------------------------------------------------------------------------
# Single-trial bridges back to the object layer
# ---------------------------------------------------------------------------


def _reception_mapping(
    csr: CSRGraph, time: np.ndarray
) -> Dict[NodeId, int]:
    rows = np.flatnonzero(time >= 0)
    ids = csr.ids
    return dict(zip(ids[rows].tolist(), time[rows].tolist()))


def flooding_result(csr: CSRGraph, source: NodeId) -> BroadcastResult:
    """Kernel-backed :func:`repro.broadcast.flooding.blind_flooding`."""
    src = csr.row_of(source)
    time, _ = flooding_rows(csr, np.asarray([src]))
    reception = _reception_mapping(csr, time)
    received = frozenset(reception)
    return BroadcastResult(
        source=source,
        algorithm="blind-flooding",
        forward_nodes=received,
        received=received,
        reception_time=reception,
        transmissions=len(received),
    )


def si_result(
    csr: CSRGraph,
    backbone_rows: np.ndarray,
    source: NodeId,
    *,
    algorithm: str = "si-cds",
    loss: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> BroadcastResult:
    """Kernel-backed SI-CDS broadcast over explicit backbone rows."""
    src = csr.row_of(source)
    relay_mask = np.zeros(csr.num_nodes, dtype=bool)
    relay_mask[np.asarray(backbone_rows, dtype=np.int64)] = True
    time, fwd = si_rows(
        csr, relay_mask, np.asarray([src]), loss=loss, rng=rng
    )
    reception = _reception_mapping(csr, time)
    forward = frozenset(csr.ids[np.flatnonzero(fwd)].tolist())
    return BroadcastResult(
        source=source,
        algorithm=algorithm,
        forward_nodes=forward,
        received=frozenset(reception),
        reception_time=reception,
        transmissions=len(forward),
    )


def sd_result(
    assets: KernelAssets,
    source: NodeId,
    *,
    policy: CoveragePolicy = CoveragePolicy.TWO_FIVE_HOP,
    pruning: PruningLevel = PruningLevel.FULL,
    loss: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> DynamicBroadcast:
    """Kernel-backed :func:`repro.broadcast.sd_cds.broadcast_sd`."""
    csr = assets.csr
    run = sd_rows(
        csr,
        assets.head_row,
        assets.coverage(policy),
        np.asarray([assets.source_row(source)]),
        pruning=pruning,
        cov_keys=assets.coverage_keys(policy),
        loss=loss,
        rng=rng,
    )
    ids = csr.ids
    reception = _reception_mapping(csr, run.time)
    forward = frozenset(ids[np.flatnonzero(run.forwarded)].tolist())
    forward_sets: Dict[NodeId, FrozenSet[NodeId]] = {
        int(ids[h]): frozenset() for h in run.done_heads.tolist()
    }
    fs_h = ids[run.fs_head]
    fs_g = ids[run.fs_gw]
    for h, g in zip(fs_h.tolist(), fs_g.tolist()):
        forward_sets[h] = forward_sets[h] | {g}
    pruned: Dict[NodeId, FrozenSet[NodeId]] = {
        int(ids[h]): frozenset() for h in run.done_heads.tolist()
    }
    pt_h = ids[run.pt_head]
    pt_c = ids[run.pt_ch]
    for h, c in zip(pt_h.tolist(), pt_c.tolist()):
        pruned[h] = pruned[h] | {c}
    result = BroadcastResult(
        source=source,
        algorithm=f"sd-cds[{policy.label},{pruning.value}]",
        forward_nodes=forward,
        received=frozenset(reception),
        reception_time=reception,
        transmissions=run.transmissions,
    )
    return DynamicBroadcast(
        result=result,
        forward_sets=forward_sets,
        pruned_targets=pruned,
        pruning=pruning,
    )
