"""Reliable broadcast over the forwarding tree (Pagani–Rossi flavour).

Section 2 describes Pagani & Rossi's use of the cluster forwarding tree for
*reliable* broadcast delivery.  This module reproduces the mechanism's
essence on a lossy channel: the packet descends the per-source tree, and
every tree edge is an ARQ hop — the upstream node retransmits to a child
until the child's acknowledgement arrives (data and ACK transmissions are
both lossy), up to a retry budget.

Leaf delivery to ordinary cluster members rides the clusterhead's local
broadcast, repeated until every member has acknowledged (members piggyback
ACKs; we model one local round-trip per still-missing member batch).

The contrast this enables: on a channel where the plain protocols lose
delivery (see :mod:`repro.workload.robustness`), the reliable tree keeps
100% delivery and pays in retransmissions — measured by the robustness
bench extension and this module's tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.broadcast.forwarding_tree import ForwardingTree, build_forwarding_tree
from repro.broadcast.result import BroadcastResult
from repro.cluster.state import ClusterStructure
from repro.coverage.entries import CoverageSet
from repro.errors import BroadcastError, NodeNotFoundError
from repro.rng import RngLike, ensure_rng
from repro.types import CoveragePolicy, NodeId


@dataclass(frozen=True)
class ReliableBroadcast:
    """Outcome of a reliable tree broadcast.

    Attributes:
        result: The generic outcome (always full delivery unless the retry
            budget was exhausted).
        data_transmissions: Data packets sent (including retransmissions).
        ack_transmissions: Acknowledgements sent.
        retries: Retransmissions beyond the first attempt, summed over hops.
        gave_up: Hops that exhausted the retry budget (empty on success).
    """

    result: BroadcastResult
    data_transmissions: int
    ack_transmissions: int
    retries: int
    gave_up: FrozenSet[Tuple[NodeId, NodeId]]

    @property
    def overhead_factor(self) -> float:
        """Total transmissions per forward node (cost of reliability)."""
        n_fwd = max(1, self.result.num_forward_nodes)
        return (self.data_transmissions + self.ack_transmissions) / n_fwd


def broadcast_reliable_tree(
    structure: ClusterStructure,
    source: NodeId,
    *,
    loss_probability: float = 0.0,
    max_retries: int = 50,
    policy: CoveragePolicy = CoveragePolicy.TWO_FIVE_HOP,
    coverage_sets: Optional[Dict[NodeId, CoverageSet]] = None,
    rng: RngLike = None,
) -> ReliableBroadcast:
    """Run an ARQ broadcast down the per-source forwarding tree.

    Args:
        structure: The clustering.
        source: Originating node.
        loss_probability: Per-transmission loss in ``[0, 1]``, matching the
            medium's knob (applies to data and ACKs; at 1.0 every hop
            exhausts its retry budget and lands in ``gave_up``).
        max_retries: Retry budget per hop; exhausted hops are recorded in
            ``gave_up`` (delivery then may be partial).
        policy: Coverage policy for the tree.
        coverage_sets: Pre-computed coverage sets.
        rng: Seed or generator for the loss draws.

    Returns:
        The :class:`ReliableBroadcast`.
    """
    graph = structure.graph
    if source not in graph:
        raise NodeNotFoundError(source)
    if not (0.0 <= loss_probability <= 1.0):
        raise BroadcastError(
            f"loss probability must be in [0, 1], got {loss_probability}"
        )
    generator = ensure_rng(rng)
    tree = build_forwarding_tree(structure, source, policy=policy,
                                 coverage_sets=coverage_sets)

    data = 0
    acks = 0
    retries = 0
    gave_up: Set[Tuple[NodeId, NodeId]] = set()
    received: Set[NodeId] = {source}
    reception_time: Dict[NodeId, int] = {source: 0}
    forwarders: Set[NodeId] = {source}
    clock = 0

    def arq_hop(sender: NodeId, receiver: NodeId) -> bool:
        """One ARQ link: retransmit until data AND ack get through."""
        nonlocal data, acks, retries, clock
        for attempt in range(max_retries + 1):
            data += 1
            if attempt:
                retries += 1
            clock_cost = 2  # data + ack round trip
            clock_here = clock + clock_cost
            if generator.random() < loss_probability:
                continue  # data lost
            # Data arrived: receiver records it (even if the ACK dies).
            if receiver not in received:
                received.add(receiver)
                reception_time[receiver] = clock_here
            acks += 1
            if generator.random() < loss_probability:
                continue  # ack lost -> sender retries (duplicate data)
            return True
        gave_up.add((sender, receiver))
        return False

    # Ascend: a member source hands the packet to its head.
    order: List[Tuple[NodeId, NodeId]] = []
    if tree.root != source:
        order.append((source, tree.root))
    # Descend the tree in BFS order (parents before children).
    heads_by_depth = sorted(
        (h for h in structure.clusterheads if h != tree.root),
        key=tree.depth_of,
    )
    for child in heads_by_depth:
        parent, path = tree.parent[child]
        chain = [parent, *path, child]
        for a, b in zip(chain, chain[1:]):
            order.append((a, b))

    for sender, receiver in order:
        if sender not in received:
            continue  # upstream hop failed; this subtree is unreachable
        clock += 2
        forwarders.add(sender)  # it transmits even if every attempt is lost
        arq_hop(sender, receiver)

    # Local delivery: every head repeats its local broadcast until all its
    # members have the packet (members' ACKs ride the same loss model).
    for head in structure.sorted_heads():
        if head not in received:
            continue
        missing = [m for m in sorted(structure.members(head))
                   if m not in received]
        attempt = 0
        while missing and attempt <= max_retries:
            data += 1
            forwarders.add(head)
            clock += 1
            if attempt:
                retries += 1
            still_missing = []
            for m in missing:
                if generator.random() < loss_probability:
                    still_missing.append(m)
                    continue
                if m not in received:
                    received.add(m)
                    reception_time[m] = clock
                acks += 1
                # A lost ACK makes the head repeat for this member.
                if generator.random() < loss_probability:
                    still_missing.append(m)
            missing = still_missing
            attempt += 1
        for m in missing:
            gave_up.add((head, m))

    result = BroadcastResult(
        source=source,
        algorithm=f"reliable-tree[{policy.label},p={loss_probability:g}]",
        forward_nodes=frozenset(forwarders),
        received=frozenset(received),
        reception_time=reception_time,
        transmissions=data,
    )
    return ReliableBroadcast(
        result=result,
        data_transmissions=data,
        ack_transmissions=acks,
        retries=retries,
        gave_up=frozenset(gave_up),
    )
