"""Passive clustering flooding (Kwon & Gerla) — related-work baseline.

Section 2: "a passive clustering scheme that constructs the cluster
structure during the data propagation.  A clusterhead candidate applies the
'first declaration wins' rule to become a clusterhead when it successfully
transmits a packet.  Then, its neighbor nodes ... become gateways if they
have more than one adjacent clusterhead or ordinary (non-clusterhead) nodes
otherwise ... but it suffers poor delivery rate ..."

Rules implemented (the packet header carries the sender's state, as in the
original scheme):

* **first declaration wins** — an ``INITIAL`` node that transmits with no
  known neighbouring clusterhead becomes a ``CLUSTERHEAD``; one that does
  know a head becomes a ``GATEWAY`` by transmitting;
* a silent non-head that has heard **two or more** clusterheads becomes a
  ``GATEWAY`` candidate anyway (inter-cluster bridge);
* a silent non-head that has heard exactly one clusterhead **and** at least
  one gateway becomes ``ORDINARY`` — its cluster is already served;
* forwarding: each receiver arms a relay after a random channel-access
  jitter; when the jitter expires an ``ORDINARY`` node stays silent,
  anybody else transmits.  (The jitter is what lets passive clustering
  work at all: state transitions ride on packets that are overheard while
  contending for the channel.)

Because suppression is decided from purely local, order-dependent evidence,
delivery is **not guaranteed** — the weakness the paper attributes to the
scheme.  Sparse networks show occasional genuine gaps; dense ones trade a
little delivery risk for large forward-set savings, which the robustness
experiments quantify.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Set

from repro.broadcast.result import BroadcastResult
from repro.errors import BroadcastError, NodeNotFoundError
from repro.graph.adjacency import Graph
from repro.rng import RngLike, ensure_rng
from repro.types import NodeId


class PassiveState(enum.Enum):
    """Node states of the passive clustering scheme."""

    INITIAL = "initial"
    CLUSTERHEAD = "clusterhead"
    GATEWAY = "gateway"
    ORDINARY = "ordinary"


@dataclass(frozen=True)
class PassiveClusteringBroadcast:
    """Result plus the cluster structure the flood left behind.

    Attributes:
        result: The generic broadcast outcome (possibly partial delivery!).
        states: Final per-node passive-clustering states.
    """

    result: BroadcastResult
    states: Dict[NodeId, PassiveState]

    def heads(self) -> FrozenSet[NodeId]:
        """Nodes that declared themselves clusterheads."""
        return frozenset(
            v for v, s in self.states.items() if s is PassiveState.CLUSTERHEAD
        )

    def suppressed(self) -> FrozenSet[NodeId]:
        """Receivers the scheme silenced (ordinary nodes that cancelled)."""
        return frozenset(
            v for v, s in self.states.items()
            if s is PassiveState.ORDINARY and v in self.result.received
        )


def broadcast_passive_clustering(
    graph: Graph,
    source: NodeId,
    *,
    rng: RngLike = None,
    latency: float = 0.05,
    jitter: tuple[float, float] = (0.1, 1.0),
) -> PassiveClusteringBroadcast:
    """Flood from ``source`` with passive clustering suppressing relays.

    Args:
        graph: The network.
        source: Originating node.
        rng: Seed or generator for the channel-access jitter.
        latency: Transmission delay; must be small relative to the jitter
            so state declarations can be overheard before relaying (the
            situation of a real CSMA channel).
        jitter: ``(min, max)`` uniform channel-access delay per relay.

    Returns:
        The :class:`PassiveClusteringBroadcast`.  Check
        ``result.delivered_to_all(graph)`` — unlike every other protocol in
        this library, it may be ``False`` by design.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    if latency <= 0 or jitter[0] < 0 or jitter[1] < jitter[0]:
        raise BroadcastError(
            f"invalid timing: latency={latency}, jitter={jitter}"
        )
    generator = ensure_rng(rng)
    state: Dict[NodeId, PassiveState] = {v: PassiveState.INITIAL for v in graph}
    heard_heads: Dict[NodeId, Set[NodeId]] = {v: set() for v in graph}
    heard_gateways: Dict[NodeId, Set[NodeId]] = {v: set() for v in graph}
    reception: Dict[NodeId, float] = {source: 0.0}
    forwarded: Set[NodeId] = set()
    suppressed_relays: Set[NodeId] = set()
    counter = itertools.count()
    #: (time, seq, kind, node): kind 0 = delivery of node's transmission,
    #: kind 1 = relay-jitter expiry at node.
    heap: list = []

    def settle_role(v: NodeId) -> None:
        if state[v] in (PassiveState.CLUSTERHEAD, PassiveState.GATEWAY):
            return
        if len(heard_heads[v]) >= 2:
            state[v] = PassiveState.GATEWAY
        elif len(heard_heads[v]) == 1 and heard_gateways[v]:
            state[v] = PassiveState.ORDINARY

    def transmit(time: float, sender: NodeId) -> None:
        # First declaration wins, applied at (successful) transmission.
        if state[sender] in (PassiveState.INITIAL, PassiveState.ORDINARY):
            if not heard_heads[sender]:
                state[sender] = PassiveState.CLUSTERHEAD
            else:
                state[sender] = PassiveState.GATEWAY
        forwarded.add(sender)
        heapq.heappush(heap, (time + latency, next(counter), 0, sender))

    transmit(0.0, source)
    budget = 16 * graph.num_nodes + 64
    processed = 0
    while heap:
        time, _seq, kind, node = heapq.heappop(heap)
        processed += 1
        if processed > budget * 4:
            raise BroadcastError("passive clustering flood did not terminate")
        if kind == 0:
            # node's transmission arrives at all neighbours now.
            node_state = state[node]
            for x in sorted(graph.neighbours_view(node)):
                if node_state is PassiveState.CLUSTERHEAD:
                    heard_heads[x].add(node)
                elif node_state is PassiveState.GATEWAY:
                    heard_gateways[x].add(node)
                settle_role(x)
                if x not in reception:
                    reception[x] = time
                    delay = float(generator.uniform(*jitter))
                    heapq.heappush(
                        heap, (time + delay, next(counter), 1, x)
                    )
        else:
            if node in forwarded:
                continue
            if state[node] is PassiveState.ORDINARY:
                suppressed_relays.add(node)
            else:
                transmit(time, node)

    return PassiveClusteringBroadcast(
        result=BroadcastResult(
            source=source,
            algorithm="passive-clustering",
            forward_nodes=frozenset(forwarded),
            received=frozenset(reception),
            reception_time={v: int(t) for v, t in reception.items()},
            transmissions=len(forwarded),
        ),
        states=state,
    )
