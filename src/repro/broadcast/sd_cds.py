"""Broadcasting in the cluster-based SD-CDS (dynamic) backbone.

This is the paper's main contribution (Section 3, "Broadcasting in a
Cluster-Based SD-CDS Backbone"):

1. A non-clusterhead source transmits once; its clusterhead takes over.
2. A clusterhead, on **first** reception, selects forward gateways covering
   its coverage set *pruned* by the piggybacked history — the upstream
   head's coverage set ``C(u)``, the upstream head itself, and (2.5-hop /
   ``FULL`` pruning) clusterheads adjacent to relays on the delivery path
   (the paper's ``N(r)`` rule) — then transmits, piggybacking its own
   original ``C(v)`` and forward-node set ``F(v)``.
3. A non-clusterhead relays a packet copy that designates it in ``F``.

Model notes (see DESIGN.md, "Interpretation decisions"):

* Transmissions have unit delay; simultaneous arrivals are processed in
  ascending sender id, making runs deterministic.
* Every clusterhead forwards exactly once, on its first received copy (the
  dynamic backbone always contains all clusterheads).
* A gateway relays at most once **per designating clusterhead** — if two
  heads independently designate the same gateway, both relays happen; the
  *forward node set* still counts the node once (the paper's metric), while
  ``transmissions`` counts both.  This closes the designation race a strict
  first-copy-only rule would leave open and makes full delivery provable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro import perf
from repro.backbone.gateway_selection import select_gateways
from repro.broadcast.result import BroadcastResult
from repro.cluster.state import ClusterStructure
from repro.coverage.entries import CoverageSet
from repro.coverage.policy import compute_all_coverage_sets
from repro.errors import BroadcastError, NodeNotFoundError
from repro.types import CoveragePolicy, NodeId, PruningLevel

if TYPE_CHECKING:
    from repro.topology.coverage_index import CoverageIndex
    from repro.topology.view import TopologyView


@dataclass(frozen=True)
class Packet:
    """One in-flight copy of the broadcast packet with its piggyback.

    Attributes:
        origin: The clusterhead whose selection produced this copy (``None``
            for the initial transmission of a non-clusterhead source).
        coverage: The origin head's **original** coverage set ``C(u)`` (the
            paper piggybacks the pre-pruning set — the Section 3 illustration
            shows head 3 piggybacking ``C(3) = {1,2,4}``).
        forward_set: The origin head's forward-node set ``F(u)`` (first- and
            second-hop relays).
        relay_heads: Clusterheads adjacent to nodes that transmitted this
            copy along the current relay chain — the information behind the
            paper's ``N(r)`` pruning rule.
    """

    origin: Optional[NodeId]
    coverage: FrozenSet[NodeId]
    forward_set: FrozenSet[NodeId]
    relay_heads: FrozenSet[NodeId]


@dataclass(frozen=True)
class DynamicBroadcast:
    """A :class:`BroadcastResult` plus dynamic-backbone specifics.

    Attributes:
        result: The generic broadcast outcome.
        forward_sets: Per-clusterhead selected forward-node sets ``F(v)``
            (empty frozenset for heads that only broadcast locally).
        pruned_targets: Per-clusterhead targets remaining after pruning —
            what the head actually had to cover.
        pruning: The pruning level used.
    """

    result: BroadcastResult
    forward_sets: Mapping[NodeId, FrozenSet[NodeId]]
    pruned_targets: Mapping[NodeId, FrozenSet[NodeId]]
    pruning: PruningLevel

    @property
    def backbone_nodes(self) -> FrozenSet[NodeId]:
        """The source-dependent CDS this broadcast realised (Theorem 2).

        This is exactly the forward-node set: the clusterheads, the
        dynamically designated gateways, **and the source** — a non-head
        source's initial transmission can itself be a load-bearing link of
        the backbone (e.g. a member adjacent to two clusterheads whose
        pruned coverage sets are both empty), so it belongs to the CDS.
        """
        return self.result.forward_nodes

    @property
    def designated_gateways(self) -> FrozenSet[NodeId]:
        """Only the gateways the clusterheads selected on the fly."""
        gateways: Set[NodeId] = set()
        for f in self.forward_sets.values():
            gateways |= f
        return frozenset(gateways)


@perf.timed("broadcast")
def broadcast_sd(
    structure: ClusterStructure,
    source: NodeId,
    *,
    policy: CoveragePolicy = CoveragePolicy.TWO_FIVE_HOP,
    pruning: PruningLevel = PruningLevel.FULL,
    coverage_sets: Optional[Mapping[NodeId, CoverageSet]] = None,
    view: Optional["TopologyView"] = None,
    index: Optional["CoverageIndex"] = None,
) -> DynamicBroadcast:
    """Run one dynamic-backbone broadcast.

    Args:
        structure: The clustering of the network.
        source: Originating node (clusterhead or member).
        policy: Coverage-set definition clusterheads use.
        pruning: How much piggybacked history to exploit (``FULL`` is the
            paper's protocol; ``BASIC``/``NONE`` exist for ablation).
        coverage_sets: Pre-computed coverage sets matching ``policy``.
        view: Shared topology view serving the propagation loop's neighbour
            queries (defaults to the structure's own view, so repeated
            broadcasts over one clustering share the memoized answers).
        index: A coverage index to pull per-head coverage sets from instead
            of recomputing them (its policy must match ``policy``; mutually
            exclusive with ``coverage_sets``).

    Returns:
        A :class:`DynamicBroadcast`.
    """
    graph = structure.graph
    if source not in graph:
        raise NodeNotFoundError(source)
    if view is None:
        view = structure.topology
    if index is not None:
        if coverage_sets is not None:
            raise ValueError("pass either coverage_sets or index, not both")
        if index.policy is not policy:
            raise ValueError(
                f"index policy {index.policy.label} does not match "
                f"requested policy {policy.label}"
            )
        coverage_sets = index.all_coverage_sets(structure)
    if coverage_sets is None:
        coverage_sets = compute_all_coverage_sets(structure, policy, view=view)

    reception: Dict[NodeId, int] = {source: 0}
    forward_nodes: Set[NodeId] = set()
    transmissions = 0
    #: (gateway, designating head) pairs already relayed.
    relayed_for: Set[Tuple[NodeId, Optional[NodeId]]] = set()
    forwarded_heads: Set[NodeId] = set()
    forward_sets: Dict[NodeId, FrozenSet[NodeId]] = {}
    pruned_targets: Dict[NodeId, FrozenSet[NodeId]] = {}
    #: time -> transmissions to deliver, kept sorted by sender id.
    schedule: Dict[int, List[Tuple[NodeId, Packet]]] = {}

    def transmit(time: int, sender: NodeId, packet: Packet) -> None:
        nonlocal transmissions
        schedule.setdefault(time, []).append((sender, packet))
        forward_nodes.add(sender)
        transmissions += 1

    def exclusions(packet: Packet) -> FrozenSet[NodeId]:
        if pruning is PruningLevel.NONE:
            return frozenset()
        excl: Set[NodeId] = set(packet.coverage)
        if packet.origin is not None:
            excl.add(packet.origin)
        if pruning is PruningLevel.FULL:
            excl |= packet.relay_heads
        return frozenset(excl)

    def head_transmit(head: NodeId, time: int, via: Optional[Packet]) -> None:
        """Clusterhead ``head`` selects gateways and transmits at ``time``."""
        forwarded_heads.add(head)
        cov = coverage_sets[head]
        excl = exclusions(via) if via is not None else frozenset()
        targets = cov.all_targets - excl
        selection = select_gateways(cov, targets)
        forward_sets[head] = selection.gateways
        pruned_targets[head] = frozenset(targets)
        transmit(
            time,
            head,
            Packet(
                origin=head,
                coverage=cov.all_targets,
                forward_set=selection.gateways,
                # Heads have no neighbouring heads (independent set), so the
                # relay-head accumulator restarts empty at each head.
                relay_heads=frozenset(),
            ),
        )

    # -- initiation --------------------------------------------------------
    if structure.is_clusterhead(source):
        head_transmit(source, 0, None)
    else:
        transmit(
            0,
            source,
            Packet(
                origin=None,
                coverage=frozenset(),
                forward_set=frozenset(),
                relay_heads=structure.neighbouring_clusterheads(source)
                if pruning is PruningLevel.FULL
                else frozenset(),
            ),
        )

    # -- synchronous unit-delay propagation ---------------------------------
    guard = 4 * graph.num_nodes + 8
    while schedule:
        t = min(schedule)
        if t > guard:
            raise BroadcastError(
                f"sd-cds broadcast from {source} did not terminate within "
                f"{guard} time units"
            )
        batch = sorted(schedule.pop(t), key=lambda sp: sp[0])
        for sender, packet in batch:
            for x in view.sorted_neighbours(sender):
                if x not in reception:
                    reception[x] = t + 1
                if structure.is_clusterhead(x):
                    if x not in forwarded_heads:
                        head_transmit(x, t + 1, packet)
                else:
                    key = (x, packet.origin)
                    if x in packet.forward_set and key not in relayed_for:
                        relayed_for.add(key)
                        transmit(
                            t + 1,
                            x,
                            Packet(
                                origin=packet.origin,
                                coverage=packet.coverage,
                                forward_set=packet.forward_set,
                                relay_heads=packet.relay_heads
                                | structure.neighbouring_clusterheads(x),
                            ),
                        )

    result = BroadcastResult(
        source=source,
        algorithm=f"sd-cds[{policy.label},{pruning.value}]",
        forward_nodes=frozenset(forward_nodes),
        received=frozenset(reception),
        reception_time=reception,
        transmissions=transmissions,
    )
    return DynamicBroadcast(
        result=result,
        forward_sets=forward_sets,
        pruned_targets=pruned_targets,
        pruning=pruning,
    )
