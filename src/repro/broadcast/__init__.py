"""Broadcast protocols and their accounting.

Four ways to broadcast a packet through a clustered MANET:

* :func:`~repro.broadcast.flooding.blind_flooding` — every node forwards
  once (the broadcast-storm baseline);
* :func:`~repro.broadcast.si_cds.broadcast_si` — flood restricted to a
  source-independent CDS (the static backbone or the MO_CDS);
* :func:`~repro.broadcast.sd_cds.broadcast_sd` — the paper's dynamic
  backbone: clusterheads select forward gateways on the fly, pruning their
  coverage sets with the piggybacked history;
* :func:`~repro.broadcast.dominant_pruning.broadcast_dominant_pruning` — a
  classic SD-CDS comparison point (Lim & Kim) included as an extension.

All return a :class:`~repro.broadcast.result.BroadcastResult` whose
``num_forward_nodes`` is the paper's Figure 7/8 metric.
"""

from repro.broadcast.delivery import check_full_delivery, delivery_ratio
from repro.broadcast.flooding import blind_flooding
from repro.broadcast.forwarding_tree import (
    ForwardingTree,
    broadcast_forwarding_tree,
    build_forwarding_tree,
)
from repro.broadcast.mpr import all_mpr_sets, broadcast_mpr, mpr_set
from repro.broadcast.passive_clustering import (
    PassiveClusteringBroadcast,
    PassiveState,
    broadcast_passive_clustering,
)
from repro.broadcast.rad import RadBroadcast, broadcast_rad
from repro.broadcast.reliable import ReliableBroadcast, broadcast_reliable_tree
from repro.broadcast.result import BroadcastResult
from repro.broadcast.sd_cds import DynamicBroadcast, broadcast_sd
from repro.broadcast.si_cds import broadcast_si
from repro.broadcast.dominant_pruning import broadcast_dominant_pruning

__all__ = [
    "BroadcastResult",
    "blind_flooding",
    "broadcast_si",
    "broadcast_sd",
    "DynamicBroadcast",
    "broadcast_dominant_pruning",
    "check_full_delivery",
    "delivery_ratio",
    "broadcast_rad",
    "RadBroadcast",
    "broadcast_mpr",
    "mpr_set",
    "all_mpr_sets",
    "broadcast_forwarding_tree",
    "build_forwarding_tree",
    "ForwardingTree",
    "broadcast_passive_clustering",
    "PassiveClusteringBroadcast",
    "PassiveState",
    "broadcast_reliable_tree",
    "ReliableBroadcast",
]
