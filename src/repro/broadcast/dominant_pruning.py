"""Dominant pruning (Lim & Kim) — an extension comparison point.

The paper cites dominant pruning as a classic source-dependent CDS scheme
(Section 2).  It is not part of the paper's evaluation, but having a
non-cluster-based SD-CDS in the library lets users place the cluster-based
dynamic backbone in context, so we include it as an extension.

Protocol: each forwarding node ``v``, on first reception from sender ``u``,
greedily picks a forward set ``F ⊆ N(v) \\ N(u)`` covering the uncovered part
of ``U = N^2(v) \\ (N(u) ∪ N(v))`` (nodes two hops from ``v`` not already
reached by ``u``'s or ``v``'s transmissions); designated nodes repeat the
process.  Greedy = repeatedly take the neighbour covering the most uncovered
targets (ties to the lower id).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.broadcast.result import BroadcastResult
from repro.errors import BroadcastError, NodeNotFoundError
from repro.graph.adjacency import Graph
from repro.types import NodeId


def _greedy_forward_set(
    graph: Graph, v: NodeId, prev: Optional[NodeId]
) -> Set[NodeId]:
    """Dominant-pruning forward-set selection at node ``v``."""
    n_v = graph.closed_neighbourhood(v)
    n_u = graph.closed_neighbourhood(prev) if prev is not None else {v}
    candidates = sorted(n_v - n_u - {v})
    full_candidates = sorted(n_v - {v})
    uncovered: Set[NodeId] = set()
    for w in n_v - {v}:
        uncovered |= graph.neighbours_view(w)
    uncovered -= n_v | n_u
    forward: Set[NodeId] = set()
    while uncovered:
        best: Optional[NodeId] = None
        best_gain = 0
        for c in candidates:
            if c in forward:
                continue
            gain = len(graph.neighbours_view(c) & uncovered)
            if gain > best_gain:
                best, best_gain = c, gain
        if best is None:
            if candidates is not full_candidates:
                # Remaining targets are only reachable through neighbours the
                # sender also covers; widen the candidate pool so local
                # coverage (and hence global delivery) is unconditional.
                candidates = full_candidates
                continue
            break
        forward.add(best)
        uncovered -= graph.neighbours_view(best)
    return forward


def broadcast_dominant_pruning(graph: Graph, source: NodeId) -> BroadcastResult:
    """Run a dominant-pruning broadcast from ``source``.

    Args:
        graph: The network.
        source: Originating node.

    Returns:
        The :class:`~repro.broadcast.result.BroadcastResult`.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    reception: Dict[NodeId, int] = {source: 0}
    forwarded: Set[NodeId] = set()
    transmissions = 0
    schedule: Dict[int, List[Tuple[NodeId, Optional[NodeId], Set[NodeId]]]] = {}

    def transmit(time: int, sender: NodeId, prev: Optional[NodeId]) -> None:
        nonlocal transmissions
        fset = _greedy_forward_set(graph, sender, prev)
        schedule.setdefault(time, []).append((sender, prev, fset))
        forwarded.add(sender)
        transmissions += 1

    transmit(0, source, None)
    guard = 4 * graph.num_nodes + 8
    while schedule:
        t = min(schedule)
        if t > guard:
            raise BroadcastError(
                f"dominant pruning from {source} did not terminate"
            )
        batch = sorted(schedule.pop(t), key=lambda item: item[0])
        for sender, _prev, fset in batch:
            for x in sorted(graph.neighbours_view(sender)):
                if x not in reception:
                    reception[x] = t + 1
                if x in fset and x not in forwarded:
                    transmit(t + 1, x, sender)

    return BroadcastResult(
        source=source,
        algorithm="dominant-pruning",
        forward_nodes=frozenset(forwarded),
        received=frozenset(reception),
        reception_time=reception,
        transmissions=transmissions,
    )
