"""Delivery verification for broadcast results."""

from __future__ import annotations

from repro.broadcast.result import BroadcastResult
from repro.errors import BroadcastError
from repro.graph.adjacency import Graph


def delivery_ratio(graph: Graph, result: BroadcastResult) -> float:
    """Fraction of the graph's nodes that received the packet."""
    if graph.num_nodes == 0:
        return 1.0
    reached = sum(1 for v in graph.nodes() if v in result.received)
    return reached / graph.num_nodes


def check_full_delivery(graph: Graph, result: BroadcastResult) -> None:
    """Raise :class:`~repro.errors.BroadcastError` unless all nodes received.

    On a connected network every protocol in this library must achieve full
    delivery (Theorems 1 and 2 for the CDS protocols); failing this check on
    a connected graph indicates a bug, and the error lists the missed nodes.
    """
    missing = [v for v in graph.nodes() if v not in result.received]
    if missing:
        raise BroadcastError(
            f"{result.algorithm}: broadcast from {result.source} missed "
            f"{len(missing)} node(s): {missing[:10]}"
        )
