"""Cluster-based forwarding tree (Pagani & Rossi) — related-work baseline.

Section 2: "Pagani and Rossi set up a cluster-based forwarding tree for a
reliable broadcast process.  The forwarding tree is rooted at the
clusterhead of source and follows the order of clusterhead, gateway, then
clusterhead again to build the tree ... level by level until all the
clusters join in the tree."

We build that tree deterministically on top of this library's coverage
sets: BFS over the cluster graph from the source's clusterhead, attaching
each newly reached clusterhead through the connector path (one or two
gateways) its parent's gateway selection provides.  The tree's node set is
a source-dependent CDS; broadcasting along it forwards only tree nodes.

The paper's criticism — "such a forwarding tree is hard to maintain in
MANETs" — is measurable with :mod:`repro.maintenance`: the tree changes
with both topology *and* source.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.backbone.gateway_selection import select_gateways
from repro.broadcast.result import BroadcastResult
from repro.cluster.state import ClusterStructure
from repro.coverage.entries import CoverageSet
from repro.coverage.policy import compute_all_coverage_sets
from repro.errors import BroadcastError, NodeNotFoundError
from repro.types import CoveragePolicy, NodeId


@dataclass(frozen=True)
class ForwardingTree:
    """The per-source tree over clusters.

    Attributes:
        root: The source's clusterhead.
        parent: Child clusterhead -> (parent clusterhead, connector path).
        nodes: All tree nodes (clusterheads + connector gateways).
    """

    root: NodeId
    parent: Mapping[NodeId, Tuple[NodeId, Tuple[NodeId, ...]]]
    nodes: FrozenSet[NodeId]

    @property
    def num_clusters(self) -> int:
        """Clusterheads in the tree (root included)."""
        return 1 + len(self.parent)

    def depth_of(self, head: NodeId) -> int:
        """Tree depth of a clusterhead (root = 0)."""
        depth = 0
        cur = head
        while cur != self.root:
            cur = self.parent[cur][0]
            depth += 1
            if depth > len(self.parent) + 1:  # pragma: no cover
                raise BroadcastError("forwarding tree has a parent cycle")
        return depth


def build_forwarding_tree(
    structure: ClusterStructure,
    source: NodeId,
    *,
    policy: CoveragePolicy = CoveragePolicy.TWO_FIVE_HOP,
    coverage_sets: Optional[Mapping[NodeId, CoverageSet]] = None,
) -> ForwardingTree:
    """Build the Pagani–Rossi style tree rooted at ``source``'s clusterhead.

    Args:
        structure: The clustering.
        source: The broadcast source (any node).
        policy: Coverage definition supplying the cluster links.
        coverage_sets: Pre-computed coverage sets.

    Returns:
        The :class:`ForwardingTree` spanning every cluster.

    Raises:
        BroadcastError: if some cluster is unreachable (disconnected graph).
    """
    if source not in structure.graph:
        raise NodeNotFoundError(source)
    if coverage_sets is None:
        coverage_sets = compute_all_coverage_sets(structure, policy)
    root = structure.head_of[source]
    parent: Dict[NodeId, Tuple[NodeId, Tuple[NodeId, ...]]] = {}
    seen = {root}
    queue: deque[NodeId] = deque([root])
    nodes = {root}
    while queue:
        head = queue.popleft()
        selection = select_gateways(coverage_sets[head])
        for child in sorted(selection.connectors):
            if child in seen:
                continue
            path = selection.connectors[child]
            parent[child] = (head, path)
            nodes.add(child)
            nodes.update(path)
            seen.add(child)
            queue.append(child)
    missing = structure.clusterheads - seen
    if missing:
        raise BroadcastError(
            f"forwarding tree from {source} cannot reach clusters "
            f"{sorted(missing)} (network disconnected?)"
        )
    return ForwardingTree(root=root, parent=parent, nodes=frozenset(nodes))


def broadcast_forwarding_tree(
    structure: ClusterStructure,
    source: NodeId,
    *,
    policy: CoveragePolicy = CoveragePolicy.TWO_FIVE_HOP,
    coverage_sets: Optional[Mapping[NodeId, CoverageSet]] = None,
) -> Tuple[BroadcastResult, ForwardingTree]:
    """Broadcast along the per-source forwarding tree.

    The tree nodes act as the forwarding set (an SI-CDS restricted flood
    would behave identically once the tree is fixed); the source transmits
    even when it is not a tree node.

    Returns:
        The broadcast result and the tree it rode on.
    """
    tree = build_forwarding_tree(
        structure, source, policy=policy, coverage_sets=coverage_sets
    )
    from repro.broadcast.si_cds import broadcast_si

    result = broadcast_si(
        structure.graph, tree.nodes, source,
        algorithm=f"forwarding-tree[{policy.label}]",
    )
    return result, tree
