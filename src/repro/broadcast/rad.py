"""Random-assessment-delay (RAD) broadcasting — the paper's back-off pruning.

Section 3, discussing Figure 5: "When a node receives a broadcast packet, if
it can back-off a short period of time before it relays the packet, it may
receive more copies of the same packet from its other neighbors.  If all of
its neighbors can be covered by these already received broadcast copies, it
can resign its role of re-broadcast operation."

This module implements exactly that coverage-based back-off (Ni et al.'s
location/neighbour-coverage scheme): on first reception a node draws a
uniform delay; every copy heard from a sender ``s`` marks ``N(s)`` as
covered; when the delay expires the node relays only if some neighbour is
still uncovered.  Nodes need 2-hop neighbourhood knowledge (who their
neighbours' neighbours are), which the paper's CH_HOP exchange provides.

Coverage-based cancellation is conservative, so full delivery is guaranteed
on an ideal channel (property-tested); the price is latency — the very
trade-off the paper notes ("the first one will lead to more delay time").
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, Set

from repro.broadcast.result import BroadcastResult
from repro.errors import BroadcastError, ConfigurationError, NodeNotFoundError
from repro.graph.adjacency import Graph
from repro.rng import RngLike, ensure_rng
from repro.types import NodeId


@dataclass(frozen=True)
class RadBroadcast:
    """A :class:`BroadcastResult` plus RAD-specific accounting.

    Attributes:
        result: The generic outcome (reception times are floats rounded to
            ints in the generic result; exact times live here).
        cancelled: Nodes that armed a relay but cancelled it (their
            neighbourhood was fully covered before the delay expired).
        exact_reception_time: Unrounded reception times.
    """

    result: BroadcastResult
    cancelled: frozenset
    exact_reception_time: Dict[NodeId, float]

    @property
    def cancellation_ratio(self) -> float:
        """Fraction of receiving nodes that suppressed their relay."""
        n = len(self.result.received)
        return len(self.cancelled) / n if n else 0.0


def broadcast_rad(
    graph: Graph,
    source: NodeId,
    *,
    max_delay: float = 1.0,
    rng: RngLike = None,
) -> RadBroadcast:
    """Run a coverage-based RAD broadcast from ``source``.

    Args:
        graph: The network.
        source: Originating node (transmits immediately).
        max_delay: Upper bound of the uniform per-node assessment delay, in
            units of the transmission latency (1.0).
        rng: Seed or generator for the delays.

    Returns:
        The :class:`RadBroadcast`.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    if max_delay < 0.0:
        raise ConfigurationError(f"max_delay must be >= 0, got {max_delay}")
    generator = ensure_rng(rng)

    #: transmission latency (kept at 1 like the rest of the library).
    latency = 1.0
    reception: Dict[NodeId, float] = {source: 0.0}
    covered: Dict[NodeId, Set[NodeId]] = {v: set() for v in graph}
    forwarded: Set[NodeId] = set()
    cancelled: Set[NodeId] = set()
    counter = itertools.count()
    #: (time, seq, kind, node) events; kind 0 = delivery sweep of a
    #: transmission, kind 1 = assessment-delay expiry.
    heap: list = []

    def transmit(time: float, sender: NodeId) -> None:
        forwarded.add(sender)
        heapq.heappush(heap, (time + latency, next(counter), 0, sender))

    def arm(node: NodeId, time: float) -> None:
        delay = float(generator.uniform(0.0, max_delay)) if max_delay > 0 else 0.0
        heapq.heappush(heap, (time + delay, next(counter), 1, node))

    transmit(0.0, source)
    guard = 16 * graph.num_nodes + 64
    processed = 0
    while heap:
        time, _seq, kind, node = heapq.heappop(heap)
        processed += 1
        if processed > guard * 4:
            raise BroadcastError("RAD broadcast failed to terminate")
        if kind == 0:
            # ``node`` transmitted at time - latency; neighbours receive now.
            neighbourhood = graph.closed_neighbourhood(node)
            for x in sorted(graph.neighbours_view(node)):
                covered[x] |= neighbourhood
                if x not in reception:
                    reception[x] = time
                    arm(x, time)
        else:
            if node in forwarded or node in cancelled:
                continue
            uncovered = (
                set(graph.neighbours_view(node)) - covered[node] - {node}
            )
            if uncovered:
                transmit(time, node)
            else:
                cancelled.add(node)

    result = BroadcastResult(
        source=source,
        algorithm=f"rad[{max_delay:g}]",
        forward_nodes=frozenset(forwarded),
        received=frozenset(reception),
        reception_time={v: int(t) for v, t in reception.items()},
        transmissions=len(forwarded),
    )
    return RadBroadcast(
        result=result,
        cancelled=frozenset(cancelled),
        exact_reception_time=dict(reception),
    )
