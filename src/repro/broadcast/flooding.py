"""Blind flooding: the broadcast-storm baseline.

Every node forwards the packet exactly once upon first reception.  In a
connected network the forward node set is the entire network — the redundancy
the paper's backbones exist to remove.
"""

from __future__ import annotations

from collections import deque
from typing import Dict

from repro import perf
from repro.broadcast.result import BroadcastResult
from repro.errors import NodeNotFoundError
from repro.graph.adjacency import Graph
from repro.types import NodeId


@perf.timed("broadcast")
def blind_flooding(graph: Graph, source: NodeId) -> BroadcastResult:
    """Flood from ``source``; every node retransmits once.

    Args:
        graph: The network.
        source: Originating node.

    Returns:
        The :class:`~repro.broadcast.result.BroadcastResult`; reception times
        equal BFS hop distances.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    reception: Dict[NodeId, int] = {source: 0}
    queue: deque[NodeId] = deque([source])
    while queue:
        v = queue.popleft()
        t = reception[v]
        for w in graph.neighbours_view(v):
            if w not in reception:
                reception[w] = t + 1
                queue.append(w)
    received = frozenset(reception)
    return BroadcastResult(
        source=source,
        algorithm="blind-flooding",
        forward_nodes=received,  # every receiver forwards
        received=received,
        reception_time=reception,
        transmissions=len(received),
    )
