"""Continuous neighbour maintenance: periodic HELLO with timeouts.

The one-shot :class:`~repro.protocols.hello.HelloProtocol` assumes a frozen
topology.  A live MANET beacons *periodically*: a link is declared **up**
when a beacon arrives from an unknown neighbour and **down** when no beacon
has been heard for ``timeout_rounds`` periods.  This protocol runs those
beacons on the simulator while the topology changes underneath (via
:meth:`repro.sim.medium.WirelessMedium.update_graph`), emitting link events
that downstream maintenance (re-clustering, coverage refresh) would consume.

Detection guarantees on an ideal channel:

* a **gained** link is detected at the next beacon round (latency <= one
  period);
* a **lost** link is detected after exactly ``timeout_rounds`` silent
  periods — the standard freshness/flappiness trade-off, measurable here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.errors import ProtocolError
from repro.sim.messages import Hello, Message
from repro.sim.network import SimNetwork
from repro.sim.node import SimNode
from repro.types import NodeId

LAST_HEARD = "nwatch.last_heard"   #: neighbour -> round of last beacon
KNOWN = "nwatch.known"             #: currently believed neighbour set


@dataclass(frozen=True, slots=True)
class LinkEvent:
    """One detected link change.

    Attributes:
        round_index: Beacon round at which the change was detected.
        node: The detecting node.
        neighbour: The other endpoint.
        up: ``True`` for link-up, ``False`` for timeout-declared loss.
    """

    round_index: int
    node: NodeId
    neighbour: NodeId
    up: bool


class NeighbourWatchProtocol:
    """Periodic beaconing with link-up/down detection.

    Drive it round by round: mutate the topology between rounds with
    :meth:`~repro.sim.medium.WirelessMedium.update_graph`, then call
    :meth:`run_round`.

    Args:
        network: The simulated network.
        timeout_rounds: Silent periods after which a neighbour is dropped.
        period: Simulated time between beacon rounds (must exceed the
            medium latency so a round's beacons land within the round).
    """

    def __init__(self, network: SimNetwork, *, timeout_rounds: int = 3,
                 period: float = 2.0) -> None:
        if timeout_rounds < 1:
            raise ProtocolError(
                f"timeout_rounds must be >= 1, got {timeout_rounds}"
            )
        if period <= network.medium.latency:
            raise ProtocolError(
                f"period {period} must exceed the medium latency "
                f"{network.medium.latency}"
            )
        self.network = network
        self.timeout_rounds = timeout_rounds
        self.period = period
        self.round_index = -1
        self.events: List[LinkEvent] = []
        for node in network:
            node.state[LAST_HEARD] = {}
            node.state[KNOWN] = set()
            node.replace_handler(Hello, self._on_hello)

    def _on_hello(self, node: SimNode, sender: NodeId, message: Message) -> None:
        last: Dict[NodeId, int] = node.state[LAST_HEARD]  # type: ignore[assignment]
        known: Set[NodeId] = node.state[KNOWN]  # type: ignore[assignment]
        last[sender] = self.round_index
        if sender not in known:
            known.add(sender)
            self.events.append(
                LinkEvent(round_index=self.round_index, node=node.id,
                          neighbour=sender, up=True)
            )

    def run_round(self) -> List[LinkEvent]:
        """One beacon round: everyone beacons, then timeouts are evaluated.

        Returns:
            The link events detected during this round.
        """
        self.round_index += 1
        before = len(self.events)
        for node in self.network:
            self.network.sim.schedule(
                0.0, lambda n=node: n.send(Hello(origin=n.id)),
                priority=(node.id,),
            )
        self.network.sim.run(until=self.network.sim.now + self.period)
        # Timeout sweep: neighbours silent for > timeout_rounds are dropped.
        for node in self.network:
            last: Dict[NodeId, int] = node.state[LAST_HEARD]  # type: ignore[assignment]
            known: Set[NodeId] = node.state[KNOWN]  # type: ignore[assignment]
            for neighbour in sorted(known):
                if self.round_index - last[neighbour] >= self.timeout_rounds:
                    known.discard(neighbour)
                    self.events.append(
                        LinkEvent(round_index=self.round_index,
                                  node=node.id, neighbour=neighbour,
                                  up=False)
                    )
        return self.events[before:]

    def believed_neighbours(self, node_id: NodeId) -> Set[NodeId]:
        """The neighbour set ``node_id`` currently believes in."""
        return set(self.network.node(node_id).state[KNOWN])  # type: ignore[arg-type]

    def belief_matches_topology(self) -> bool:
        """Whether every node's belief equals the true adjacency right now.

        Only guaranteed after ``timeout_rounds`` stable rounds.
        """
        graph = self.network.graph
        return all(
            self.believed_neighbours(v) == set(graph.neighbours_view(v))
            for v in graph.nodes()
        )
