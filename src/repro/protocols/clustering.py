"""Phase 2: distributed lowest-ID clustering.

Each candidate waits until every *smaller-id* neighbour has declared
(CLUSTER_HEAD or NON_CLUSTER_HEAD).  At that moment the head neighbours it
will ever have are known (a head neighbour of a candidate always has a
smaller id), so the candidate either joins the smallest-id head neighbour or
declares itself a head.  Exactly one declaration message per node — the
paper's O(n) clustering communication — and on the monotone-id chain the
declarations ripple one hop per time unit, realising the O(n)-round worst
case.

The fixpoint equals :func:`repro.cluster.lowest_id.lowest_id_clustering`
(property-tested).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.cluster.state import ClusterStructure
from repro.errors import ProtocolError
from repro.protocols.hello import NEIGHBOURS
from repro.sim.messages import ClusterHead, Message, NonClusterHead
from repro.sim.network import SimNetwork
from repro.sim.node import SimNode
from repro.types import NodeId, NodeRole

ROLE = "cluster.role"
HEAD = "cluster.head"
DECIDED = "cluster.decided"  #: neighbour -> (role, head) as heard on the air


class DistributedLowestIdClustering:
    """Message-driven lowest-ID clustering.

    Requires :class:`~repro.protocols.hello.HelloProtocol` to have completed
    (nodes must know their neighbour ids).
    """

    def __init__(self, network: SimNetwork) -> None:
        self.network = network
        for node in network:
            if NEIGHBOURS not in node.state:
                raise ProtocolError(
                    f"node {node.id}: HELLO phase must run before clustering"
                )
            node.state[ROLE] = NodeRole.CANDIDATE
            node.state[HEAD] = None
            node.state[DECIDED] = {}
            node.on(ClusterHead, self._on_declaration)
            node.on(NonClusterHead, self._on_declaration)

    def start(self) -> None:
        """Let every node evaluate its decision rule at time 0."""
        for node in self.network:
            self.network.sim.schedule(
                0.0, lambda n=node: self._maybe_decide(n), priority=(node.id,)
            )

    # -- protocol logic ------------------------------------------------------

    def _on_declaration(self, node: SimNode, sender: NodeId, message: Message) -> None:
        decided: Dict[NodeId, tuple] = node.state[DECIDED]  # type: ignore[assignment]
        if isinstance(message, ClusterHead):
            decided[sender] = (NodeRole.CLUSTERHEAD, sender)
        elif isinstance(message, NonClusterHead):
            decided[sender] = (NodeRole.MEMBER, message.head)
        self._maybe_decide(node)

    def _maybe_decide(self, node: SimNode) -> None:
        if node.state[ROLE] is not NodeRole.CANDIDATE:
            return
        neighbours: Set[NodeId] = node.state[NEIGHBOURS]  # type: ignore[assignment]
        decided: Dict[NodeId, tuple] = node.state[DECIDED]  # type: ignore[assignment]
        if any(u < node.id and u not in decided for u in neighbours):
            return  # a smaller-id neighbour is still undecided
        head_neighbours = [
            u for u, (role, _h) in decided.items() if role is NodeRole.CLUSTERHEAD
        ]
        if head_neighbours:
            head = min(head_neighbours)
            node.state[ROLE] = NodeRole.MEMBER
            node.state[HEAD] = head
            node.send(NonClusterHead(origin=node.id, head=head))
        else:
            node.state[ROLE] = NodeRole.CLUSTERHEAD
            node.state[HEAD] = node.id
            node.send(ClusterHead(origin=node.id))

    # -- extraction ----------------------------------------------------------

    def result(self) -> ClusterStructure:
        """Assemble the global cluster structure after the phase completed.

        Raises:
            ProtocolError: if any node is still undecided (phase incomplete).
        """
        head_of: Dict[NodeId, NodeId] = {}
        for node in self.network:
            role = node.state[ROLE]
            head: Optional[NodeId] = node.state[HEAD]  # type: ignore[assignment]
            if role is NodeRole.CANDIDATE or head is None:
                raise ProtocolError(f"node {node.id} never decided its role")
            head_of[node.id] = head
        return ClusterStructure(graph=self.network.graph, head_of=head_of)
