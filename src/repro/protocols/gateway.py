"""Phase 4: GATEWAY designation (static backbone only).

Each clusterhead runs the greedy selection over the coverage set it gathered
and floods a GATEWAY message with TTL=2: selected nodes mark themselves
gateways, and a selected node forwards the message (decremented TTL) so the
second-hop relays of 3-hop targets are informed too.  Only selected nodes
forward, so the phase costs one message per head plus at most one per
selected first-hop gateway — O(n) overall.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, FrozenSet, Set

from repro.backbone.gateway_selection import GatewaySelection, select_gateways
from repro.errors import ProtocolError
from repro.protocols.clustering import ROLE
from repro.protocols.coverage import CoverageExchangeProtocol
from repro.sim.messages import Gateway, Message
from repro.sim.network import SimNetwork
from repro.sim.node import SimNode
from repro.types import NodeId, NodeRole

IS_GATEWAY = "gateway.selected"       #: bool: designated by some head
SELECTED_BY = "gateway.selected_by"   #: set of heads that designated us
FORWARDED = "gateway.forwarded"       #: GATEWAY origins already forwarded


class GatewayDesignationProtocol:
    """Message-driven gateway designation.

    Args:
        network: The simulated network.
        coverage: The completed coverage-exchange phase (selection inputs).
    """

    def __init__(self, network: SimNetwork,
                 coverage: CoverageExchangeProtocol) -> None:
        self.network = network
        self.coverage = coverage
        self.selections: Dict[NodeId, GatewaySelection] = {}
        for node in network:
            node.state[IS_GATEWAY] = False
            node.state[SELECTED_BY] = set()
            node.state[FORWARDED] = set()
            node.on(Gateway, self._on_gateway)

    def start(self) -> None:
        """Heads select gateways and send GATEWAY at time 0."""
        for node in self.network:
            if node.state.get(ROLE) is not NodeRole.CLUSTERHEAD:
                continue
            self.network.sim.schedule(
                0.0, lambda n=node: self._head_designate(n), priority=(node.id,)
            )

    def _head_designate(self, node: SimNode) -> None:
        cov = self.coverage.coverage_set_of(node.id)
        selection = select_gateways(cov)
        self.selections[node.id] = selection
        node.send(
            Gateway(origin=node.id, selected=selection.gateways, ttl=2)
        )

    def _on_gateway(self, node: SimNode, sender: NodeId, message: Message) -> None:
        assert isinstance(message, Gateway)
        if node.id not in message.selected:
            return
        node.state[IS_GATEWAY] = True
        selected_by: Set[NodeId] = node.state[SELECTED_BY]  # type: ignore[assignment]
        selected_by.add(message.origin)
        remaining_ttl = message.ttl - 1
        forwarded: Set[NodeId] = node.state[FORWARDED]  # type: ignore[assignment]
        if remaining_ttl > 0 and message.origin not in forwarded:
            forwarded.add(message.origin)
            node.send(replace(message, ttl=remaining_ttl))

    # -- extraction ------------------------------------------------------------

    def gateway_nodes(self) -> FrozenSet[NodeId]:
        """All nodes that marked themselves gateways."""
        return frozenset(
            node.id for node in self.network if node.state.get(IS_GATEWAY)
        )

    def backbone_nodes(self) -> FrozenSet[NodeId]:
        """Clusterheads plus designated gateways — the distributed SI-CDS."""
        heads = frozenset(
            node.id for node in self.network
            if node.state.get(ROLE) is NodeRole.CLUSTERHEAD
        )
        return heads | self.gateway_nodes()

    def check_designation_complete(self) -> None:
        """Verify every selected node actually heard its designation.

        Raises:
            ProtocolError: if the TTL-2 flood failed to reach a selected node
                (cannot happen on correct selections — all selected nodes lie
                within 2 hops of the selecting head).
        """
        designated = self.gateway_nodes()
        for head, selection in self.selections.items():
            missing = selection.gateways - designated
            if missing:
                raise ProtocolError(
                    f"head {head}: selected gateways {sorted(missing)} never "
                    f"heard their GATEWAY designation"
                )
