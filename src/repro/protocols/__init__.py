"""Distributed, message-driven implementations of the paper's protocols.

Each phase of the paper's construction is a protocol class over
:class:`~repro.sim.network.SimNetwork`:

1. :class:`~repro.protocols.hello.HelloProtocol` — neighbour discovery;
2. :class:`~repro.protocols.clustering.DistributedLowestIdClustering` —
   CLUSTER_HEAD / NON_CLUSTER_HEAD declarations;
3. :class:`~repro.protocols.coverage.CoverageExchangeProtocol` — CH_HOP1 /
   CH_HOP2 (2.5-hop or 3-hop flavour);
4. :class:`~repro.protocols.gateway.GatewayDesignationProtocol` — GATEWAY
   messages with TTL 2 (static backbone only);
5. distributed broadcasts over the result
   (:mod:`repro.protocols.broadcast`).

:func:`~repro.protocols.runner.run_distributed_build` chains the phases and
returns the assembled structures together with per-phase message statistics;
property tests assert the outcome is *identical* to the centralised
algorithms, and the statistics back the paper's O(n) message/time claims.
"""

from repro.protocols.hello import HelloProtocol
from repro.protocols.neighbour_watch import LinkEvent, NeighbourWatchProtocol
from repro.protocols.clustering import DistributedLowestIdClustering
from repro.protocols.coverage import CoverageExchangeProtocol
from repro.protocols.gateway import GatewayDesignationProtocol
from repro.protocols.broadcast import (
    DistributedSDBroadcast,
    DistributedSIBroadcast,
)
from repro.protocols.runner import (
    DistributedBuildResult,
    PhaseStats,
    run_distributed_build,
    run_distributed_sd_broadcast,
    run_distributed_si_broadcast,
)

__all__ = [
    "HelloProtocol",
    "NeighbourWatchProtocol",
    "LinkEvent",
    "DistributedLowestIdClustering",
    "CoverageExchangeProtocol",
    "GatewayDesignationProtocol",
    "DistributedSIBroadcast",
    "DistributedSDBroadcast",
    "DistributedBuildResult",
    "PhaseStats",
    "run_distributed_build",
    "run_distributed_sd_broadcast",
    "run_distributed_si_broadcast",
]
