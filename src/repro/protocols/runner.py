"""Phase orchestration: build the backbone with the distributed protocols.

Runs HELLO → clustering → coverage exchange → gateway designation on a
fresh :class:`~repro.sim.network.SimNetwork`, collecting per-phase message
statistics.  The output mirrors the centralised
:func:`repro.backbone.static_backbone.build_static_backbone` result — and the
equivalence tests assert it is *identical*, which is the strongest evidence
the message-level protocol really computes what the paper claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.backbone.static_backbone import Backbone
from repro.broadcast.result import BroadcastResult
from repro.cluster.state import ClusterStructure
from repro.coverage.entries import CoverageSet
from repro.graph.adjacency import Graph
from repro.protocols.broadcast import DistributedSDBroadcast, DistributedSIBroadcast
from repro.protocols.clustering import DistributedLowestIdClustering
from repro.protocols.coverage import CoverageExchangeProtocol
from repro.protocols.gateway import GatewayDesignationProtocol
from repro.protocols.hello import HelloProtocol
from repro.sim.network import SimNetwork
from repro.types import CoveragePolicy, NodeId, PruningLevel


@dataclass(frozen=True, slots=True)
class PhaseStats:
    """Message statistics of one protocol phase."""

    name: str
    messages: int
    volume: int
    duration: float  #: sim-time from phase start to last event


@dataclass(frozen=True)
class DistributedBuildResult:
    """Everything the distributed construction produced.

    Attributes:
        network: The simulated network (reusable for broadcast phases).
        structure: The cluster structure the declarations realised.
        coverage: The completed coverage-exchange protocol (selection input
            for SD broadcasts).
        backbone: The static backbone assembled exactly like the centralised
            :class:`~repro.backbone.static_backbone.Backbone`.
        phases: Per-phase message statistics, in execution order.
    """

    network: SimNetwork
    structure: ClusterStructure
    coverage: CoverageExchangeProtocol
    backbone: Backbone
    phases: Tuple[PhaseStats, ...]

    @property
    def total_messages(self) -> int:
        """Messages across all construction phases (the O(n) claim)."""
        return sum(p.messages for p in self.phases)

    @property
    def total_volume(self) -> int:
        """Message volume across all phases (maintenance-cost proxy)."""
        return sum(p.volume for p in self.phases)

    def coverage_sets(self) -> Dict[NodeId, CoverageSet]:
        """The coverage sets heads gathered on the air."""
        return self.coverage.all_coverage_sets()


def _phase_delta(network: SimNetwork, name: str, start_msgs: int,
                 start_volume: int, start_time: float) -> PhaseStats:
    trace = network.trace
    return PhaseStats(
        name=name,
        messages=trace.total_messages - start_msgs,
        volume=trace.total_volume - start_volume,
        duration=network.sim.now - start_time,
    )


def run_distributed_build(
    graph: Graph,
    policy: CoveragePolicy = CoveragePolicy.TWO_FIVE_HOP,
    *,
    include_gateway_phase: bool = True,
) -> DistributedBuildResult:
    """Run the full distributed construction on ``graph``.

    Args:
        graph: The network topology.
        policy: Coverage definition for the CH_HOP1/CH_HOP2 exchange.
        include_gateway_phase: The dynamic backbone skips GATEWAY messages
            (gateways ride on data packets); pass ``False`` to measure the
            dynamic construction's message cost.

    Returns:
        The :class:`DistributedBuildResult`.
    """
    network = SimNetwork(graph)
    phases = []

    def run_phase(name: str, protocol) -> None:
        start_msgs = network.trace.total_messages
        start_volume = network.trace.total_volume
        start_time = network.sim.now
        protocol.start()
        network.run_phase()
        phases.append(
            _phase_delta(network, name, start_msgs, start_volume, start_time)
        )

    hello = HelloProtocol(network)
    run_phase("hello", hello)
    clustering = DistributedLowestIdClustering(network)
    run_phase("clustering", clustering)
    structure = clustering.result()
    coverage = CoverageExchangeProtocol(network, policy)
    run_phase("coverage", coverage)

    coverage_sets = coverage.all_coverage_sets()
    if include_gateway_phase:
        gateway = GatewayDesignationProtocol(network, coverage)
        run_phase("gateway", gateway)
        gateway.check_designation_complete()
        selections = dict(gateway.selections)
    else:
        from repro.backbone.gateway_selection import select_gateways

        selections = {h: select_gateways(c) for h, c in coverage_sets.items()}

    backbone = Backbone(
        structure=structure,
        policy=policy,
        coverage_sets=coverage_sets,
        selections=selections,
        algorithm=f"distributed-static-backbone[{policy.label}]",
    )
    return DistributedBuildResult(
        network=network,
        structure=structure,
        coverage=coverage,
        backbone=backbone,
        phases=tuple(phases),
    )


def run_distributed_si_broadcast(
    build: DistributedBuildResult, source: NodeId
) -> Tuple[BroadcastResult, PhaseStats]:
    """Broadcast over the distributed static backbone; returns result + stats."""
    network = build.network
    start_msgs = network.trace.total_messages
    start_volume = network.trace.total_volume
    start_time = network.sim.now
    protocol = DistributedSIBroadcast(network, build.backbone.nodes)
    protocol.start(source)
    network.run_phase()
    stats = _phase_delta(network, "si-broadcast", start_msgs, start_volume,
                         start_time)
    return protocol.result(), stats


def run_distributed_sd_broadcast(
    build: DistributedBuildResult,
    source: NodeId,
    pruning: PruningLevel = PruningLevel.FULL,
) -> Tuple[BroadcastResult, PhaseStats]:
    """Dynamic-backbone broadcast on the simulated network; result + stats."""
    network = build.network
    start_msgs = network.trace.total_messages
    start_volume = network.trace.total_volume
    start_time = network.sim.now
    protocol = DistributedSDBroadcast(network, build.coverage, pruning)
    protocol.start(source)
    network.run_phase()
    stats = _phase_delta(network, "sd-broadcast", start_msgs, start_volume,
                         start_time)
    return protocol.result(), stats
