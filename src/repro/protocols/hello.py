"""Phase 1: HELLO neighbour discovery.

Every node beacons once; receivers accumulate the sender ids.  After the
phase each node's ``hello.neighbours`` state equals its unit-disk neighbour
set — the knowledge all later phases assume ("Each node can learn its
neighbors' IDs through HELLO messages").
"""

from __future__ import annotations

from typing import Set

from repro.sim.messages import Hello, Message
from repro.sim.network import SimNetwork
from repro.sim.node import SimNode
from repro.types import NodeId

NEIGHBOURS = "hello.neighbours"


class HelloProtocol:
    """One-shot neighbour discovery."""

    def __init__(self, network: SimNetwork) -> None:
        self.network = network
        for node in network:
            node.state[NEIGHBOURS] = set()
            node.on(Hello, self._on_hello)

    def start(self) -> None:
        """Schedule every node's beacon at time 0."""
        for node in self.network:
            self.network.sim.schedule(
                0.0,
                lambda n=node: n.send(Hello(origin=n.id)),
                priority=(node.id,),
            )

    @staticmethod
    def _on_hello(node: SimNode, sender: NodeId, message: Message) -> None:
        neighbours: Set[NodeId] = node.state[NEIGHBOURS]  # type: ignore[assignment]
        neighbours.add(sender)

    def neighbours_of(self, node_id: NodeId) -> Set[NodeId]:
        """Discovered neighbour set of ``node_id`` (after the phase ran)."""
        return set(self.network.node(node_id).state[NEIGHBOURS])  # type: ignore[arg-type]
