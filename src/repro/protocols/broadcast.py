"""Phase 5: distributed broadcasts over the simulated network.

Two protocols, mirroring the centralised implementations message-for-message
(the determinism contract of :mod:`repro.sim` makes the correspondence
exact, which the equivalence tests exploit):

* :class:`DistributedSIBroadcast` — flood restricted to a marked backbone;
* :class:`DistributedSDBroadcast` — the dynamic backbone: heads select
  forward gateways on first reception using their gathered coverage sets and
  the packet's piggyback; designated gateways relay.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.backbone.gateway_selection import select_gateways
from repro.broadcast.result import BroadcastResult
from repro.rng import RngLike, ensure_rng
from repro.coverage.entries import CoverageSet
from repro.errors import ProtocolError
from repro.protocols.clustering import ROLE
from repro.protocols.coverage import CoverageExchangeProtocol, _neighbour_heads
from repro.sim.messages import BroadcastPacket, Message
from repro.sim.network import SimNetwork
from repro.sim.node import SimNode
from repro.types import NodeId, NodeRole, PruningLevel


def _channel_counters(network: SimNetwork) -> Optional[Dict[str, int]]:
    """The medium's PHY/MAC counters, or ``None`` on the bare medium."""
    channel = network.medium.channel
    return None if channel is None else channel.stats().as_dict()


class DistributedSIBroadcast:
    """Flooding restricted to a source-independent CDS.

    Args:
        network: The simulated network.
        backbone_nodes: The CDS membership (e.g. from
            :meth:`~repro.protocols.gateway.GatewayDesignationProtocol.backbone_nodes`).
    """

    RECEIVED = "si_bcast.received_at"
    FORWARDED = "si_bcast.forwarded"

    def __init__(self, network: SimNetwork,
                 backbone_nodes: Iterable[NodeId],
                 *, jitter_slots: int = 0, rng: RngLike = None) -> None:
        self.network = network
        self.backbone = frozenset(backbone_nodes)
        self.jitter_slots = int(jitter_slots)
        self._jitter_rng = ensure_rng(rng) if jitter_slots else None
        for node in network:
            node.state[self.RECEIVED] = None
            node.state[self.FORWARDED] = False
            # Broadcast phases may run repeatedly on one network
            # (several sources / pruning levels), so take over the
            # handler instead of requiring a fresh slot.
            node.replace_handler(BroadcastPacket, self._on_packet)

    def start(self, source: NodeId) -> None:
        """Schedule the source's transmission at the current sim time."""
        self.source = source
        node = self.network.node(source)
        node.state[self.RECEIVED] = self.network.sim.now
        node.state[self.FORWARDED] = True
        self.network.sim.schedule(
            0.0,
            lambda n=node: n.send(BroadcastPacket(origin=n.id, source=n.id)),
            priority=(source,),
        )

    def _send_jittered(self, node: SimNode, message: Message) -> None:
        """Relay now, or after a random whole-slot back-off (collision MACs)."""
        if self._jitter_rng is None:
            node.send(message)
            return
        delay = float(self._jitter_rng.integers(0, self.jitter_slots + 1))
        self.network.sim.schedule(
            delay, lambda n=node, m=message: n.send(m), priority=(node.id,)
        )

    def _on_packet(self, node: SimNode, sender: NodeId, message: Message) -> None:
        if node.state[self.RECEIVED] is None:
            node.state[self.RECEIVED] = self.network.sim.now
            if node.id in self.backbone and not node.state[self.FORWARDED]:
                node.state[self.FORWARDED] = True
                self._send_jittered(node, message)

    def result(self) -> BroadcastResult:
        """Collect the outcome after the phase ran to quiescence."""
        reception: Dict[NodeId, int] = {}
        forwarded: Set[NodeId] = set()
        for node in self.network:
            t = node.state[self.RECEIVED]
            if t is not None:
                reception[node.id] = int(t)  # type: ignore[arg-type]
            if node.state[self.FORWARDED]:
                forwarded.add(node.id)
        return BroadcastResult(
            source=self.source,
            algorithm="distributed-si-cds",
            forward_nodes=frozenset(forwarded),
            received=frozenset(reception),
            reception_time=reception,
            transmissions=len(forwarded),
            channel=_channel_counters(self.network),
        )


class DistributedSDBroadcast:
    """The dynamic backbone broadcast, message-driven.

    Clusterheads must have completed the coverage exchange.  The protocol
    follows :mod:`repro.broadcast.sd_cds` exactly, including the
    relay-per-designating-head rule (see DESIGN.md).

    Args:
        network: The simulated network.
        coverage: The completed coverage-exchange phase.
        pruning: Piggyback exploitation level.
    """

    RECEIVED = "sd_bcast.received_at"
    HEAD_DONE = "sd_bcast.head_forwarded"
    RELAYED_FOR = "sd_bcast.relayed_for"

    def __init__(
        self,
        network: SimNetwork,
        coverage: CoverageExchangeProtocol,
        pruning: PruningLevel = PruningLevel.FULL,
        *,
        jitter_slots: int = 0,
        rng: RngLike = None,
    ) -> None:
        self.network = network
        self.coverage = coverage
        self.pruning = pruning
        self.jitter_slots = int(jitter_slots)
        self._jitter_rng = ensure_rng(rng) if jitter_slots else None
        self.forward_sets: Dict[NodeId, FrozenSet[NodeId]] = {}
        self._coverage_cache: Dict[NodeId, CoverageSet] = {}
        self.transmissions = 0
        for node in network:
            if ROLE not in node.state:
                raise ProtocolError(
                    f"node {node.id}: clustering must run before SD broadcast"
                )
            node.state[self.RECEIVED] = None
            node.state[self.HEAD_DONE] = False
            node.state[self.RELAYED_FOR] = set()
            # Broadcast phases may run repeatedly on one network
            # (several sources / pruning levels), so take over the
            # handler instead of requiring a fresh slot.
            node.replace_handler(BroadcastPacket, self._on_packet)

    def _coverage_of(self, head: NodeId) -> CoverageSet:
        cov = self._coverage_cache.get(head)
        if cov is None:
            cov = self._coverage_cache[head] = self.coverage.coverage_set_of(head)
        return cov

    def start(self, source: NodeId) -> None:
        """Originate the broadcast at ``source`` at the current sim time."""
        self.source = source
        node = self.network.node(source)
        node.state[self.RECEIVED] = self.network.sim.now
        if node.state[ROLE] is NodeRole.CLUSTERHEAD:
            self.network.sim.schedule(
                0.0, lambda n=node: self._head_transmit(n, None),
                priority=(source,),
            )
        else:
            relay_heads = (
                _neighbour_heads(node)
                if self.pruning is PruningLevel.FULL
                else frozenset()
            )
            packet = BroadcastPacket(
                origin=source, source=source, head=None,
                relay_heads=relay_heads,
            )
            self.network.sim.schedule(
                0.0, lambda n=node, p=packet: self._transmit(n, p),
                priority=(source,),
            )

    def _transmit(self, node: SimNode, packet: BroadcastPacket) -> None:
        self.transmissions += 1
        if self._jitter_rng is None:
            node.send(packet)
            return
        delay = float(self._jitter_rng.integers(0, self.jitter_slots + 1))
        self.network.sim.schedule(
            delay, lambda n=node, p=packet: n.send(p), priority=(node.id,)
        )

    def _exclusions(self, packet: Optional[BroadcastPacket]) -> FrozenSet[NodeId]:
        if packet is None or self.pruning is PruningLevel.NONE:
            return frozenset()
        excl: Set[NodeId] = set(packet.coverage)
        if packet.head is not None:
            excl.add(packet.head)
        if self.pruning is PruningLevel.FULL:
            excl |= packet.relay_heads
        return frozenset(excl)

    def _head_transmit(self, node: SimNode,
                       via: Optional[BroadcastPacket]) -> None:
        node.state[self.HEAD_DONE] = True
        cov = self._coverage_of(node.id)
        targets = cov.all_targets - self._exclusions(via)
        selection = select_gateways(cov, targets)
        self.forward_sets[node.id] = selection.gateways
        self._transmit(
            node,
            BroadcastPacket(
                origin=node.id,
                source=self.source,
                head=node.id,
                coverage=cov.all_targets,
                forward_set=selection.gateways,
                relay_heads=frozenset(),
            ),
        )

    def _on_packet(self, node: SimNode, sender: NodeId, message: Message) -> None:
        assert isinstance(message, BroadcastPacket)
        if node.state[self.RECEIVED] is None:
            node.state[self.RECEIVED] = self.network.sim.now
        if node.state[ROLE] is NodeRole.CLUSTERHEAD:
            if not node.state[self.HEAD_DONE]:
                self._head_transmit(node, message)
            return
        relayed: Set[Optional[NodeId]] = node.state[self.RELAYED_FOR]  # type: ignore[assignment]
        if node.id in message.forward_set and message.head not in relayed:
            relayed.add(message.head)
            self._transmit(
                node,
                BroadcastPacket(
                    origin=node.id,
                    source=message.source,
                    head=message.head,
                    coverage=message.coverage,
                    forward_set=message.forward_set,
                    relay_heads=message.relay_heads | _neighbour_heads(node),
                ),
            )

    def result(self) -> BroadcastResult:
        """Collect the outcome after quiescence."""
        reception: Dict[NodeId, int] = {}
        forwarded: Set[NodeId] = set()
        for node in self.network:
            t = node.state[self.RECEIVED]
            if t is not None:
                reception[node.id] = int(t)  # type: ignore[arg-type]
            if node.state[self.HEAD_DONE] or node.state[self.RELAYED_FOR]:
                forwarded.add(node.id)
        forwarded.add(self.source)
        return BroadcastResult(
            source=self.source,
            algorithm=f"distributed-sd-cds[{self.coverage.policy.label},"
                      f"{self.pruning.value}]",
            forward_nodes=frozenset(forwarded),
            received=frozenset(reception),
            reception_time=reception,
            transmissions=self.transmissions,
            channel=_channel_counters(self.network),
        )
