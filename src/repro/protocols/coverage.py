"""Phase 3: the CH_HOP1 / CH_HOP2 coverage-set exchange.

Implements the paper's two-round neighbourhood exchange:

* every non-clusterhead ``v`` broadcasts ``CH_HOP1(v)`` — its 1-hop
  neighbouring clusterheads (its own head starred);
* a non-clusterhead ``v`` hearing ``CH_HOP1(w)`` records 2-hop clusterhead
  entries, and once it has heard from **all** its non-clusterhead
  neighbours broadcasts ``CH_HOP2(v)`` with those entries;
* a clusterhead assembles ``C2`` from its neighbours' CH_HOP1 and ``C3``
  from their CH_HOP2, removing from ``C3`` anything already in ``C2``.

The recorded entry set depends on the coverage policy:

* **2.5-hop** (the paper's detailed protocol): ``v`` records only the
  *sender's own head* ``head(w)``, and only if it is not adjacent to ``v``;
* **3-hop** ("the process with the 3-hop coverage set is similar"): ``v``
  records *every* clusterhead in ``CH_HOP1(w)`` not adjacent to ``v`` — the
  extra entries are exactly why the 3-hop set costs more to maintain, which
  the ablation bench quantifies via message volume.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set, Tuple

from repro.coverage.entries import CoverageSet, WitnessPair, freeze_witnesses
from repro.errors import ProtocolError
from repro.protocols.clustering import DECIDED, HEAD, ROLE
from repro.protocols.hello import NEIGHBOURS
from repro.sim.messages import ChHop1, ChHop2, Message
from repro.sim.network import SimNetwork
from repro.sim.node import SimNode
from repro.types import CoveragePolicy, NodeId, NodeRole

HOP2_ENTRIES = "coverage.hop2_entries"      #: non-head: ch -> {via w}
HOP1_PENDING = "coverage.hop1_pending"      #: non-head: senders still awaited
C2_RAW = "coverage.c2"                      #: head: ch -> {direct witness v}
C3_RAW = "coverage.c3"                      #: head: ch -> {(v, w) pairs}
HOPS_PENDING = "coverage.msgs_pending"      #: head: CH_HOP1/2 still awaited


def _neighbour_heads(node: SimNode) -> FrozenSet[NodeId]:
    """Clusterheads adjacent to ``node``, from the clustering declarations."""
    decided: Dict[NodeId, tuple] = node.state[DECIDED]  # type: ignore[assignment]
    return frozenset(
        u for u, (role, _h) in decided.items() if role is NodeRole.CLUSTERHEAD
    )


class CoverageExchangeProtocol:
    """Message-driven coverage-set construction.

    Requires clustering to have completed: nodes must know their own role
    and their neighbours' declarations.

    Args:
        network: The simulated network.
        policy: Which coverage definition CH_HOP2 should realise.
    """

    def __init__(self, network: SimNetwork,
                 policy: CoveragePolicy = CoveragePolicy.TWO_FIVE_HOP) -> None:
        self.network = network
        self.policy = policy
        for node in network:
            if ROLE not in node.state:
                raise ProtocolError(
                    f"node {node.id}: clustering must run before coverage exchange"
                )
            neighbours: Set[NodeId] = node.state[NEIGHBOURS]  # type: ignore[assignment]
            decided: Dict[NodeId, tuple] = node.state[DECIDED]  # type: ignore[assignment]
            non_head_neighbours = {
                u for u in neighbours
                if decided[u][0] is not NodeRole.CLUSTERHEAD
            }
            if node.state[ROLE] is NodeRole.CLUSTERHEAD:
                node.state[C2_RAW] = {}
                node.state[C3_RAW] = {}
                # One CH_HOP1 and one CH_HOP2 expected per non-head neighbour
                # (every neighbour of a head is a non-head).
                node.state[HOPS_PENDING] = 2 * len(non_head_neighbours)
            else:
                node.state[HOP2_ENTRIES] = {}
                node.state[HOP1_PENDING] = set(non_head_neighbours)
            node.on(ChHop1, self._on_hop1)
            node.on(ChHop2, self._on_hop2)

    def start(self) -> None:
        """Non-clusterheads broadcast CH_HOP1 at time 0."""
        for node in self.network:
            if node.state[ROLE] is NodeRole.CLUSTERHEAD:
                continue
            self.network.sim.schedule(
                0.0, lambda n=node: self._send_hop1(n), priority=(node.id,)
            )
            # A non-head with no non-head neighbours owes an (empty) CH_HOP2
            # immediately — nothing will trigger it later.
            if not node.state[HOP1_PENDING]:
                self.network.sim.schedule(
                    0.0, lambda n=node: self._send_hop2(n), priority=(node.id,)
                )

    def _send_hop1(self, node: SimNode) -> None:
        heads = _neighbour_heads(node)
        own_head: NodeId = node.state[HEAD]  # type: ignore[assignment]
        node.send(ChHop1(origin=node.id, heads=heads, own_head=own_head))

    def _send_hop2(self, node: SimNode) -> None:
        entries: Dict[NodeId, Set[NodeId]] = node.state[HOP2_ENTRIES]  # type: ignore[assignment]
        node.send(
            ChHop2(
                origin=node.id,
                entries={ch: frozenset(ws) for ch, ws in entries.items()},
            )
        )

    # -- handlers --------------------------------------------------------------

    def _on_hop1(self, node: SimNode, sender: NodeId, message: Message) -> None:
        assert isinstance(message, ChHop1)
        if node.state[ROLE] is NodeRole.CLUSTERHEAD:
            c2: Dict[NodeId, Set[NodeId]] = node.state[C2_RAW]  # type: ignore[assignment]
            for ch in message.heads:
                if ch == node.id:
                    continue
                c2.setdefault(ch, set()).add(sender)
            self._head_progress(node)
            return
        # Non-clusterhead: accumulate 2-hop clusterhead entries.
        my_heads = _neighbour_heads(node)
        entries: Dict[NodeId, Set[NodeId]] = node.state[HOP2_ENTRIES]  # type: ignore[assignment]
        if self.policy is CoveragePolicy.TWO_FIVE_HOP:
            candidates = (message.own_head,)
        else:
            candidates = tuple(message.heads)
        for ch in candidates:
            if ch in my_heads:
                continue  # "the clusterhead ... is a neighbor of v: ignore"
            entries.setdefault(ch, set()).add(sender)
        pending: Set[NodeId] = node.state[HOP1_PENDING]  # type: ignore[assignment]
        pending.discard(sender)
        if not pending:
            node.state[HOP1_PENDING] = None  # fire exactly once
            self._send_hop2(node)

    def _on_hop2(self, node: SimNode, sender: NodeId, message: Message) -> None:
        assert isinstance(message, ChHop2)
        if node.state[ROLE] is not NodeRole.CLUSTERHEAD:
            return  # CH_HOP2 is consumed by clusterheads only
        c3: Dict[NodeId, Set[WitnessPair]] = node.state[C3_RAW]  # type: ignore[assignment]
        for ch, vias in message.entries.items():
            if ch == node.id:
                continue
            for w in vias:
                c3.setdefault(ch, set()).add((sender, w))
        self._head_progress(node)

    def _head_progress(self, node: SimNode) -> None:
        node.state[HOPS_PENDING] = int(node.state[HOPS_PENDING]) - 1  # type: ignore[arg-type]

    # -- extraction -------------------------------------------------------------

    def coverage_set_of(self, head: NodeId) -> CoverageSet:
        """Assemble the coverage set a clusterhead gathered on the air.

        Raises:
            ProtocolError: if the head is still awaiting messages.
        """
        node = self.network.node(head)
        if node.state.get(ROLE) is not NodeRole.CLUSTERHEAD:
            raise ProtocolError(f"node {head} is not a clusterhead")
        if int(node.state[HOPS_PENDING]) > 0:  # type: ignore[arg-type]
            raise ProtocolError(
                f"head {head} still awaits {node.state[HOPS_PENDING]} messages"
            )
        c2_raw: Dict[NodeId, Set[NodeId]] = node.state[C2_RAW]  # type: ignore[assignment]
        c3_raw: Dict[NodeId, Set[WitnessPair]] = node.state[C3_RAW]  # type: ignore[assignment]
        c2 = set(c2_raw)
        c3 = {ch for ch in c3_raw if ch not in c2 and ch != head}
        direct = {ch: set(vs) for ch, vs in c2_raw.items()}
        indirect = {ch: set(c3_raw[ch]) for ch in c3}
        dfz, ifz = freeze_witnesses(direct, indirect)
        return CoverageSet(
            head=head,
            policy=self.policy,
            c2=frozenset(c2),
            c3=frozenset(c3),
            direct_witnesses=dfz,
            indirect_witnesses=ifz,
        )

    def all_coverage_sets(self) -> Dict[NodeId, CoverageSet]:
        """Coverage sets of every clusterhead."""
        return {
            node.id: self.coverage_set_of(node.id)
            for node in self.network
            if node.state.get(ROLE) is NodeRole.CLUSTERHEAD
        }
