"""Statistics for the experiment harness.

The paper's stopping rule — "repeat the simulation until the 99% confidence
interval of the result is within ±5%" — lives here as
:class:`~repro.metrics.confidence.SequentialEstimator`, alongside confidence
interval maths, series containers and plain-text table rendering for the
benchmark output.
"""

from repro.metrics.confidence import (
    ConfidenceInterval,
    SequentialEstimator,
    confidence_interval,
)
from repro.metrics.series import ExperimentPoint, ExperimentSeries, SeriesTable
from repro.metrics.stats import Summary, linear_fit, summary

__all__ = [
    "Summary",
    "linear_fit",
    "ConfidenceInterval",
    "confidence_interval",
    "SequentialEstimator",
    "ExperimentPoint",
    "ExperimentSeries",
    "SeriesTable",
    "summary",
]
