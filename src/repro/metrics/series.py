"""Experiment series containers and plain-text table rendering.

A *series* is one curve of a paper figure — e.g. "static backbone, 2.5-hop,
d=6" — as a list of ``(x, estimate)`` points.  A :class:`SeriesTable` groups
the series of one sub-figure and renders the aligned text table the
benchmarks print (the library has no plotting dependency by design).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.metrics.confidence import ConfidenceInterval


@dataclass(frozen=True, slots=True)
class ExperimentPoint:
    """One measured point of a series."""

    x: float
    estimate: ConfidenceInterval

    @property
    def mean(self) -> float:
        """Point estimate."""
        return self.estimate.mean


@dataclass
class ExperimentSeries:
    """One labelled curve."""

    label: str
    points: List[ExperimentPoint] = field(default_factory=list)

    def add(self, x: float, estimate: ConfidenceInterval) -> None:
        """Append a point (x values must be strictly increasing)."""
        if self.points and x <= self.points[-1].x:
            raise ConfigurationError(
                f"series {self.label!r}: x={x} not increasing past "
                f"{self.points[-1].x}"
            )
        self.points.append(ExperimentPoint(x=x, estimate=estimate))

    def xs(self) -> List[float]:
        """The x coordinates."""
        return [p.x for p in self.points]

    def means(self) -> List[float]:
        """The point estimates."""
        return [p.mean for p in self.points]

    def as_dict(self) -> Dict[float, float]:
        """x -> mean mapping."""
        return {p.x: p.mean for p in self.points}


@dataclass
class SeriesTable:
    """The series of one (sub-)figure plus table rendering.

    Attributes:
        title: Figure caption, e.g. ``"Figure 6(a): avg CDS size, d=6"``.
        x_label: Name of the x axis (``n`` in the paper).
        series: The curves, in display order.
    """

    title: str
    x_label: str
    series: List[ExperimentSeries] = field(default_factory=list)

    def add_series(self, series: ExperimentSeries) -> None:
        """Attach a curve."""
        self.series.append(series)

    def get(self, label: str) -> ExperimentSeries:
        """Look up a curve by label."""
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series labelled {label!r} in {self.title!r}")

    def render(self, precision: int = 2, ci: bool = False) -> str:
        """Render an aligned plain-text table.

        Args:
            precision: Decimal places for means.
            ci: Also print the ± half-widths.

        Returns:
            A multi-line string; the first line is the title.
        """
        xs: List[float] = sorted({x for s in self.series for x in s.xs()})
        headers = [self.x_label] + [s.label for s in self.series]
        rows: List[List[str]] = []
        for x in xs:
            row = [f"{x:g}"]
            for s in self.series:
                point = next((p for p in s.points if p.x == x), None)
                if point is None:
                    row.append("-")
                elif ci:
                    row.append(
                        f"{point.mean:.{precision}f}±{point.estimate.half_width:.{precision}f}"
                    )
                else:
                    row.append(f"{point.mean:.{precision}f}")
            rows.append(row)
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [self.title]
        lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def to_records(self) -> List[Dict[str, object]]:
        """Flatten to records for CSV/JSON export."""
        out: List[Dict[str, object]] = []
        for s in self.series:
            for p in s.points:
                out.append(
                    {
                        "table": self.title,
                        "series": s.label,
                        self.x_label: p.x,
                        "mean": p.estimate.mean,
                        "half_width": p.estimate.half_width,
                        "confidence": p.estimate.confidence,
                        "samples": p.estimate.samples,
                    }
                )
        return out
