"""Confidence intervals and the paper's sequential stopping rule.

Implements two-sided Student-t confidence intervals (falling back to the
normal quantile for large samples) without SciPy, via an Abramowitz–Stegun
style inverse-normal approximation and the standard t-quantile expansion —
accurate to ~1e-4, far below experimental noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError, SampleBudgetExceededError


def inverse_normal_cdf(p: float) -> float:
    """Quantile of the standard normal (Acklam/Moro-style rational approx).

    Accurate to about 1.15e-9 over (0, 1).
    """
    if not (0.0 < p < 1.0):
        raise ConfigurationError(f"p must be in (0, 1), got {p}")
    # Coefficients from Peter Acklam's algorithm.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low, p_high = 0.02425, 1.0 - 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p <= p_high:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (Lentz's method, NR 6.4)."""
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 200):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 3e-15:
            break
    return h


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """``I_x(a, b)`` via the continued-fraction representation."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
        + a * math.log(x) + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def t_cdf(t: float, dof: int) -> float:
    """CDF of Student's t with ``dof`` degrees of freedom."""
    if dof < 1:
        raise ConfigurationError(f"degrees of freedom must be >= 1, got {dof}")
    if t == 0.0:
        return 0.5
    x = dof / (dof + t * t)
    tail = 0.5 * regularized_incomplete_beta(dof / 2.0, 0.5, x)
    return 1.0 - tail if t > 0 else tail


def t_quantile(p: float, dof: int) -> float:
    """Student-t quantile by bisecting the exact CDF.

    The normal quantile seeds the bracket; 80 bisection steps give ~1e-12
    absolute accuracy, far beyond experimental needs.
    """
    if dof < 1:
        raise ConfigurationError(f"degrees of freedom must be >= 1, got {dof}")
    if not (0.0 < p < 1.0):
        raise ConfigurationError(f"p must be in (0, 1), got {p}")
    if p == 0.5:
        return 0.0
    z = inverse_normal_cdf(p)
    # The t quantile has the same sign as z and a heavier tail: bracket by
    # growing the far end until the CDF crosses p.
    if z > 0:
        lo, hi = 0.0, max(2.0 * z, 2.0)
        while t_cdf(hi, dof) < p:
            hi *= 2.0
            if hi > 1e12:  # pragma: no cover - numerically unreachable
                break
    else:
        hi, lo = 0.0, min(2.0 * z, -2.0)
        while t_cdf(lo, dof) > p:
            lo *= 2.0
            if lo < -1e12:  # pragma: no cover
                break
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if t_cdf(mid, dof) < p:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


@dataclass(frozen=True, slots=True)
class ConfidenceInterval:
    """A symmetric confidence interval ``mean ± half_width``."""

    mean: float
    half_width: float
    confidence: float
    samples: int

    @property
    def low(self) -> float:
        """Lower bound."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper bound."""
        return self.mean + self.half_width

    @property
    def relative_half_width(self) -> float:
        """``half_width / |mean|`` (``inf`` for a zero mean with spread)."""
        if self.mean == 0.0:
            return 0.0 if self.half_width == 0.0 else math.inf
        return self.half_width / abs(self.mean)


def confidence_interval(values: Sequence[float], confidence: float = 0.99) -> ConfidenceInterval:
    """Student-t confidence interval of the mean of ``values``.

    A single sample yields a degenerate zero-width interval flagged by
    ``samples == 1`` (callers requiring convergence must demand more).
    """
    if not (0.0 < confidence < 1.0):
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
    n = len(values)
    if n == 0:
        raise ConfigurationError("cannot build a confidence interval from no samples")
    mean = sum(values) / n
    if n == 1:
        return ConfidenceInterval(mean=mean, half_width=0.0,
                                  confidence=confidence, samples=1)
    var = sum((x - mean) ** 2 for x in values) / (n - 1)
    t = t_quantile(0.5 + confidence / 2.0, n - 1)
    return ConfidenceInterval(
        mean=mean,
        half_width=t * math.sqrt(var / n),
        confidence=confidence,
        samples=n,
    )


class SequentialEstimator:
    """The paper's stopping rule as an accumulator.

    Feed trial outcomes with :meth:`add`; :meth:`converged` reports whether
    the ``confidence`` interval is within ``±target`` of the mean (after a
    minimum number of samples, so early lucky streaks don't stop the run).

    Args:
        confidence: Interval confidence level (paper: 0.99).
        target: Relative half-width target (paper: 0.05).
        min_samples: Samples required before convergence may be declared.
        max_samples: Hard budget; :meth:`require_converged` raises
            :class:`~repro.errors.SampleBudgetExceededError` beyond it.
    """

    def __init__(
        self,
        confidence: float = 0.99,
        target: float = 0.05,
        min_samples: int = 30,
        max_samples: int = 100_000,
    ) -> None:
        if not (0.0 < target < 1.0):
            raise ConfigurationError(f"target must be in (0, 1), got {target}")
        if min_samples < 2:
            raise ConfigurationError(f"min_samples must be >= 2, got {min_samples}")
        if max_samples < min_samples:
            raise ConfigurationError("max_samples must be >= min_samples")
        self.confidence = confidence
        self.target = target
        self.min_samples = min_samples
        self.max_samples = max_samples
        self._values: List[float] = []

    def add(self, value: float) -> None:
        """Record one trial outcome."""
        self._values.append(float(value))

    @property
    def count(self) -> int:
        """Number of recorded trials."""
        return len(self._values)

    @property
    def values(self) -> Sequence[float]:
        """The recorded trial outcomes (read-only view)."""
        return tuple(self._values)

    def interval(self) -> ConfidenceInterval:
        """Current confidence interval."""
        return confidence_interval(self._values, self.confidence)

    def converged(self) -> bool:
        """Whether the paper's stopping criterion holds."""
        if self.count < self.min_samples:
            return False
        return self.interval().relative_half_width <= self.target

    def projected_samples(self) -> int:
        """Projected total samples needed to meet the stopping rule.

        The half-width shrinks roughly as ``1/sqrt(k)``, so from the current
        relative half-width ``r`` the projected requirement is
        ``ceil(count * (r / target)^2)``, clamped to
        ``[min_samples, max_samples]``.  Adaptive batching uses this to size
        the next submission wave instead of overshooting convergence by a
        fixed batch; the projection is a *hint* (the stopping rule itself is
        still checked per folded trial), so a noisy early estimate costs at
        most some extra submitted trials, never correctness.
        """
        if self.count < 2:
            return self.min_samples
        ratio = self.interval().relative_half_width / self.target
        if not math.isfinite(ratio):  # zero mean with spread: no projection
            return self.max_samples
        projected = math.ceil(self.count * ratio * ratio)
        return max(self.min_samples, min(self.max_samples, projected))

    def exhausted(self) -> bool:
        """Whether the trial budget is spent."""
        return self.count >= self.max_samples

    def require_converged(self) -> ConfidenceInterval:
        """Return the interval; raise if the budget ran out before converging."""
        ci = self.interval()
        if not self.converged():
            raise SampleBudgetExceededError(
                trials=self.count,
                half_width_ratio=ci.relative_half_width,
                target=self.target,
            )
        return ci
