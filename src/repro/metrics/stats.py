"""Small summary-statistics helpers shared by benches and analyses."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float


def summary(values: Sequence[float]) -> Summary:
    """Summary statistics of ``values`` (sample standard deviation)."""
    n = len(values)
    if n == 0:
        raise ConfigurationError("cannot summarise an empty sample")
    ordered = sorted(float(v) for v in values)
    mean = sum(ordered) / n
    var = sum((v - mean) ** 2 for v in ordered) / (n - 1) if n > 1 else 0.0
    mid = n // 2
    median = ordered[mid] if n % 2 else 0.5 * (ordered[mid - 1] + ordered[mid])
    return Summary(
        count=n,
        mean=mean,
        std=math.sqrt(var),
        minimum=ordered[0],
        maximum=ordered[-1],
        median=median,
    )


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float, float]:
    """Least-squares line ``y = a*x + b`` plus the coefficient of determination.

    Used by the complexity benches to verify the O(n) message-count claim:
    a near-1 R² for a linear fit (and a clearly better one than for a
    quadratic-through-origin alternative) supports linearity.

    Returns:
        ``(slope, intercept, r_squared)``.
    """
    n = len(xs)
    if n != len(ys):
        raise ConfigurationError("xs and ys must have the same length")
    if n < 2:
        raise ConfigurationError("need at least two points to fit a line")
    mx = sum(xs) / n
    my = sum(ys) / n
    sxx = sum((x - mx) ** 2 for x in xs)
    if sxx == 0.0:
        raise ConfigurationError("degenerate fit: all x values identical")
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = my - slope * mx
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - my) ** 2 for y in ys)
    r2 = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return slope, intercept, r2
