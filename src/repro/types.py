"""Shared type aliases and small enums used across the library.

The library identifies wireless hosts by integer **node ids**.  Node ids are
semantically meaningful: the lowest-ID clustering algorithm (Ephremides et
al.) elects clusterheads by comparing ids, so permuting the id assignment of
a fixed topology changes the cluster structure.  Generators therefore accept
an explicit id permutation (see :mod:`repro.graph.generators`).
"""

from __future__ import annotations

import enum
from typing import Iterable, Mapping, Sequence, Tuple

#: A wireless host identifier.  Ordering of ids drives lowest-ID clustering.
NodeId = int

#: An undirected link between two hosts, stored with ``u < v``.
Edge = Tuple[NodeId, NodeId]

#: A 2-D position in the working area.
Position = Tuple[float, float]

#: Read-only adjacency view: node id -> iterable of neighbour ids.
AdjacencyView = Mapping[NodeId, Iterable[NodeId]]

#: A path through the network as a node sequence.
Path = Sequence[NodeId]


class NodeRole(enum.Enum):
    """Role of a node within the cluster structure.

    ``CANDIDATE`` only appears transiently inside the distributed clustering
    protocol; a finished :class:`repro.cluster.state.ClusterStructure` contains
    only ``CLUSTERHEAD`` and ``MEMBER`` roles (gateways are a property of the
    backbone, not the clustering, and are tracked separately).
    """

    CANDIDATE = "candidate"
    CLUSTERHEAD = "clusterhead"
    MEMBER = "member"


class CoveragePolicy(enum.Enum):
    """Which coverage-set definition a clusterhead uses (paper, Section 1).

    * ``TWO_FIVE_HOP`` — ``C2(u)`` plus the distance-3 clusterheads that have
      a *member* within ``N^2(u)`` (the CH_HOP1/CH_HOP2 construction).
    * ``THREE_HOP`` — all clusterheads within graph distance 3 of ``u``.
    """

    TWO_FIVE_HOP = "2.5-hop"
    THREE_HOP = "3-hop"

    @property
    def label(self) -> str:
        """Human-readable label used in tables and benchmark output."""
        return self.value


class PruningLevel(enum.Enum):
    """How much piggybacked history the SD-CDS broadcast exploits.

    * ``NONE`` — no piggyback: every clusterhead covers its full coverage set.
    * ``BASIC`` — exclude the upstream sender ``u`` and its coverage ``C(u)``.
    * ``FULL`` — the paper's behaviour: additionally exclude clusterheads
      adjacent to any relay on the delivery path (the ``N(r)`` rule).
    """

    NONE = "none"
    BASIC = "basic"
    FULL = "full"


def ordered_edge(u: NodeId, v: NodeId) -> Edge:
    """Return the canonical ``(min, max)`` representation of an undirected edge.

    Raises:
        ValueError: if ``u == v`` (self-loops are not meaningful in a MANET).
    """
    if u == v:
        raise ValueError(f"self-loop at node {u} is not a valid MANET link")
    return (u, v) if u < v else (v, u)
