"""The channel-model seam: base protocol, identity model, statistics.

A :class:`ChannelModel` answers three questions for the medium, mirroring
the lifecycle of a broadcast transmission:

* :meth:`~ChannelModel.air_delay` — *when* does a requested transmission
  actually go on the air?  ``0.0`` means "now" (the medium then airs it
  inline, preserving the bare medium's event structure); a positive delay
  is scheduled through the event engine; ``None`` means the MAC gave up
  (the packet is dropped and counted, nothing is traced).
* :meth:`~ChannelModel.on_air` — the transmission is on the air *now*;
  interference-aware models register the busy interval here.
* :meth:`~ChannelModel.accepts` — at delivery time, does this copy survive
  the channel?  Called once per copy, after the fault hook's receiver gate
  (crash gates before SINR; copies multiply before capture).

The base class is the identity on all three — :class:`IdealChannel` is a
named alias of it, attached when an experiment wants the seam exercised
while reproducing the bare medium bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.types import NodeId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (medium ↔ channel)
    from repro.channel.mac import MacModel
    from repro.sim.medium import WirelessMedium


@dataclass(frozen=True)
class ChannelStats:
    """Counters accumulated by a channel model over one simulation.

    Attributes:
        aired: Transmissions that actually went on the air.
        collisions: Delivered copies destroyed by interference (SINR below
            threshold, or the receiver was itself transmitting).
        captures: Copies delivered *despite* at least one overlapping
            interferer (the capture effect).
        half_duplex_drops: Copies lost because the receiver's own radio was
            busy transmitting when they arrived (subset of ``collisions``).
        mac_deferrals: Backoff/slot waits imposed by the MAC (one per
            deferred transmission, not per slot).
        mac_drops: Transmissions abandoned after the MAC's attempt budget.
    """

    aired: int = 0
    collisions: int = 0
    captures: int = 0
    half_duplex_drops: int = 0
    mac_deferrals: int = 0
    mac_drops: int = 0

    def as_dict(self) -> Dict[str, int]:
        """JSON-friendly representation (stable key order)."""
        return {
            "aired": self.aired,
            "collisions": self.collisions,
            "captures": self.captures,
            "half_duplex_drops": self.half_duplex_drops,
            "mac_deferrals": self.mac_deferrals,
            "mac_drops": self.mac_drops,
        }


class ChannelModel:
    """Duck-typed channel consulted by the medium; the base is the identity.

    Subclasses may carry a :class:`~repro.channel.mac.MacModel` (contention
    scheduling) and override :meth:`accepts` (reception physics).  The
    identity implementation airs instantly and accepts everything without
    consuming randomness, so attaching it changes nothing observable.
    """

    def __init__(self, mac: Optional["MacModel"] = None) -> None:
        self.mac = mac
        self.medium: Optional["WirelessMedium"] = None
        self.aired = 0
        self.collisions = 0
        self.captures = 0
        self.half_duplex_drops = 0

    def bind(self, medium: "WirelessMedium") -> None:
        """Attach to ``medium`` (called by the medium, not user code)."""
        self.medium = medium
        if self.mac is not None:
            self.mac.bind(medium)

    def air_delay(self, sender: NodeId) -> Optional[float]:
        """Delay until ``sender``'s transmission airs (``None`` = MAC drop)."""
        if self.mac is None:
            return 0.0
        return self.mac.air_delay(sender)

    def on_air(self, sender: NodeId, air_time: float) -> None:
        """Notification that ``sender`` is on the air at ``air_time``."""
        self.aired += 1

    def accepts(self, sender: NodeId, receiver: NodeId,
                air_time: float) -> bool:
        """Whether this copy survives the channel (identity: always)."""
        return True

    def stats(self) -> ChannelStats:
        """Snapshot of the accumulated counters (MAC counters included)."""
        return ChannelStats(
            aired=self.aired,
            collisions=self.collisions,
            captures=self.captures,
            half_duplex_drops=self.half_duplex_drops,
            mac_deferrals=self.mac.deferrals if self.mac is not None else 0,
            mac_drops=self.mac.drops if self.mac is not None else 0,
        )


class IdealChannel(ChannelModel):
    """The identity channel: today's lossless, collision-free medium.

    Exists so experiments can exercise the channel seam (and compose a MAC
    with perfect reception) while the PHY stays the paper's assumption.
    With no MAC attached, a medium carrying an :class:`IdealChannel` is
    bit-identical to one carrying no channel at all — same events, same
    trace, same RNG consumption — which the composition tests and the
    ``bench_channel`` CI gate pin down.
    """
