"""Channel/MAC construction from plain names and parameters.

The CLI flags (``--channel``, ``--mac``) and the picklable contention
trial specs (:mod:`repro.workload.contention`) describe channel
configurations as strings plus floats — workers rebuild the actual model
objects from those descriptions on their side of the process boundary.
This module is that (name, params) → object mapping.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.channel.mac import MacModel, SlottedCsmaMac, TdmaMac
from repro.channel.model import ChannelModel, IdealChannel
from repro.channel.sinr import SinrChannel
from repro.errors import ConfigurationError
from repro.rng import RngLike

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.network import Network

#: Recognised channel model names.
CHANNELS = ("ideal", "sinr")

#: Recognised MAC model names.
MACS = ("instant", "csma", "tdma")


def make_mac(name: str, *, rng: RngLike = None, cw_min: int = 4,
             cw_max: int = 64, max_attempts: int = 8,
             frame: int = 8) -> Optional[MacModel]:
    """Build a MAC model from its CLI name.

    Args:
        name: One of :data:`MACS`; ``"instant"`` returns ``None`` (the
            medium's inline path — no MAC object, no scheduling overhead).
        rng: Seed or generator for CSMA's backoff draws.
        cw_min/cw_max/max_attempts: CSMA backoff parameters.
        frame: TDMA frame length in slots.
    """
    if name == "instant":
        return None
    if name == "csma":
        return SlottedCsmaMac(rng, cw_min=cw_min, cw_max=cw_max,
                              max_attempts=max_attempts)
    if name == "tdma":
        return TdmaMac(frame=frame)
    raise ConfigurationError(
        f"unknown MAC {name!r} (expected one of {', '.join(MACS)})"
    )


def make_channel(
    name: str,
    network: Optional["Network"] = None,
    *,
    mac: Optional[MacModel] = None,
    alpha: float = 3.0,
    threshold: float = 4.0,
    noise_margin: float = 2.0,
) -> Optional[ChannelModel]:
    """Build a channel model from its CLI name.

    Args:
        name: One of :data:`CHANNELS`, or ``"none"`` for the bare medium
            (returns ``None``; ``"ideal"`` returns an attached-but-identity
            :class:`~repro.channel.model.IdealChannel` instead).
        network: Required for ``"sinr"`` — supplies geometry.
        mac: Optional MAC from :func:`make_mac`.
        alpha/threshold/noise_margin: SINR parameters (see
            :class:`~repro.channel.sinr.SinrChannel`).
    """
    if name == "none":
        if mac is not None:
            raise ConfigurationError("a MAC needs a channel to live in — "
                                     "use --channel ideal for MAC-only runs")
        return None
    if name == "ideal":
        return IdealChannel(mac=mac)
    if name == "sinr":
        if network is None:
            raise ConfigurationError(
                "the SINR channel needs the sampled Network (positions and "
                "range), not just a Graph"
            )
        return SinrChannel(network, alpha=alpha, threshold=threshold,
                           noise_margin=noise_margin, mac=mac)
    raise ConfigurationError(
        f"unknown channel {name!r} (expected one of {', '.join(CHANNELS)})"
    )
