"""Contention MACs: when does a requested transmission actually air?

The bare medium airs every transmission the instant the protocol hands it
over — the paper's perfect-MAC assumption.  The models here instead answer
:meth:`MacModel.air_delay` with a (possibly zero) wait, and the medium
schedules the on-air instant through the event engine:

* :class:`SlottedCsmaMac` — slotted CSMA with deterministic seeded binary
  exponential backoff.  A sender draws a backoff slot, carrier-senses the
  already-committed air reservations of its unit-disk neighbourhood, and
  doubles its window on a busy draw, up to an attempt budget (then the
  packet is dropped and counted).
* :class:`TdmaMac` — a fixed frame of ``frame`` slots; node ``v`` may only
  air in slot ``v mod frame``, so contention is resolved by schedule
  rather than by chance (nodes sharing a slot still interfere — the frame
  trades latency for a ``frame``-fold thinning of concurrency).

Determinism contract: backoff draws come from the MAC's own seeded
generator and are consumed in transmit-request order, which the event
engine fixes; TDMA consumes no randomness at all.  Identical seeds
therefore give byte-identical schedules on every execution backend.

All slot arithmetic is in units of the medium's ``latency`` (one slot =
one transmission time), matching the slotted model of the broadcast
protocols' ``jitter_slots``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro import perf
from repro.errors import SimulationError
from repro.rng import RngLike, ensure_rng
from repro.types import NodeId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.medium import WirelessMedium

#: Tolerance for "is this time on a slot boundary" float comparisons.
_EPS = 1e-9


class MacModel:
    """Base MAC: air instantly (the paper's perfect-MAC assumption).

    Attributes:
        deferrals: Transmissions that had to wait for a later slot.
        drops: Transmissions abandoned (attempt budget exhausted).
    """

    def __init__(self) -> None:
        self.medium: Optional["WirelessMedium"] = None
        self.deferrals = 0
        self.drops = 0

    def bind(self, medium: "WirelessMedium") -> None:
        """Attach to ``medium``; slot length resolves to its latency."""
        self.medium = medium

    @property
    def slot(self) -> float:
        """One slot = one transmission time of the bound medium."""
        if self.medium is None:
            raise SimulationError("MAC is not bound to a medium")
        return self.medium.latency

    def _next_slot(self, now: float) -> int:
        """Index of the first slot boundary at or after ``now``."""
        return int(math.ceil(now / self.slot - _EPS))

    def air_delay(self, sender: NodeId) -> Optional[float]:
        """Wait before ``sender`` may air (``None`` = drop the packet)."""
        return 0.0


class SlottedCsmaMac(MacModel):
    """Slotted CSMA/CA with deterministic seeded binary exponential backoff.

    Args:
        rng: Seed or generator for the backoff draws (seed it — an unseeded
            MAC breaks the determinism contract of the experiments).
        cw_min: Initial contention window, in slots.
        cw_max: Window ceiling for the exponential backoff.
        max_attempts: Busy draws tolerated before the packet is dropped.

    Carrier sensing is against *committed* air reservations: every slot
    this MAC has already granted to the sender itself or to one of its
    unit-disk neighbours counts as busy.  Sensing therefore sees the
    future schedule rather than the physical present — the slotted
    idealisation that keeps the model exact and deterministic instead of
    modelling propagation-delay races.
    """

    def __init__(self, rng: RngLike = None, *, cw_min: int = 4,
                 cw_max: int = 64, max_attempts: int = 8) -> None:
        super().__init__()
        if cw_min < 1 or cw_max < cw_min:
            raise SimulationError(
                f"need 1 <= cw_min <= cw_max, got [{cw_min}, {cw_max}]"
            )
        if max_attempts < 1:
            raise SimulationError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.cw_min = int(cw_min)
        self.cw_max = int(cw_max)
        self.max_attempts = int(max_attempts)
        self._rng = ensure_rng(rng)
        #: Committed reservations as (slot index, sender), pruned lazily.
        self._reserved: List[Tuple[int, NodeId]] = []

    def _busy(self, sender: NodeId, slot_index: int) -> bool:
        """Whether ``sender`` senses ``slot_index`` as taken."""
        assert self.medium is not None
        neighbours = self.medium.graph.neighbours_view(sender)
        for reserved_slot, reserver in self._reserved:
            if reserved_slot != slot_index:
                continue
            if reserver == sender or reserver in neighbours:
                return True
        return False

    @perf.timed("channel")
    def air_delay(self, sender: NodeId) -> Optional[float]:
        """Backoff draw(s) until a sensed-idle slot, or ``None`` on drop."""
        assert self.medium is not None
        now = self.medium.sim.now
        base = self._next_slot(now)
        self._reserved = [(s, v) for s, v in self._reserved if s >= base - 1]
        cw = self.cw_min
        offset = 0
        for attempt in range(self.max_attempts):
            offset += int(self._rng.integers(0, cw))
            candidate = base + offset
            if not self._busy(sender, candidate):
                if candidate != base or attempt:
                    self.deferrals += 1
                self._reserved.append((candidate, sender))
                return candidate * self.slot - now
            cw = min(cw * 2, self.cw_max)
            offset += 1  # the busy slot itself is skipped
        self.drops += 1
        return None


class TdmaMac(MacModel):
    """Fixed-frame TDMA: node ``v`` airs only in slot ``v mod frame``.

    Args:
        frame: Slots per frame.  Larger frames thin concurrent airings
            further (less interference) at a ``frame/2``-slot average
            access latency; ``frame=1`` degenerates to the instant MAC.

    Slot assignment by node id needs no signalling and no randomness, so
    the schedule is a pure function of the topology's ids — the classic
    deterministic end of the contention spectrum, opposite CSMA's seeded
    coin flips.
    """

    def __init__(self, frame: int = 8) -> None:
        super().__init__()
        if frame < 1:
            raise SimulationError(f"frame must be >= 1, got {frame}")
        self.frame = int(frame)

    @perf.timed("channel")
    def air_delay(self, sender: NodeId) -> Optional[float]:
        """Wait until the sender's next owned slot boundary."""
        assert self.medium is not None
        now = self.medium.sim.now
        base = self._next_slot(now)
        own = int(sender) % self.frame
        candidate = base + ((own - base) % self.frame)
        delay = candidate * self.slot - now
        if delay > _EPS:
            self.deferrals += 1
        return delay
