"""Pluggable PHY/MAC realism under the broadcast medium.

The paper assumes collision/contention handling below the network layer;
this package removes that assumption without touching the network-layer
protocols.  A :class:`~repro.channel.model.ChannelModel` is a duck-typed
overlay consulted by :class:`~repro.sim.medium.WirelessMedium` in the same
style as :class:`~repro.sim.medium.FaultHook` — the unit-disk
:class:`~repro.graph.adjacency.Graph` is never mutated:

* :class:`~repro.channel.model.IdealChannel` — the identity model; attaching
  it reproduces the bare medium bit-for-bit (same events, same trace, same
  RNG draws).
* :class:`~repro.channel.sinr.SinrChannel` — log-distance pathloss with
  SINR-threshold reception: each delivered copy survives only if the
  wanted signal clears the aggregate interference of every transmission
  overlapping it in time.
* :mod:`~repro.channel.mac` — transmit-time contention: a slotted CSMA MAC
  with deterministic seeded backoff, and a TDMA frame that assigns each
  node its own slot.  Both schedule the on-air instant through the event
  engine instead of airing instantly.

Composition with faults is fixed: the fault hook gates first (a crashed
radio never airs and therefore never interferes; copies multiply at
transmit time), the channel decides reception last (capture applies per
copy).  Everything is deterministic given the seeds — see
``docs/channel.md`` for the math and the determinism contract.
"""

from repro.channel.model import ChannelModel, ChannelStats, IdealChannel
from repro.channel.mac import MacModel, SlottedCsmaMac, TdmaMac
from repro.channel.sinr import SinrChannel
from repro.channel.factory import CHANNELS, MACS, make_channel, make_mac

__all__ = [
    "ChannelModel",
    "ChannelStats",
    "IdealChannel",
    "MacModel",
    "SlottedCsmaMac",
    "TdmaMac",
    "SinrChannel",
    "CHANNELS",
    "MACS",
    "make_channel",
    "make_mac",
]
