"""Log-distance pathloss + SINR-threshold reception with interference.

The physical model behind the broadcast-storm argument: a copy arriving at
``r`` from ``s`` is received iff

    SINR = P·d(s,r)^-α / (N + Σ_i P·d(i,r)^-α)  >=  β

where the sum ranges over every *other* transmission whose on-air interval
overlaps this one (the medium registers intervals at air time; with
``latency > 0`` every overlapping transmission is registered before the
first delivery it can affect fires, so the computation is exact, not
probabilistic).  Redundant flooding thus destroys its own delivery — the
denser the relay set, the larger the interference sum — while a sparse
backbone's few relays mostly clear the threshold.  That is the paper's
motivation made mechanistic.

Calibration ties the PHY to the unit-disk graph: the noise floor is set so
a link at exactly the transmission range has ``noise_margin`` × the
threshold SINR when nothing interferes.  With no overlapping transmissions
every graph edge is therefore receivable, and the model degrades the ideal
medium *only* through interference (plus the medium's independent loss
knob, which stays upstream of the SINR decision).

Half-duplex applies: a node that is itself on the air cannot hear an
overlapping arrival.  The decision consumes no randomness — reception is
a pure function of geometry and the air schedule — so a seeded run is
bit-reproducible on every execution backend.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Optional, Tuple

from repro import perf
from repro.channel.model import ChannelModel
from repro.errors import SimulationError
from repro.types import NodeId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.channel.mac import MacModel
    from repro.graph.network import Network

#: Guard against co-located nodes (d=0 would mean infinite received power).
_MIN_DISTANCE = 1e-3

#: Tolerance knocked off the overlap window so transmissions in adjacent
#: slots (|Δt| == latency exactly) never read as overlapping under float
#: arithmetic.
_EPS = 1e-9


class SinrChannel(ChannelModel):
    """SINR-threshold reception over log-distance pathloss.

    Args:
        network: The sampled :class:`~repro.graph.network.Network` — supplies
            positions, the calibrated transmission range and torus geometry.
        alpha: Pathloss exponent (2 = free space, 3-4 = urban; default 3).
        threshold: Required SINR ``β`` (linear, not dB; default 4 ≈ 6 dB).
        noise_margin: SNR headroom of a max-range link over ``β`` when the
            air is otherwise clear (>= 1; 1 calibrates range-edge links to
            exactly the threshold, larger values make isolated links robust
            and reserve destruction for genuine interference).
        tx_power: Common transmit power (the scale cancels in the SINR, it
            only fixes the noise floor's unit).
        mac: Optional contention MAC deciding *when* transmissions air.
    """

    def __init__(
        self,
        network: "Network",
        *,
        alpha: float = 3.0,
        threshold: float = 4.0,
        noise_margin: float = 2.0,
        tx_power: float = 1.0,
        mac: Optional["MacModel"] = None,
    ) -> None:
        super().__init__(mac=mac)
        if alpha <= 0:
            raise SimulationError(f"alpha must be positive, got {alpha}")
        if threshold <= 0:
            raise SimulationError(
                f"SINR threshold must be positive, got {threshold}"
            )
        if noise_margin < 1.0:
            raise SimulationError(
                f"noise_margin must be >= 1, got {noise_margin}"
            )
        if tx_power <= 0:
            raise SimulationError(f"tx_power must be positive, got {tx_power}")
        self.alpha = float(alpha)
        self.threshold = float(threshold)
        self.noise_margin = float(noise_margin)
        self.tx_power = float(tx_power)
        self._positions: Dict[NodeId, Tuple[float, float]] = {
            v: (float(x), float(y)) for v, (x, y) in network.positions.items()
        }
        self.radius = float(network.radius)
        self._torus = bool(network.torus)
        self._extent = (float(network.area.width), float(network.area.height))
        #: Noise floor: a max-range link has noise_margin × threshold SINR
        #: on a clear channel, so the unit disk stays exactly receivable.
        self.noise = (
            self.tx_power * self.radius ** -self.alpha
            / (self.threshold * self.noise_margin)
        )
        #: Transmissions currently (or recently) on the air, in air order.
        self._active: Deque[Tuple[float, NodeId]] = deque()

    # -- geometry ----------------------------------------------------------

    def _power(self, tx: NodeId, rx: NodeId) -> float:
        """Received power of ``tx`` at ``rx`` under log-distance pathloss."""
        x1, y1 = self._positions[tx]
        x2, y2 = self._positions[rx]
        dx = abs(x1 - x2)
        dy = abs(y1 - y2)
        if self._torus:
            width, height = self._extent
            dx = min(dx, width - dx)
            dy = min(dy, height - dy)
        d = max((dx * dx + dy * dy) ** 0.5, _MIN_DISTANCE)
        return self.tx_power * d ** -self.alpha

    # -- ChannelModel interface --------------------------------------------

    def on_air(self, sender: NodeId, air_time: float) -> None:
        """Register the busy interval ``[air_time, air_time + latency)``."""
        assert self.medium is not None
        self.aired += 1
        # Entries older than two transmission times can no longer overlap
        # any delivery still pending (pending airs are >= now - latency).
        horizon = air_time - 2.0 * self.medium.latency
        active = self._active
        while active and active[0][0] <= horizon:
            active.popleft()
        active.append((air_time, sender))

    def accepts(self, sender: NodeId, receiver: NodeId,
                air_time: float) -> bool:
        """SINR-threshold decision for one copy (pure, no randomness)."""
        return self._decide(sender, receiver, air_time)

    @perf.timed("channel")
    def _decide(self, sender: NodeId, receiver: NodeId,
                air_time: float) -> bool:
        assert self.medium is not None
        window = self.medium.latency * (1.0 - _EPS)
        interference = 0.0
        interferers = 0
        for when, who in self._active:
            if abs(when - air_time) >= window:
                continue
            if who == sender and when == air_time:
                continue  # the wanted signal itself
            if who == receiver:
                # Half-duplex: the receiver's own radio was on the air.
                self.half_duplex_drops += 1
                self.collisions += 1
                return False
            interference += self._power(who, receiver)
            interferers += 1
        wanted = self._power(sender, receiver)
        if wanted >= self.threshold * (self.noise + interference):
            if interferers:
                self.captures += 1
            return True
        self.collisions += 1
        return False
