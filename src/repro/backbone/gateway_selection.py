"""The paper's greedy gateway-selection heuristic (Section 3).

Given a clusterhead ``u``'s coverage set, select gateways connecting ``u`` to
every target clusterhead:

1. While uncovered 2-hop targets remain, pick the neighbour ``v`` that
   **directly covers** the most remaining ``C2`` targets; break ties by the
   number of remaining ``C3`` targets ``v`` **indirectly covers** (via a
   ``(v, w)`` witness pair), then by lowest node id.  Selecting ``v`` covers
   its direct targets; any ``C3`` target with a ``(v, w)`` witness is covered
   too, and the corresponding ``w`` (lowest id among ``v``'s partners for
   that target) is selected as well.
2. For each ``C3`` target still uncovered, select a witness pair ``(v, w)``.
   The paper does not fix the choice; we prefer pairs reusing
   already-selected gateways (fewest new nodes), breaking ties
   lexicographically — deterministic and never worse than an arbitrary pick.

The same function serves the static backbone (full coverage set) and the
dynamic backbone (coverage set pruned to the remaining targets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

import numpy as np

from repro import perf
from repro.coverage.arrays import CoverageArrays
from repro.coverage.entries import CoverageSet
from repro.errors import BackboneError
from repro.geometry.grid import grouped_ranges
from repro.graph.csr import searchsorted_membership, sorted_unique
from repro.types import NodeId


@dataclass(frozen=True)
class GatewaySelection:
    """Outcome of gateway selection for one clusterhead.

    Attributes:
        head: The selecting clusterhead ``u``.
        gateways: All selected gateway node ids (first- and second-hop
            relays together).
        connectors: For each covered target clusterhead, the relay chain
            from ``u``: ``(v,)`` for a 2-hop target, ``(v, w)`` for a 3-hop
            target.
    """

    head: NodeId
    gateways: FrozenSet[NodeId]
    connectors: Mapping[NodeId, Tuple[NodeId, ...]]

    @property
    def num_gateways(self) -> int:
        """Number of distinct gateways selected."""
        return len(self.gateways)

    def covered_targets(self) -> FrozenSet[NodeId]:
        """The clusterheads this selection connects ``head`` to."""
        return frozenset(self.connectors)


@perf.timed("selection")
def select_gateways(
    coverage: CoverageSet,
    targets: Optional[Iterable[NodeId]] = None,
) -> GatewaySelection:
    """Run the greedy heuristic for ``coverage.head``.

    Args:
        coverage: The clusterhead's coverage set (with witnesses).
        targets: Restrict coverage obligations to these clusterheads (the
            dynamic backbone passes its pruned target set).  Defaults to the
            full coverage set.  Targets outside the coverage set are ignored
            — the caller's pruning can only shrink obligations.

    Returns:
        The :class:`GatewaySelection`.

    Raises:
        BackboneError: if some target has no witness (cannot happen for
            coverage sets produced by this library; guards corrupted input).
    """
    if targets is None:
        cov = coverage
    else:
        cov = coverage.restricted(frozenset(targets))

    remaining2: Set[NodeId] = set(cov.c2)
    remaining3: Set[NodeId] = set(cov.c3)
    gateways: Set[NodeId] = set()
    connectors: Dict[NodeId, Tuple[NodeId, ...]] = {}

    # Invert the witness maps around candidate first-hop neighbours.
    direct_of: Dict[NodeId, Set[NodeId]] = {}
    for ch, vs in cov.direct_witnesses.items():
        for v in vs:
            direct_of.setdefault(v, set()).add(ch)
    indirect_of: Dict[NodeId, Dict[NodeId, Set[NodeId]]] = {}
    for ch, pairs in cov.indirect_witnesses.items():
        for v, w in pairs:
            indirect_of.setdefault(v, {}).setdefault(ch, set()).add(w)

    # Hoisted once: the C3 targets each first-hop candidate can absorb.
    indirect_targets: Dict[NodeId, FrozenSet[NodeId]] = {
        v: frozenset(chs) for v, chs in indirect_of.items()
    }

    # Phase 1: greedy direct coverage of C2, absorbing C3 targets en route.
    while remaining2:
        best_v: Optional[NodeId] = None
        best_key: Tuple[int, int, int] = (0, 0, 0)
        for v, direct in direct_of.items():
            gain2 = len(direct & remaining2)
            if gain2 == 0:
                continue
            gain3 = len(indirect_targets.get(v, frozenset()) & remaining3)
            key = (gain2, gain3, -v)
            if best_v is None or key > best_key:
                best_v, best_key = v, key
        if best_v is None:
            raise BackboneError(
                f"head {cov.head}: 2-hop targets {sorted(remaining2)} have no "
                f"remaining witness"
            )
        gateways.add(best_v)
        for ch in direct_of[best_v] & remaining2:
            connectors[ch] = (best_v,)
        remaining2 -= direct_of[best_v]
        for ch, ws in indirect_of.get(best_v, {}).items():
            if ch in remaining3:
                w = min(ws)
                gateways.add(w)
                connectors[ch] = (best_v, w)
                remaining3.discard(ch)

    # Phase 2: cover the leftover C3 targets with relay pairs, preferring
    # pairs that reuse already-selected gateways.
    for ch in sorted(remaining3):
        pairs = cov.indirect_witnesses[ch]

        def pair_cost(pair: Tuple[NodeId, NodeId]) -> Tuple[int, NodeId, NodeId]:
            v, w = pair
            new = (v not in gateways) + (w not in gateways)
            return (new, v, w)

        v, w = min(pairs, key=pair_cost)
        gateways.add(v)
        gateways.add(w)
        connectors[ch] = (v, w)

    return GatewaySelection(
        head=cov.head,
        gateways=frozenset(gateways),
        connectors=connectors,
    )


@dataclass(frozen=True)
class BatchGatewaySelection:
    """Gateway selections of **all** clusterheads, in array form.

    One entry per covered target: head ``conn_head`` reaches clusterhead
    ``conn_ch`` through relay ``conn_v`` (and second relay ``conn_w``;
    ``-1`` marks a 2-hop target with no second relay).  All values are CSR
    rows of ``cov.csr``.
    """

    cov: CoverageArrays
    conn_head: np.ndarray
    conn_ch: np.ndarray
    conn_v: np.ndarray
    conn_w: np.ndarray

    def gateway_rows(self) -> np.ndarray:
        """All selected gateway rows (union over heads), ascending."""
        return np.unique(
            np.concatenate([self.conn_v, self.conn_w[self.conn_w >= 0]])
        )

    def backbone_rows(self) -> np.ndarray:
        """The backbone node set — clusterheads plus gateways — as rows."""
        return np.unique(np.concatenate([self.cov.heads, self.gateway_rows()]))

    def materialise_all(self) -> Dict[NodeId, GatewaySelection]:
        """Per-head :class:`GatewaySelection`, keyed by head id ascending.

        Bit-identical to :func:`select_gateways` over the materialised
        coverage sets (every selected gateway relays at least one
        connector, so the gateway set is the union of connector relays).
        """
        ids = self.cov.csr.ids
        order = np.argsort(self.conn_head, kind="stable")
        heads = self.conn_head[order].tolist()
        chs = ids[self.conn_ch[order]].tolist()
        vs = ids[self.conn_v[order]].tolist()
        ws = self.conn_w[order]
        w_ids = np.where(ws >= 0, ids[np.maximum(ws, 0)], -1).tolist()
        per_head: Dict[int, Dict[NodeId, Tuple[NodeId, ...]]] = {}
        for h, ch, v, w in zip(heads, chs, vs, w_ids):
            per_head.setdefault(h, {})[ch] = (v,) if w < 0 else (v, w)
        out: Dict[NodeId, GatewaySelection] = {}
        head_ids = ids[self.cov.heads].tolist()
        for h_row, h_id in zip(self.cov.heads.tolist(), head_ids):
            connectors = per_head.get(h_row, {})
            gateways: Set[NodeId] = set()
            for relays in connectors.values():
                gateways.update(relays)
            out[h_id] = GatewaySelection(
                head=h_id,
                gateways=frozenset(gateways),
                connectors=connectors,
            )
        return out


def _sorted_unique_inverse(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``np.unique(keys, return_inverse=True)`` for non-decreasing input."""
    if keys.shape[0] == 0:
        return keys, np.empty(0, dtype=np.int64)
    first = np.ones(keys.shape[0], dtype=bool)
    first[1:] = keys[1:] != keys[:-1]
    return keys[first], np.cumsum(first) - 1


def _unique_inverse(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``np.unique(keys, return_inverse=True)`` via a stable argsort.

    Radix-sorts the integer keys instead of taking numpy's hash-table
    path, whose fixed overhead dominates on per-tick masked selections.
    """
    if keys.shape[0] == 0:
        return keys, np.empty(0, dtype=np.int64)
    order = np.argsort(keys, kind="stable")
    sk = keys[order]
    first = np.ones(sk.shape[0], dtype=bool)
    first[1:] = sk[1:] != sk[:-1]
    inverse = np.empty(sk.shape[0], dtype=np.int64)
    inverse[order] = np.cumsum(first) - 1
    return sk[first], inverse


def _select_from_tables(
    ids: np.ndarray,
    n: int,
    d_head: np.ndarray,
    d_ch: np.ndarray,
    d_v: np.ndarray,
    i_head: np.ndarray,
    i_ch: np.ndarray,
    i_v: np.ndarray,
    i_w: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Lock-step greedy selection over witness tables sorted by (head, ...).

    The shared core of :func:`select_gateways_batch` (full tables) and
    :func:`select_gateways_masked` (tables sliced to triggered heads with
    excluded targets dropped).  Returns the connector columns
    ``(conn_head, conn_ch, conn_v, conn_w)``; ``conn_w == -1`` marks a
    2-hop target.
    """
    # Slot tables: unique (head, ch) targets and unique (head, v) first-hop
    # candidates, with every witness row mapped onto its slots.  The
    # witness tables are sorted by (head, ch, ...), so the (head, ch) keys
    # are non-decreasing and uniques reduce to boundary detection.
    t2_keys, d_t2 = _sorted_unique_inverse(d_head * n + d_ch)
    c_keys, d_c = _unique_inverse(d_head * n + d_v)
    cand_head = c_keys // n
    cand_v = c_keys % n
    t3_keys, i_t3 = _sorted_unique_inverse(i_head * n + i_ch)
    n_cand = c_keys.shape[0]
    n_t3 = t3_keys.shape[0]

    # Absorption table: for every (candidate, 3-hop target) pair reachable
    # through some (v, w) witness, the lowest second relay w.  Only
    # candidates that also appear in the direct table matter — phase 1
    # never selects a pure-indirect neighbour.
    i_cand = np.searchsorted(c_keys, i_head * n + i_v)
    if n_cand:
        i_cand_c = np.minimum(i_cand, n_cand - 1)
        in_cand = c_keys[i_cand_c] == i_head * n + i_v
    else:
        i_cand_c = i_cand
        in_cand = np.zeros(i_cand.shape[0], dtype=bool)
    u_key = i_cand_c[in_cand] * max(n_t3, 1) + i_t3[in_cand]
    u_w = i_w[in_cand]
    order = np.lexsort((u_w, u_key))
    u_key, u_w = u_key[order], u_w[order]
    first = np.ones(u_key.shape[0], dtype=bool)
    first[1:] = u_key[1:] != u_key[:-1]
    u3_c = u_key[first] // max(n_t3, 1)
    u3_t = u_key[first] % max(n_t3, 1)
    u3_w = u_w[first]

    rem2 = np.ones(t2_keys.shape[0], dtype=bool)
    rem3 = np.ones(n_t3, dtype=bool)
    ch_parts: List[np.ndarray] = []
    cc_parts: List[np.ndarray] = []
    cv_parts: List[np.ndarray] = []
    cw_parts: List[np.ndarray] = []

    if n_cand:
        # Candidate slots are grouped by head (keys sort by head first),
        # so segment starts are just the boundaries of the sorted column.
        seg_first = np.ones(n_cand, dtype=bool)
        seg_first[1:] = cand_head[1:] != cand_head[:-1]
        seg_starts = np.flatnonzero(seg_first)
        slots = np.arange(n_cand, dtype=np.int64)
        seg_counts = np.diff(np.append(seg_starts, n_cand))
        while True:
            live = rem2[d_t2]
            gain2 = np.bincount(d_c[live], minlength=n_cand)
            if not gain2.any():
                break
            gain3 = np.bincount(u3_c[rem3[u3_t]], minlength=n_cand)
            # Segmented argmax of (gain2, gain3, -v) per head; candidates
            # ascend by v within a segment, so "first position among ties"
            # is the lowest id.
            m2 = np.repeat(np.maximum.reduceat(gain2, seg_starts), seg_counts)
            tie = (gain2 == m2) & (gain2 > 0)
            g3 = np.where(tie, gain3, -1)
            m3 = np.repeat(np.maximum.reduceat(g3, seg_starts), seg_counts)
            pos = np.where(tie & (g3 == m3), slots, n_cand)
            picked = np.minimum.reduceat(pos, seg_starts)
            picked = picked[picked < n_cand]
            pick_mask = np.zeros(n_cand, dtype=bool)
            pick_mask[picked] = True
            # Cover the picked candidates' remaining direct targets ...
            covered = pick_mask[d_c] & rem2[d_t2]
            ch_parts.append(d_head[covered])
            cc_parts.append(d_ch[covered])
            cv_parts.append(d_v[covered])
            cw_parts.append(np.full(int(covered.sum()), -1, dtype=np.int64))
            rem2[d_t2[covered]] = False
            # ... and absorb any 3-hop target they indirectly witness.
            absorbed = pick_mask[u3_c] & rem3[u3_t]
            ch_parts.append(t3_keys[u3_t[absorbed]] // n)
            cc_parts.append(t3_keys[u3_t[absorbed]] % n)
            cv_parts.append(cand_v[u3_c[absorbed]])
            cw_parts.append(u3_w[absorbed])
            rem3[u3_t[absorbed]] = False
    if rem2.any():
        bad = int(np.flatnonzero(rem2)[0])
        head_id = int(ids[t2_keys[bad] // n])
        raise BackboneError(
            f"head {head_id}: some 2-hop targets have no remaining witness"
        )

    # Phase 2: leftover 3-hop targets, ascending (head, ch) — mirrors the
    # sorted() walk of the set-based code head by head.  The sequential
    # dependency (the gateway set grows after each pick) is *within* a
    # head only, so round ``k`` handles every head's ``k``-th leftover at
    # once: a segmented min over keys packed as ``miss*n² + v*n + w``
    # reproduces the lexicographic order ``((v∉s)+(w∉s), v, w)`` exactly.
    leftover = np.flatnonzero(rem3)
    if leftover.size:
        i_hc = i_head * n + i_ch
        starts = np.searchsorted(i_hc, t3_keys[leftover])
        ends = np.searchsorted(i_hc, t3_keys[leftover] + 1)
        lo_head = t3_keys[leftover] // n
        # Already-selected gateway keys (head*n + member), sorted.
        sh = np.concatenate(ch_parts) if ch_parts else np.empty(0, np.int64)
        sv = np.concatenate(cv_parts) if cv_parts else np.empty(0, np.int64)
        sw = np.concatenate(cw_parts) if cw_parts else np.empty(0, np.int64)
        skeys = sorted_unique(np.concatenate(
            [sh * n + sv, sh[sw >= 0] * n + sw[sw >= 0]]
        ))
        m = leftover.shape[0]
        new_seg = np.ones(m, dtype=bool)
        new_seg[1:] = lo_head[1:] != lo_head[:-1]
        seg_first = np.flatnonzero(new_seg)
        rank = np.arange(m) - seg_first[np.cumsum(new_seg) - 1]
        nsq = n * n
        for k in range(int(rank.max()) + 1):
            cur = np.flatnonzero(rank == k)
            counts = ends[cur] - starts[cur]
            off = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
            )
            rows = (np.arange(off[-1]) - np.repeat(off[:-1], counts)
                    + np.repeat(starts[cur], counts))
            v, w = i_v[rows], i_w[rows]
            hh = np.repeat(lo_head[cur], counts)
            miss = (
                (~searchsorted_membership(skeys, hh * n + v)).astype(np.int64)
                + ~searchsorted_membership(skeys, hh * n + w)
            )
            best = np.minimum.reduceat(miss * nsq + v * n + w, off[:-1])
            bv, bw = (best % nsq) // n, best % n
            ch_parts.append(lo_head[cur])
            cc_parts.append(t3_keys[leftover[cur]] % n)
            cv_parts.append(bv)
            cw_parts.append(bw)
            skeys = sorted_unique(np.concatenate(
                [skeys, lo_head[cur] * n + bv, lo_head[cur] * n + bw]
            ))

    empty = np.empty(0, dtype=np.int64)
    return (
        np.concatenate(ch_parts) if ch_parts else empty,
        np.concatenate(cc_parts) if cc_parts else empty,
        np.concatenate(cv_parts) if cv_parts else empty,
        np.concatenate(cw_parts) if cw_parts else empty,
    )


def select_gateways_batch(cov: CoverageArrays) -> BatchGatewaySelection:
    """Run the greedy heuristic for **every** clusterhead at once.

    The per-head greedy loop of :func:`select_gateways` vectorises across
    heads: each iteration picks, for every head that still has uncovered
    2-hop targets, its best first-hop candidate — largest direct gain,
    then largest indirect gain, then lowest row — with segmented
    ``reduceat`` passes over the candidate table, and covers/absorbs the
    corresponding targets in bulk.  Heads are independent, so running
    their iterations in lock-step changes nothing.  Phase 2 (leftover
    3-hop targets) runs round-by-round — round ``k`` picks every head's
    ``k``-th leftover with a segmented min — which is exactly the
    set-based code's per-head sequential walk, since heads never share
    gateway sets.

    Args:
        cov: Batched coverage sets from the CSR coverage kernels.

    Returns:
        The selections in array form; materialising them per head is
        bit-identical to :func:`select_gateways` on each head's
        :class:`~repro.coverage.entries.CoverageSet`.

    Raises:
        BackboneError: if some 2-hop target has no witness (guards
            corrupted input, as in :func:`select_gateways`).
    """
    conn_head, conn_ch, conn_v, conn_w = _select_from_tables(
        cov.csr.ids,
        cov.csr.num_nodes,
        cov.d_head,
        cov.d_ch,
        cov.d_v,
        cov.i_head,
        cov.i_ch,
        cov.i_v,
        cov.i_w,
    )
    return BatchGatewaySelection(
        cov=cov,
        conn_head=conn_head,
        conn_ch=conn_ch,
        conn_v=conn_v,
        conn_w=conn_w,
    )


def _rows_for_heads(table_head: np.ndarray, head_rows: np.ndarray) -> np.ndarray:
    """Flat indices of the table rows belonging to ``head_rows``.

    ``table_head`` is the (non-decreasing) head column of a witness table;
    ``head_rows`` must be sorted ascending so the gathered rows stay in
    (head, ...) order.
    """
    starts = np.searchsorted(table_head, head_rows)
    counts = np.searchsorted(table_head, head_rows + 1) - starts
    return grouped_ranges(starts, counts)


@perf.timed("selection")
def select_gateways_masked(
    cov: CoverageArrays,
    head_rows: np.ndarray,
    excl_keys: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Selections for ``head_rows`` only, with some targets excluded.

    Attributed to the ``selection`` perf stage like :func:`select_gateways`
    — the SD broadcast kernel calls this mid-delivery, and the stage split
    must match the reference path's.

    Equivalent to running :func:`select_gateways` per head on
    ``coverage.restricted(all_targets - exclusions)``: dropping a target's
    witness rows before selection is exactly what ``restricted`` does to
    the per-head coverage set.  The SD-CDS kernel calls this once per
    propagation level for all heads triggered at that step.

    Args:
        cov: Batched coverage sets over the (possibly stacked) CSR.
        head_rows: Triggered head rows, sorted ascending.
        excl_keys: Sorted ``head * n + ch`` keys (rows) of the excluded
            (head, target) pairs — each head's exclusion set, flattened.

    Returns:
        Connector columns ``(conn_head, conn_ch, conn_v, conn_w)`` with
        ``conn_w == -1`` marking 2-hop targets; each head's gateway set is
        the union of its connector relays.
    """
    n = cov.csr.num_nodes
    d_sel = _rows_for_heads(cov.d_head, head_rows)
    i_sel = _rows_for_heads(cov.i_head, head_rows)
    d_head, d_ch, d_v = cov.d_head[d_sel], cov.d_ch[d_sel], cov.d_v[d_sel]
    i_head, i_ch = cov.i_head[i_sel], cov.i_ch[i_sel]
    i_v, i_w = cov.i_v[i_sel], cov.i_w[i_sel]
    if excl_keys.shape[0]:
        keep = ~searchsorted_membership(excl_keys, d_head * n + d_ch)
        d_head, d_ch, d_v = d_head[keep], d_ch[keep], d_v[keep]
        keep = ~searchsorted_membership(excl_keys, i_head * n + i_ch)
        i_head, i_ch = i_head[keep], i_ch[keep]
        i_v, i_w = i_v[keep], i_w[keep]
    return _select_from_tables(
        cov.csr.ids, n, d_head, d_ch, d_v, i_head, i_ch, i_v, i_w
    )
