"""The paper's greedy gateway-selection heuristic (Section 3).

Given a clusterhead ``u``'s coverage set, select gateways connecting ``u`` to
every target clusterhead:

1. While uncovered 2-hop targets remain, pick the neighbour ``v`` that
   **directly covers** the most remaining ``C2`` targets; break ties by the
   number of remaining ``C3`` targets ``v`` **indirectly covers** (via a
   ``(v, w)`` witness pair), then by lowest node id.  Selecting ``v`` covers
   its direct targets; any ``C3`` target with a ``(v, w)`` witness is covered
   too, and the corresponding ``w`` (lowest id among ``v``'s partners for
   that target) is selected as well.
2. For each ``C3`` target still uncovered, select a witness pair ``(v, w)``.
   The paper does not fix the choice; we prefer pairs reusing
   already-selected gateways (fewest new nodes), breaking ties
   lexicographically — deterministic and never worse than an arbitrary pick.

The same function serves the static backbone (full coverage set) and the
dynamic backbone (coverage set pruned to the remaining targets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set, Tuple

from repro import perf
from repro.coverage.entries import CoverageSet
from repro.errors import BackboneError
from repro.types import NodeId


@dataclass(frozen=True)
class GatewaySelection:
    """Outcome of gateway selection for one clusterhead.

    Attributes:
        head: The selecting clusterhead ``u``.
        gateways: All selected gateway node ids (first- and second-hop
            relays together).
        connectors: For each covered target clusterhead, the relay chain
            from ``u``: ``(v,)`` for a 2-hop target, ``(v, w)`` for a 3-hop
            target.
    """

    head: NodeId
    gateways: FrozenSet[NodeId]
    connectors: Mapping[NodeId, Tuple[NodeId, ...]]

    @property
    def num_gateways(self) -> int:
        """Number of distinct gateways selected."""
        return len(self.gateways)

    def covered_targets(self) -> FrozenSet[NodeId]:
        """The clusterheads this selection connects ``head`` to."""
        return frozenset(self.connectors)


@perf.timed("selection")
def select_gateways(
    coverage: CoverageSet,
    targets: Optional[Iterable[NodeId]] = None,
) -> GatewaySelection:
    """Run the greedy heuristic for ``coverage.head``.

    Args:
        coverage: The clusterhead's coverage set (with witnesses).
        targets: Restrict coverage obligations to these clusterheads (the
            dynamic backbone passes its pruned target set).  Defaults to the
            full coverage set.  Targets outside the coverage set are ignored
            — the caller's pruning can only shrink obligations.

    Returns:
        The :class:`GatewaySelection`.

    Raises:
        BackboneError: if some target has no witness (cannot happen for
            coverage sets produced by this library; guards corrupted input).
    """
    if targets is None:
        cov = coverage
    else:
        cov = coverage.restricted(frozenset(targets))

    remaining2: Set[NodeId] = set(cov.c2)
    remaining3: Set[NodeId] = set(cov.c3)
    gateways: Set[NodeId] = set()
    connectors: Dict[NodeId, Tuple[NodeId, ...]] = {}

    # Invert the witness maps around candidate first-hop neighbours.
    direct_of: Dict[NodeId, Set[NodeId]] = {}
    for ch, vs in cov.direct_witnesses.items():
        for v in vs:
            direct_of.setdefault(v, set()).add(ch)
    indirect_of: Dict[NodeId, Dict[NodeId, Set[NodeId]]] = {}
    for ch, pairs in cov.indirect_witnesses.items():
        for v, w in pairs:
            indirect_of.setdefault(v, {}).setdefault(ch, set()).add(w)

    # Hoisted once: the C3 targets each first-hop candidate can absorb.
    indirect_targets: Dict[NodeId, FrozenSet[NodeId]] = {
        v: frozenset(chs) for v, chs in indirect_of.items()
    }

    # Phase 1: greedy direct coverage of C2, absorbing C3 targets en route.
    while remaining2:
        best_v: Optional[NodeId] = None
        best_key: Tuple[int, int, int] = (0, 0, 0)
        for v, direct in direct_of.items():
            gain2 = len(direct & remaining2)
            if gain2 == 0:
                continue
            gain3 = len(indirect_targets.get(v, frozenset()) & remaining3)
            key = (gain2, gain3, -v)
            if best_v is None or key > best_key:
                best_v, best_key = v, key
        if best_v is None:
            raise BackboneError(
                f"head {cov.head}: 2-hop targets {sorted(remaining2)} have no "
                f"remaining witness"
            )
        gateways.add(best_v)
        for ch in direct_of[best_v] & remaining2:
            connectors[ch] = (best_v,)
        remaining2 -= direct_of[best_v]
        for ch, ws in indirect_of.get(best_v, {}).items():
            if ch in remaining3:
                w = min(ws)
                gateways.add(w)
                connectors[ch] = (best_v, w)
                remaining3.discard(ch)

    # Phase 2: cover the leftover C3 targets with relay pairs, preferring
    # pairs that reuse already-selected gateways.
    for ch in sorted(remaining3):
        pairs = cov.indirect_witnesses[ch]

        def pair_cost(pair: Tuple[NodeId, NodeId]) -> Tuple[int, NodeId, NodeId]:
            v, w = pair
            new = (v not in gateways) + (w not in gateways)
            return (new, v, w)

        v, w = min(pairs, key=pair_cost)
        gateways.add(v)
        gateways.add(w)
        connectors[ch] = (v, w)

    return GatewaySelection(
        head=cov.head,
        gateways=frozenset(gateways),
        connectors=connectors,
    )
