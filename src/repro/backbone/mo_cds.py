"""The MO_CDS baseline (Alzoubi, Wan, Frieder — as described by the paper).

The paper's comparison algorithm: after lowest-ID clustering, "each
clusterhead selects a node to connect each 2-hop clusterhead and a pair of
nodes to connect each 3-hop clusterhead" over the **3-hop** coverage set.
There is no greedy merging across targets; sharing only arises incidentally
when the deterministic per-target choice lands on the same node.  Our
deterministic choice is the lowest-id connector for 2-hop targets and the
lexicographically smallest relay pair for 3-hop targets.

The full MobiHoc'02 construction has additional machinery (induced tree and
responsibility rules); the paper treats MO_CDS as "a modified version of the
static backbone with the 3-hop coverage set", which is exactly what this
module implements.  See DESIGN.md, "MO_CDS per-target selection".
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from repro.backbone.gateway_selection import GatewaySelection
from repro.backbone.static_backbone import Backbone
from repro.cluster.state import ClusterStructure
from repro.coverage.entries import CoverageSet
from repro.coverage.policy import compute_all_coverage_sets
from repro.types import CoveragePolicy, NodeId


def _per_target_selection(cov: CoverageSet) -> GatewaySelection:
    """One connector per 2-hop target, one pair per 3-hop target."""
    gateways: set[NodeId] = set()
    connectors: Dict[NodeId, Tuple[NodeId, ...]] = {}
    for ch in sorted(cov.c2):
        v = min(cov.direct_witnesses[ch])
        gateways.add(v)
        connectors[ch] = (v,)
    for ch in sorted(cov.c3):
        v, w = min(cov.indirect_witnesses[ch])
        gateways.update((v, w))
        connectors[ch] = (v, w)
    return GatewaySelection(head=cov.head, gateways=frozenset(gateways),
                            connectors=connectors)


def build_mo_cds(
    structure: ClusterStructure,
    coverage_sets: Optional[Mapping[NodeId, CoverageSet]] = None,
) -> Backbone:
    """Build the MO_CDS baseline backbone.

    Args:
        structure: A finished clustering.
        coverage_sets: Reuse pre-computed **3-hop** coverage sets.

    Returns:
        The MO_CDS :class:`~repro.backbone.static_backbone.Backbone`.
    """
    if coverage_sets is None:
        coverage_sets = compute_all_coverage_sets(structure, CoveragePolicy.THREE_HOP)
    selections = {
        head: _per_target_selection(cov) for head, cov in coverage_sets.items()
    }
    return Backbone(
        structure=structure,
        policy=CoveragePolicy.THREE_HOP,
        coverage_sets=dict(coverage_sets),
        selections=selections,
        algorithm="mo-cds",
    )
