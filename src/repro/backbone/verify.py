"""Backbone verification: is the constructed node set really a CDS?

Theorem 1 guarantees it for connected networks; this module is the runtime
check used by tests, by the CLI's ``--verify`` flag and by users integrating
custom clusterings.
"""

from __future__ import annotations

from repro.backbone.static_backbone import Backbone
from repro.errors import BackboneError
from repro.graph.connectivity import is_connected
from repro.graph.properties import is_connected_dominating_set, is_dominating_set


def verify_backbone(backbone: Backbone) -> None:
    """Raise :class:`~repro.errors.BackboneError` unless the backbone is a CDS.

    For a disconnected underlying graph the check degrades gracefully: each
    connected component must be dominated and the backbone restricted to the
    component must be connected.
    """
    graph = backbone.structure.graph
    nodes = backbone.nodes
    if is_connected(graph):
        if not is_connected_dominating_set(graph, nodes):
            _diagnose(backbone)
        return
    from repro.graph.connectivity import connected_components

    for comp in connected_components(graph):
        comp_backbone = nodes & comp
        sub = graph.subgraph(comp)
        if not is_connected_dominating_set(sub, comp_backbone):
            raise BackboneError(
                f"{backbone.algorithm}: backbone restricted to a component of "
                f"size {len(comp)} is not a CDS of that component"
            )


def _diagnose(backbone: Backbone) -> None:
    """Raise with a message saying *which* CDS property failed."""
    graph = backbone.structure.graph
    nodes = backbone.nodes
    if not is_dominating_set(graph, nodes):
        uncovered = [
            v for v in graph.nodes()
            if v not in nodes and not (graph.neighbours_view(v) & nodes)
        ]
        raise BackboneError(
            f"{backbone.algorithm}: backbone does not dominate nodes {uncovered}"
        )
    raise BackboneError(
        f"{backbone.algorithm}: backbone of size {backbone.size} induces a "
        f"disconnected subgraph"
    )
