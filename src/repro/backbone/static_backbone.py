"""The static backbone: a cluster-based source-independent CDS.

Every clusterhead independently runs the greedy gateway selection over its
coverage set; the backbone is the union of all clusterheads and all selected
gateways (the nodes a GATEWAY message would inform).  Theorem 1: the result
is a source-independent CDS of the network.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, FrozenSet, Mapping, Optional

from repro.backbone.gateway_selection import GatewaySelection, select_gateways
from repro.cluster.state import ClusterStructure
from repro.coverage.entries import CoverageSet
from repro.coverage.policy import compute_all_coverage_sets
from repro.types import CoveragePolicy, NodeId


@dataclass(frozen=True)
class Backbone:
    """A constructed backbone (static, or the MO_CDS baseline).

    Attributes:
        structure: The underlying clustering.
        policy: Coverage definition used.
        coverage_sets: Per-head coverage sets.
        selections: Per-head gateway selections.
        algorithm: Human-readable construction name (for reports).
    """

    structure: ClusterStructure
    policy: CoveragePolicy
    coverage_sets: Mapping[NodeId, CoverageSet]
    selections: Mapping[NodeId, GatewaySelection]
    algorithm: str

    @cached_property
    def gateways(self) -> FrozenSet[NodeId]:
        """Union of all selected gateways."""
        out: set[NodeId] = set()
        for sel in self.selections.values():
            out |= sel.gateways
        return frozenset(out)

    @cached_property
    def nodes(self) -> FrozenSet[NodeId]:
        """The backbone node set: clusterheads plus gateways (the CDS)."""
        return frozenset(self.structure.clusterheads) | self.gateways

    @property
    def size(self) -> int:
        """``|CDS|`` — the quantity plotted in the paper's Figure 6."""
        return len(self.nodes)

    def contains(self, v: NodeId) -> bool:
        """Whether node ``v`` forwards broadcasts under this backbone."""
        return v in self.nodes


def build_static_backbone(
    structure: ClusterStructure,
    policy: CoveragePolicy = CoveragePolicy.TWO_FIVE_HOP,
    coverage_sets: Optional[Mapping[NodeId, CoverageSet]] = None,
) -> Backbone:
    """Build the cluster-based SI-CDS backbone.

    Args:
        structure: A finished clustering.
        policy: 2.5-hop (paper default for the cheaper maintenance) or 3-hop.
        coverage_sets: Reuse pre-computed coverage sets (must match
            ``policy``); computed when omitted.

    Returns:
        The static :class:`Backbone`.
    """
    if coverage_sets is None:
        coverage_sets = compute_all_coverage_sets(structure, policy)
    selections: Dict[NodeId, GatewaySelection] = {
        head: select_gateways(cov) for head, cov in coverage_sets.items()
    }
    return Backbone(
        structure=structure,
        policy=policy,
        coverage_sets=dict(coverage_sets),
        selections=selections,
        algorithm=f"static-backbone[{policy.label}]",
    )
