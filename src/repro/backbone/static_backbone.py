"""The static backbone: a cluster-based source-independent CDS.

Every clusterhead independently runs the greedy gateway selection over its
coverage set; the backbone is the union of all clusterheads and all selected
gateways (the nodes a GATEWAY message would inform).  Theorem 1: the result
is a source-independent CDS of the network.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Dict, FrozenSet, Mapping, Optional

from repro import perf
from repro.backbone.gateway_selection import (
    GatewaySelection,
    select_gateways,
    select_gateways_batch,
)
from repro.cluster.state import ClusterStructure
from repro.coverage.entries import CoverageSet
from repro.coverage.policy import (
    compute_all_coverage_sets,
    compute_coverage_arrays,
)
from repro.graph.csr import CSR_CUTOVER
from repro.types import CoveragePolicy, NodeId

if TYPE_CHECKING:
    from repro.topology.coverage_index import CoverageIndex


@dataclass(frozen=True)
class Backbone:
    """A constructed backbone (static, or the MO_CDS baseline).

    Attributes:
        structure: The underlying clustering.
        policy: Coverage definition used.
        coverage_sets: Per-head coverage sets.
        selections: Per-head gateway selections.
        algorithm: Human-readable construction name (for reports).
    """

    structure: ClusterStructure
    policy: CoveragePolicy
    coverage_sets: Mapping[NodeId, CoverageSet]
    selections: Mapping[NodeId, GatewaySelection]
    algorithm: str

    @cached_property
    def gateways(self) -> FrozenSet[NodeId]:
        """Union of all selected gateways."""
        out: set[NodeId] = set()
        for sel in self.selections.values():
            out |= sel.gateways
        return frozenset(out)

    @cached_property
    def nodes(self) -> FrozenSet[NodeId]:
        """The backbone node set: clusterheads plus gateways (the CDS)."""
        return frozenset(self.structure.clusterheads) | self.gateways

    @property
    def size(self) -> int:
        """``|CDS|`` — the quantity plotted in the paper's Figure 6."""
        return len(self.nodes)

    def contains(self, v: NodeId) -> bool:
        """Whether node ``v`` forwards broadcasts under this backbone."""
        return v in self.nodes


def build_static_backbone(
    structure: ClusterStructure,
    policy: CoveragePolicy = CoveragePolicy.TWO_FIVE_HOP,
    coverage_sets: Optional[Mapping[NodeId, CoverageSet]] = None,
    *,
    index: Optional["CoverageIndex"] = None,
) -> Backbone:
    """Build the cluster-based SI-CDS backbone.

    Args:
        structure: A finished clustering.
        policy: 2.5-hop (paper default for the cheaper maintenance) or 3-hop.
        coverage_sets: Reuse pre-computed coverage sets (must match
            ``policy``); computed when omitted.
        index: A :class:`~repro.topology.coverage_index.CoverageIndex` to
            pull per-head coverage sets *and* gateway selections from.  Under
            an edge-event stream only dirty heads are recomputed, which is
            what makes incremental backbone maintenance cheap; the result is
            identical to a from-scratch build.  The index's policy must
            match ``policy``; mutually exclusive with ``coverage_sets``.

    Returns:
        The static :class:`Backbone`.
    """
    if index is not None:
        if coverage_sets is not None:
            raise ValueError("pass either coverage_sets or index, not both")
        if index.policy is not policy:
            raise ValueError(
                f"index policy {index.policy.label} does not match "
                f"requested policy {policy.label}"
            )
        coverage_sets = index.all_coverage_sets(structure)
        selections: Dict[NodeId, GatewaySelection] = dict(
            index.all_selections(structure)
        )
        return Backbone(
            structure=structure,
            policy=policy,
            coverage_sets=dict(coverage_sets),
            selections=selections,
            algorithm=f"static-backbone[{policy.label}]",
        )
    if coverage_sets is None and len(structure.graph) >= CSR_CUTOVER:
        # Batched CSR path: one vectorised coverage pass and one lock-step
        # greedy selection for all heads; materialised results are
        # bit-identical to the per-head walks below.
        with perf.stage("coverage"):
            arrays = compute_coverage_arrays(structure, policy)
            coverage_sets = arrays.materialise_all()
        with perf.stage("selection"):
            selections = select_gateways_batch(arrays).materialise_all()
        return Backbone(
            structure=structure,
            policy=policy,
            coverage_sets=dict(coverage_sets),
            selections=selections,
            algorithm=f"static-backbone[{policy.label}]",
        )
    if coverage_sets is None:
        coverage_sets = compute_all_coverage_sets(structure, policy)
    selections = {
        head: select_gateways(cov) for head, cov in coverage_sets.items()
    }
    return Backbone(
        structure=structure,
        policy=policy,
        coverage_sets=dict(coverage_sets),
        selections=selections,
        algorithm=f"static-backbone[{policy.label}]",
    )
