"""Backbone construction: the static SI-CDS and the MO_CDS baseline.

A backbone is the node set that forwards broadcast packets: all clusterheads
plus selected gateways.  The **static backbone** (paper, Section 3) selects
gateways with a per-clusterhead greedy set-cover heuristic; the **MO_CDS**
baseline (Alzoubi–Wan–Frieder as described by the paper) selects one
connector per 2-hop head and a relay pair per 3-hop head without merging.
Dynamic (per-broadcast) gateway selection lives in
:mod:`repro.broadcast.sd_cds` and reuses this package's selection heuristic.
"""

from repro.backbone.gateway_selection import GatewaySelection, select_gateways
from repro.backbone.static_backbone import Backbone, build_static_backbone
from repro.backbone.mo_cds import build_mo_cds
from repro.backbone.verify import verify_backbone

__all__ = [
    "GatewaySelection",
    "select_gateways",
    "Backbone",
    "build_static_backbone",
    "build_mo_cds",
    "verify_backbone",
]
