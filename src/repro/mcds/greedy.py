"""The Guha–Khuller greedy CDS approximation (Algorithm I).

Grow a tree from the node of maximum degree; repeatedly "scan" the grey node
(tree-adjacent) or grey/white pair that whitens the most white nodes.  Scanned
nodes (black) form a CDS once no white nodes remain.  The approximation ratio
is ``2(1 + H(Δ))`` in general graphs — good enough as an upper-bound seed for
the exact solver and as a reference curve in the ratio study.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set

from repro.errors import DisconnectedGraphError
from repro.graph.adjacency import Graph
from repro.graph.connectivity import is_connected
from repro.types import NodeId

#: Node colours during the scan.
_WHITE, _GREY, _BLACK = 0, 1, 2


def greedy_cds(graph: Graph) -> FrozenSet[NodeId]:
    """A connected dominating set via greedy scanning.

    Args:
        graph: A connected graph with at least one node.

    Returns:
        The black (scanned) node set — a CDS of the graph.

    Raises:
        DisconnectedGraphError: if the graph is not connected.
    """
    n = graph.num_nodes
    if n == 0:
        return frozenset()
    if not is_connected(graph):
        raise DisconnectedGraphError("greedy CDS requires a connected graph")
    if n == 1:
        return frozenset(graph.nodes())

    colour: Dict[NodeId, int] = {v: _WHITE for v in graph}
    black: Set[NodeId] = set()

    def scan(v: NodeId) -> int:
        """Blacken ``v``; grey its white neighbours; return #whitened."""
        whitened = 0
        if colour[v] == _WHITE:
            whitened += 1
        colour[v] = _BLACK
        black.add(v)
        for w in graph.neighbours_view(v):
            if colour[w] == _WHITE:
                colour[w] = _GREY
                whitened += 1
        return whitened

    start = max(graph.nodes(), key=lambda v: (graph.degree(v), -v))
    scan(start)
    while any(c == _WHITE for c in colour.values()):
        best: Optional[NodeId] = None
        best_gain = -1
        # Scan rule: pick the grey node whitening the most white nodes.
        for v in graph.nodes():
            if colour[v] != _GREY:
                continue
            gain = sum(1 for w in graph.neighbours_view(v) if colour[w] == _WHITE)
            if gain > best_gain:
                best, best_gain = v, gain
        if best is None or best_gain <= 0:
            # A one-step lookahead (grey/white pair) keeps the tree growing
            # when no single grey node whitens anything.
            for v in graph.nodes():
                if colour[v] != _GREY:
                    continue
                for w in graph.neighbours_view(v):
                    if colour[w] == _WHITE:
                        best = v
                        break
                if best is not None:
                    break
        if best is None:  # pragma: no cover - unreachable on connected graphs
            raise DisconnectedGraphError("greedy CDS could not reach all nodes")
        scan(best)
    # Blackening may overshoot: a single black node with all others grey is
    # already a CDS for star-like graphs; the loop exits as soon as no white
    # nodes remain, so `black` is minimalish but not guaranteed minimum.
    return frozenset(black)
