"""Empirical approximation-ratio study.

The paper's analysis (Section 4) claims both backbones have a *constant*
approximation ratio to the MCDS.  On small connected geometric samples we
can compute the exact MCDS and measure the realised ratios of the static
backbone, the dynamic backbone and MO_CDS directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.backbone.mo_cds import build_mo_cds
from repro.backbone.static_backbone import build_static_backbone
from repro.broadcast.sd_cds import broadcast_sd
from repro.cluster.lowest_id import lowest_id_clustering
from repro.graph.generators import random_geometric_network
from repro.mcds.exact import exact_mcds
from repro.rng import RngLike, ensure_rng
from repro.types import CoveragePolicy, PruningLevel


@dataclass(frozen=True, slots=True)
class RatioSample:
    """Measured sizes for one sampled network."""

    n: int
    mcds_size: int
    static_25: int
    static_3: int
    dynamic_25: int
    mo_cds: int

    @property
    def static_ratio(self) -> float:
        """Static backbone (2.5-hop) size over the exact MCDS size."""
        return self.static_25 / self.mcds_size

    @property
    def dynamic_ratio(self) -> float:
        """Dynamic forward-node count over the exact MCDS size."""
        return self.dynamic_25 / self.mcds_size

    @property
    def mo_ratio(self) -> float:
        """MO_CDS size over the exact MCDS size."""
        return self.mo_cds / self.mcds_size


def approximation_ratio_study(
    *,
    samples: int = 20,
    n: int = 14,
    average_degree: float = 5.0,
    rng: RngLike = None,
    max_exact_nodes: int = 24,
) -> List[RatioSample]:
    """Sample networks, solve the exact MCDS, and measure realised ratios.

    Args:
        samples: Number of networks to measure.
        n: Nodes per network (keep small — exact MCDS is exponential).
        average_degree: Target density of the samples.
        rng: Seed or generator.
        max_exact_nodes: Safety limit forwarded to the exact solver.

    Returns:
        One :class:`RatioSample` per network.
    """
    generator = ensure_rng(rng)
    out: List[RatioSample] = []
    for _ in range(samples):
        net = random_geometric_network(n, average_degree, rng=generator)
        clustering = lowest_id_clustering(net.graph)
        mcds = exact_mcds(net.graph, max_nodes=max_exact_nodes)
        source = int(generator.choice(net.graph.nodes()))
        dyn = broadcast_sd(
            clustering, source,
            policy=CoveragePolicy.TWO_FIVE_HOP, pruning=PruningLevel.FULL,
        )
        out.append(
            RatioSample(
                n=n,
                mcds_size=len(mcds),
                static_25=build_static_backbone(
                    clustering, CoveragePolicy.TWO_FIVE_HOP
                ).size,
                static_3=build_static_backbone(
                    clustering, CoveragePolicy.THREE_HOP
                ).size,
                dynamic_25=dyn.result.num_forward_nodes,
                mo_cds=build_mo_cds(clustering).size,
            )
        )
    return out
