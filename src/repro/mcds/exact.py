"""Exact minimum connected dominating set for small graphs.

Search strategy: iterate candidate sizes ``k`` upward from a simple lower
bound to a greedy upper bound; for each ``k`` enumerate node subsets in a
connectivity-aware order and test the CDS predicate.  Pure enumeration is
exponential, so the solver refuses graphs beyond ``max_nodes`` (default 24)
— enough for the approximation-ratio study, whose samples are small by
design.

Two easy prunes make mid-size instances (n ≈ 20) practical:

* subsets are built only from non-leaf nodes when the graph has >= 2 nodes
  and some non-leaf dominates every leaf's neighbourhood — concretely, a
  leaf can always be swapped for its unique neighbour in any CDS, so leaves
  need never be enumerated (unless the graph is a single edge);
* a frequency lower bound: every node must be dominated, and a node of
  degree ``Δ`` dominates at most ``Δ + 1`` nodes, so ``k >= n / (Δ + 1)``.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, List, Optional

from repro.errors import ConfigurationError, DisconnectedGraphError
from repro.graph.adjacency import Graph
from repro.graph.connectivity import is_connected
from repro.graph.properties import is_connected_dominating_set
from repro.mcds.greedy import greedy_cds
from repro.types import NodeId


def mcds_size_lower_bound(graph: Graph) -> int:
    """``ceil(n / (Δ + 1))`` — the domination-counting lower bound."""
    n = graph.num_nodes
    if n == 0:
        return 0
    delta = max(graph.degree(v) for v in graph)
    return -(-n // (delta + 1))  # ceil division


def exact_mcds(graph: Graph, *, max_nodes: int = 24) -> FrozenSet[NodeId]:
    """An exact minimum CDS of a connected graph.

    Args:
        graph: A connected graph with at least one node.
        max_nodes: Refuse larger instances (enumeration is exponential).

    Returns:
        A minimum-size CDS (one witness; minima need not be unique).

    Raises:
        ConfigurationError: if the graph exceeds ``max_nodes``.
        DisconnectedGraphError: if the graph is not connected.
    """
    n = graph.num_nodes
    if n > max_nodes:
        raise ConfigurationError(
            f"exact MCDS limited to {max_nodes} nodes, got {n} "
            f"(use greedy_cds for larger graphs)"
        )
    if n == 0:
        return frozenset()
    if not is_connected(graph):
        raise DisconnectedGraphError("exact MCDS requires a connected graph")
    if n == 1:
        return frozenset(graph.nodes())
    if n == 2:
        return frozenset([min(graph.nodes())])

    # A leaf's unique neighbour dominates the leaf and everything the leaf
    # dominates, so some minimum CDS avoids all leaves (n >= 3 here).
    candidates: List[NodeId] = [v for v in graph.nodes() if graph.degree(v) > 1]
    if not candidates:  # pragma: no cover - impossible for connected n >= 3
        candidates = graph.nodes()

    upper = greedy_cds(graph)
    best: FrozenSet[NodeId] = frozenset(upper)
    lower = mcds_size_lower_bound(graph)
    for k in range(lower, len(best)):
        found = _find_cds_of_size(graph, candidates, k)
        if found is not None:
            return found
    return best


def _find_cds_of_size(
    graph: Graph, candidates: List[NodeId], k: int
) -> Optional[FrozenSet[NodeId]]:
    """First CDS of exactly size ``k`` drawn from ``candidates``, else None."""
    if k <= 0 or k > len(candidates):
        return None
    for combo in combinations(candidates, k):
        subset = frozenset(combo)
        if is_connected_dominating_set(graph, subset):
            return subset
    return None
