"""Minimum-CDS reference implementations.

Finding a minimum connected dominating set is NP-complete (also on unit disk
graphs), so the paper argues about *constant approximation ratios*.  This
package provides an exact branch-and-bound solver for small instances, the
classic Guha–Khuller greedy approximation for larger ones, and the empirical
approximation-ratio study that checks the constant-ratio claim on sampled
networks.
"""

from repro.mcds.exact import exact_mcds, mcds_size_lower_bound
from repro.mcds.greedy import greedy_cds
from repro.mcds.ratio import RatioSample, approximation_ratio_study

__all__ = [
    "exact_mcds",
    "mcds_size_lower_bound",
    "greedy_cds",
    "RatioSample",
    "approximation_ratio_study",
]
