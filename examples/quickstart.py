#!/usr/bin/env python3
"""Quickstart: build a MANET, cluster it, construct both backbones, broadcast.

Walks the library's whole public surface in ~40 lines of calls:

1. sample a connected network from the paper's simulation environment
   (100x100 area, degree-calibrated transmission range);
2. run lowest-ID clustering;
3. build the static (SI-CDS) backbone and verify it is a CDS;
4. run a broadcast over the static backbone and a dynamic (SD-CDS)
   broadcast, and compare forward-node counts against blind flooding.

Run:  python examples/quickstart.py
"""

from repro import (
    blind_flooding,
    broadcast_sd,
    broadcast_si,
    build_static_backbone,
    check_full_delivery,
    lowest_id_clustering,
    random_geometric_network,
    verify_backbone,
)
from repro.viz.ascii_art import render_backbone


def main() -> None:
    # 1. One connected sample of the paper's environment: 60 nodes at
    #    average degree 6 in the 100x100 working space.
    net = random_geometric_network(n=60, average_degree=6.0, rng=2003)
    print(f"network: {net.num_nodes} nodes, range r = {net.radius:.2f}, "
          f"{net.graph.num_edges} links")

    # 2. Lowest-ID clustering: heads form an independent dominating set.
    clustering = lowest_id_clustering(net.graph)
    print(f"clusters: {clustering.num_clusters} "
          f"(heads {clustering.sorted_heads()})")

    # 3. The static backbone — every clusterhead greedily selects gateways
    #    for its 2.5-hop coverage set; heads + gateways form a SI-CDS.
    backbone = build_static_backbone(clustering)
    verify_backbone(backbone)  # raises unless it is a genuine CDS
    print(f"static backbone: {backbone.size} nodes "
          f"({clustering.num_clusters} heads + "
          f"{len(backbone.gateways)} gateways)")

    # 4. Broadcast three ways from node 0 and compare forward-node counts.
    source = 0
    flood = blind_flooding(net.graph, source)
    static = broadcast_si(net.graph, backbone, source)
    dynamic = broadcast_sd(clustering, source)
    for result in (flood, static, dynamic.result):
        check_full_delivery(net.graph, result)  # all reach every node
        print(f"  {result.algorithm:<32} forwards "
              f"{result.num_forward_nodes:>3}/{net.num_nodes}   "
              f"latency {result.latency}")

    print("\ntopology (#: clusterhead, o: gateway, .: member):")
    print(render_backbone(net, clustering, backbone.gateways,
                          width=72, height=24))


if __name__ == "__main__":
    main()
