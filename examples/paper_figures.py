#!/usr/bin/env python3
"""Regenerate every figure of the paper's evaluation, in one command.

Runs the Figure 6/7/8 drivers at the chosen fidelity and writes the series
to `paper_figures/` as text tables, CSV, JSON and markdown.  With
``--paper`` the trials follow the paper's stopping rule (99% confidence
interval within ±5%) and finish in well under a minute on a laptop.

Run:  python examples/paper_figures.py [--paper] [--out DIR]
"""

import argparse
import time
from pathlib import Path

from repro.io.results import tables_to_csv, tables_to_json, tables_to_markdown
from repro.workload.config import PaperEnvironment
from repro.workload.experiments import run_fig6, run_fig7, run_fig8


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper", action="store_true",
                        help="full fidelity (paper's stopping rule)")
    parser.add_argument("--out", default="paper_figures",
                        help="output directory (default: paper_figures)")
    parser.add_argument("--seed", type=int, default=20030422)
    args = parser.parse_args()

    env = (PaperEnvironment.paper() if args.paper
           else PaperEnvironment.quick()).scaled(seed=args.seed)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    all_tables = []
    for name, runner in (("fig6", run_fig6), ("fig7", run_fig7),
                         ("fig8", run_fig8)):
        t0 = time.time()
        tables = runner(env)
        elapsed = time.time() - t0
        print(f"=== {name} ({elapsed:.1f}s) ===")
        for _d, table in sorted(tables.items()):
            print(table.render(ci=args.paper))
            print()
            all_tables.append(table)
        tables_to_csv(tables.values(), out / f"{name}.csv")
        tables_to_json(tables.values(), out / f"{name}.json")

    tables_to_markdown(all_tables, out / "figures.md")
    fidelity = "paper (99% CI within ±5%)" if args.paper else "quick (12 trials/point)"
    print(f"fidelity: {fidelity}")
    print(f"wrote CSV/JSON per figure and figures.md to {out}/")


if __name__ == "__main__":
    main()
