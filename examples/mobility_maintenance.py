#!/usr/bin/env python3
"""Why the paper prefers an on-demand backbone: maintenance under mobility.

Drives a 50-node network with a random-walk mobility model at several speeds
and accounts, per tick, how much of the *static* backbone's signalling would
have to be repeated: clusterhead role flips, member reassignments, gateway
turnover and the number of clusterheads whose coverage set or gateway
selection changed (each of which would re-run CH_HOP gathering and re-issue
a GATEWAY message).  The dynamic backbone pays none of this — gateways are
chosen per broadcast.

Run:  python examples/mobility_maintenance.py
"""

from repro.geometry.mobility import RandomWalk
from repro.graph.generators import random_geometric_network
from repro.maintenance.live import LiveMaintenanceSession
from repro.maintenance.session import MobilitySession

SPEEDS = (0.5, 2.0, 5.0, 10.0)
TICKS = 12
N = 50


def main() -> None:
    print(f"static-backbone maintenance, n={N}, d=10, {TICKS} ticks "
          f"(averages per tick)\n")
    header = (f"{'speed':>6} | {'link':>6} {'head':>6} {'member':>8} "
              f"{'gateway':>9} {'heads re-':>10}")
    print(header)
    print(f"{'':>6} | {'churn':>6} {'flips':>6} {'reassign':>8} "
          f"{'turnover':>9} {'signalling':>10}")
    print("-" * len(header))
    for speed in SPEEDS:
        net = random_geometric_network(N, 10.0, rng=7)
        session = MobilitySession(
            net, RandomWalk(speed=speed, area=net.area, rng=int(speed * 10))
        )
        link = flips = reassign = turnover = resignal = 0.0
        for report in session.run(TICKS):
            assert report.cluster_churn and report.backbone_churn
            link += report.link_changes
            flips += report.cluster_churn.role_change_count
            reassign += len(report.cluster_churn.reassigned_members)
            turnover += report.backbone_churn.gateway_turnover
            resignal += len(report.backbone_churn.heads_with_new_selection)
        t = float(TICKS)
        print(f"{speed:>6g} | {link / t:>6.1f} {flips / t:>6.1f} "
              f"{reassign / t:>8.1f} {turnover / t:>9.1f} "
              f"{resignal / t:>10.1f}")
    print("\nEvery re-signalling head re-runs the CH_HOP exchange and a "
          "GATEWAY flood;\nthe dynamic backbone avoids all of it by "
          "selecting gateways per broadcast.")

    print("\nexact incremental message accounting (messages per tick, "
          "vs full rebuild):\n")
    print(f"{'speed':>6} | {'hello':>6} {'decl':>6} {'chhop':>6} "
          f"{'gatew':>6} {'total':>6} {'rebuild':>8} {'saved':>6}")
    for speed in SPEEDS:
        net = random_geometric_network(N, 10.0, rng=7)
        live = LiveMaintenanceSession(
            net, RandomWalk(speed=speed, area=net.area, rng=int(speed * 10))
        )
        reports = live.run(TICKS)
        t = float(TICKS)
        hello = sum(r.messages["hello"] for r in reports) / t
        decl = sum(r.messages["declaration"] for r in reports) / t
        chhop = sum(r.messages["ch_hop1"] + r.messages["ch_hop2"]
                    for r in reports) / t
        gatew = sum(r.messages["gateway"] for r in reports) / t
        total = sum(r.total for r in reports) / t
        rebuild = sum(r.rebuild_messages for r in reports) / t
        print(f"{speed:>6g} | {hello:>6.1f} {decl:>6.1f} {chhop:>6.1f} "
              f"{gatew:>6.1f} {total:>6.1f} {rebuild:>8.1f} "
              f"{1 - total / rebuild:>6.0%}")


if __name__ == "__main__":
    main()
