#!/usr/bin/env python3
"""Measure the backbones' approximation ratios against the exact MCDS.

The paper proves both backbones have a constant approximation ratio to the
minimum connected dominating set (Section 4).  Finding the MCDS is
NP-complete, but for small networks the exact optimum is computable by
branch and bound — so we can *measure* the realised ratios.

Run:  python examples/approximation_ratio.py
"""

from repro.mcds.ratio import approximation_ratio_study


def main() -> None:
    print("exact-MCDS approximation ratios (n=14, d=5, 20 samples)\n")
    samples = approximation_ratio_study(samples=20, n=14,
                                        average_degree=5.0, rng=2003)
    print(f"{'sample':>6} {'|MCDS|':>7} {'static2.5':>10} {'static3':>8} "
          f"{'dynamic':>8} {'mo-cds':>7}")
    for i, s in enumerate(samples):
        print(f"{i:>6} {s.mcds_size:>7} {s.static_25:>10} {s.static_3:>8} "
              f"{s.dynamic_25:>8} {s.mo_cds:>7}")
    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
    print("\nratios to the optimum:")
    for label, values in (
        ("static 2.5-hop", [s.static_ratio for s in samples]),
        ("dynamic 2.5-hop", [s.dynamic_ratio for s in samples]),
        ("mo-cds", [s.mo_ratio for s in samples]),
    ):
        print(f"  {label:<16} mean {mean(values):.2f}   "
              f"worst {max(values):.2f}")
    print("\nAll comfortably below small constants — the constant-ratio "
          "claim, observed.")


if __name__ == "__main__":
    main()
