#!/usr/bin/env python3
"""Broadcast protocol shoot-out across network densities.

Reproduces the paper's core comparison in miniature: for common (d=6) and
dense (d=18) networks, measures the average forward-node count of blind
flooding, the MO_CDS baseline, the static backbone and the dynamic backbone
(both coverage policies), averaged over many sampled networks and sources.

The output table shows the broadcast-storm motivation directly: in dense
networks the dynamic backbone needs a small fraction of the transmissions
flooding needs, and beats every source-independent scheme.

Run:  python examples/broadcast_comparison.py
"""

import numpy as np

from repro import (
    CoveragePolicy,
    blind_flooding,
    broadcast_sd,
    broadcast_si,
    build_mo_cds,
    build_static_backbone,
    lowest_id_clustering,
    random_geometric_network,
)

N = 80
TRIALS = 25
PROTOCOLS = [
    "flooding", "mo-cds", "static 2.5-hop", "static 3-hop",
    "dynamic 2.5-hop", "dynamic 3-hop",
]


def one_trial(n: int, degree: float, rng: np.random.Generator) -> dict:
    net = random_geometric_network(n, degree, rng=rng)
    clustering = lowest_id_clustering(net.graph)
    source = int(rng.choice(net.graph.nodes()))
    static25 = build_static_backbone(clustering, CoveragePolicy.TWO_FIVE_HOP)
    static3 = build_static_backbone(clustering, CoveragePolicy.THREE_HOP)
    mo = build_mo_cds(clustering)
    return {
        "flooding": blind_flooding(net.graph, source).num_forward_nodes,
        "mo-cds": broadcast_si(net.graph, mo, source).num_forward_nodes,
        "static 2.5-hop": broadcast_si(net.graph, static25, source).num_forward_nodes,
        "static 3-hop": broadcast_si(net.graph, static3, source).num_forward_nodes,
        "dynamic 2.5-hop": broadcast_sd(
            clustering, source, policy=CoveragePolicy.TWO_FIVE_HOP
        ).result.num_forward_nodes,
        "dynamic 3-hop": broadcast_sd(
            clustering, source, policy=CoveragePolicy.THREE_HOP
        ).result.num_forward_nodes,
    }


def main() -> None:
    rng = np.random.default_rng(42)
    print(f"average forward-node count, n={N}, {TRIALS} trials per density\n")
    header = f"{'protocol':<18}" + "".join(
        f"{f'd={d:g}':>10}" for d in (6.0, 18.0)
    )
    print(header)
    print("-" * len(header))
    columns: dict = {}
    for degree in (6.0, 18.0):
        totals = {p: 0.0 for p in PROTOCOLS}
        for _ in range(TRIALS):
            for p, v in one_trial(N, degree, rng).items():
                totals[p] += v
        columns[degree] = {p: totals[p] / TRIALS for p in PROTOCOLS}
    for p in PROTOCOLS:
        row = f"{p:<18}" + "".join(
            f"{columns[d][p]:>10.1f}" for d in (6.0, 18.0)
        )
        print(row)
    print()
    for d in (6.0, 18.0):
        saved = 1.0 - columns[d]["dynamic 2.5-hop"] / columns[d]["flooding"]
        print(f"d={d:g}: the dynamic backbone removes {saved:.0%} of "
              f"flooding's transmissions")


if __name__ == "__main__":
    main()
