#!/usr/bin/env python3
"""What the backbone's efficiency costs when the channel is imperfect.

The paper assumes the MAC layer absorbs collisions and losses.  This study
re-runs the distributed SI/SD broadcasts on a lossy simulated medium
(control traffic stays ideal, so only the data plane degrades) and sweeps
the per-delivery loss probability.

Expected picture — redundancy is protective:

* blind flooding keeps near-full delivery deep into heavy loss;
* the static backbone degrades next (its CDS still has path diversity);
* the lean dynamic backbone degrades fastest — the flip side of the
  paper's forward-count savings;
* passive clustering (ideal channel only) loses delivery *without* any
  channel loss in sparse networks — the paper's critique, measured.

Run:  python examples/robustness_study.py
"""

import numpy as np

from repro.broadcast.passive_clustering import broadcast_passive_clustering
from repro.graph.generators import random_geometric_network
from repro.workload.robustness import run_robustness_sweep

LOSSES = (0.0, 0.05, 0.1, 0.2, 0.3)


def main() -> None:
    print("delivery ratio vs per-delivery loss (n=50, d=10, 12 trials)\n")
    points = run_robustness_sweep(
        losses=LOSSES, n=50, average_degree=10.0, trials=12, rng=2003
    )
    print(f"{'loss':>6} | {'flooding':>9} {'static':>8} {'dynamic':>8}")
    print("-" * 38)
    for p in points:
        print(f"{p.loss_probability:>6g} | {p.delivery['flooding']:>9.3f} "
              f"{p.delivery['static']:>8.3f} {p.delivery['dynamic']:>8.3f}")
    ideal = points[0]
    print(f"\nforward counts at loss 0: flooding "
          f"{ideal.forwards['flooding']:.0f}, static "
          f"{ideal.forwards['static']:.1f}, dynamic "
          f"{ideal.forwards['dynamic']:.1f}")

    print("\npassive clustering on an *ideal* channel (paper's critique):")
    rng = np.random.default_rng(7)
    for d in (6.0, 18.0):
        ratios, forwards = [], []
        for _ in range(20):
            net = random_geometric_network(50, d, rng=rng)
            pc = broadcast_passive_clustering(net.graph, 0, rng=rng)
            ratios.append(len(pc.result.received) / 50.0)
            forwards.append(pc.result.num_forward_nodes / 50.0)
        print(f"  d={d:>4g}: mean delivery {np.mean(ratios):.2f} "
              f"(min {min(ratios):.2f}), forwards {np.mean(forwards):.0%} "
              f"of nodes")


if __name__ == "__main__":
    main()
