#!/usr/bin/env python3
"""Unicast routing over the cluster backbone, with an SVG figure.

Builds a network and its static backbone, routes a handful of node pairs
over the backbone (ascend to the clusterhead, traverse the cluster graph
through the selected gateways, descend), compares each route against the
true shortest path, and writes an SVG of the topology with the backbone
highlighted (`backbone_routes.svg`).

Run:  python examples/backbone_routing.py
"""

import numpy as np

from repro.backbone.static_backbone import build_static_backbone
from repro.cluster.lowest_id import lowest_id_clustering
from repro.graph.generators import random_geometric_network
from repro.graph.traversal import bfs_distances
from repro.routing.cluster_routing import backbone_route
from repro.routing.stretch import route_stretch_study
from repro.viz.svg import backbone_to_svg


def main() -> None:
    net = random_geometric_network(n=50, average_degree=10.0, rng=2003)
    clustering = lowest_id_clustering(net.graph)
    backbone = build_static_backbone(clustering)
    print(f"network n={net.num_nodes}, backbone "
          f"{backbone.size} nodes ({clustering.num_clusters} clusters)\n")

    rng = np.random.default_rng(7)
    nodes = net.graph.nodes()
    print(f"{'pair':>12} {'route hops':>11} {'optimal':>8} {'stretch':>8}   route")
    for _ in range(8):
        s, t = (int(x) for x in rng.choice(nodes, 2, replace=False))
        route = backbone_route(backbone, s, t)
        optimal = bfs_distances(net.graph, s)[t]
        hops = len(route) - 1
        print(f"{f'{s}->{t}':>12} {hops:>11} {optimal:>8} "
              f"{hops / optimal:>8.2f}   {' '.join(map(str, route))}")

    report = route_stretch_study(n=50, average_degree=10.0, networks=6,
                                 pairs_per_network=20, rng=11)
    print(f"\nover {report.pairs} random pairs: mean stretch "
          f"{report.mean_stretch:.2f}, worst {report.max_stretch:.2f}, "
          f"all relays on the backbone")

    out = "backbone_routes.svg"
    with open(out, "w") as fh:
        fh.write(backbone_to_svg(net, backbone))
    print(f"wrote {out} (heads black, gateways grey, connectors heavy)")


if __name__ == "__main__":
    main()
