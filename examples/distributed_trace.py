#!/usr/bin/env python3
"""Replay the paper's Section 3 walkthrough on the discrete-event simulator.

Runs the *distributed* protocols — HELLO, lowest-ID clustering, the
CH_HOP1/CH_HOP2 coverage exchange, GATEWAY designation, and finally a
dynamic (SD-CDS) broadcast — on the exact 10-node network of the paper's
Figure 3, printing every message on the air.  The trace reproduces the
message contents the paper lists (CH_HOP1(9) = {3*, 4}, CH_HOP2(9) = {1[5]},
GATEWAY(4) = {5, 9}, ...) and the 7-node dynamic forward set.

Run:  python examples/distributed_trace.py
"""

from repro.graph.generators import paper_figure3_graph
from repro.protocols.runner import (
    run_distributed_build,
    run_distributed_sd_broadcast,
)
from repro.sim.messages import ChHop1, ChHop2, Gateway


def main() -> None:
    graph = paper_figure3_graph()
    print("network: the paper's Figure 3 example (nodes 1..10)\n")

    build = run_distributed_build(graph)
    result, sd_stats = run_distributed_sd_broadcast(build, source=1)

    print("full transmission trace:")
    print(build.network.trace.render())

    print("\nper-phase message statistics (the O(n) claim, n = 10):")
    for phase in build.phases:
        print(f"  {phase.name:<10} {phase.messages:>3} messages  "
              f"volume {phase.volume:>3}  rounds {phase.duration:g}")
    print(f"  {'sd-bcast':<10} {sd_stats.messages:>3} messages  "
          f"volume {sd_stats.volume:>3}  rounds {sd_stats.duration:g}")
    print(f"  total construction messages: {build.total_messages}")

    print("\npaper checkpoints:")
    hop1_9 = next(e.message for e in build.network.trace.entries
                  if isinstance(e.message, ChHop1) and e.sender == 9)
    print(f"  CH_HOP1(9) heads = {sorted(hop1_9.heads)}  "
          f"(own head {hop1_9.own_head})          # paper: {{3*, 4}}")
    hop2_9 = next(e.message for e in build.network.trace.entries
                  if isinstance(e.message, ChHop2) and e.sender == 9)
    print(f"  CH_HOP2(9) entries = "
          f"{ {ch: sorted(ws) for ch, ws in hop2_9.entries.items()} }"
          f"        # paper: {{1[5]}}")
    gw4 = next(e.message for e in build.network.trace.entries
               if isinstance(e.message, Gateway) and e.message.origin == 4)
    print(f"  GATEWAY(4) = {sorted(gw4.selected)}                    "
          f"# paper: {{5, 9}}")
    print(f"  static backbone = {sorted(build.backbone.nodes)}  # paper: 1..9")
    print(f"  dynamic forward nodes from source 1 = "
          f"{sorted(result.forward_nodes)}  # paper: 7 nodes")
    assert sorted(result.forward_nodes) == [1, 2, 3, 4, 6, 7, 9]


if __name__ == "__main__":
    main()
