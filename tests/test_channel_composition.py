"""Property tests: the channel seam composes with faults deterministically.

Pins down the two contracts from :mod:`repro.sim.medium`'s docstring:

* **Identity** — an :class:`~repro.channel.model.IdealChannel` without a MAC
  leaves every run bit-identical to the bare medium, including runs that
  already carry losses and a fault schedule;
* **Composition order** — the fault hook's crash gate runs before the
  channel's capture decision, and a duplication fault multiplies copies
  *before* each copy faces the SINR test.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import IdealChannel, SinrChannel, SlottedCsmaMac
from repro.channel.model import ChannelModel
from repro.faults.injector import FaultInjector
from repro.faults.schedule import (
    DuplicationWindow,
    FaultSchedule,
    NodeDown,
    apply_schedule,
    random_schedule,
)
from repro.graph.adjacency import Graph
from repro.protocols.broadcast import DistributedSIBroadcast
from repro.sim.network import SimNetwork

from strategies import geometric_networks


def flood_under_faults(graph, schedule, *, channel, loss, loss_seed,
                       fault_seed, source):
    net = SimNetwork(graph, loss_probability=loss, rng=loss_seed,
                     channel=channel)
    injector = FaultInjector(net, rng=fault_seed)
    apply_schedule(schedule, injector)
    protocol = DistributedSIBroadcast(net, graph.nodes())
    protocol.start(source)
    net.run_phase()
    return protocol.result(), net.trace.entries


class RecordingChannel(ChannelModel):
    """Identity channel that logs every ``accepts`` consultation."""

    def __init__(self):
        super().__init__()
        self.consulted = []

    def accepts(self, sender, receiver, air_time):
        self.consulted.append((sender, receiver))
        return True


class TestIdealIdentity:
    @settings(max_examples=15, deadline=None)
    @given(network=geometric_networks(max_nodes=25),
           loss=st.sampled_from([0.0, 0.2, 0.5]),
           seed=st.integers(0, 2**16))
    def test_identity_holds_under_loss_and_faults(self, network, loss, seed):
        graph = network.graph
        schedule = random_schedule(graph, horizon=5.0, crash_fraction=0.2,
                                   protect=(0,), rng=seed)
        kw = dict(schedule=schedule, loss=loss, loss_seed=seed,
                  fault_seed=seed + 1, source=0)
        bare, bare_trace = flood_under_faults(graph, channel=None, **kw)
        ideal, ideal_trace = flood_under_faults(
            graph, channel=IdealChannel(), **kw
        )
        assert bare_trace == ideal_trace
        assert bare.received == ideal.received
        assert bare.reception_time == ideal.reception_time
        assert bare.transmissions == ideal.transmissions

    @settings(max_examples=10, deadline=None)
    @given(network=geometric_networks(max_nodes=25),
           seed=st.integers(0, 2**16))
    def test_sinr_csma_is_a_pure_function_of_the_seed(self, network, seed):
        def run():
            channel = SinrChannel(network, mac=SlottedCsmaMac(rng=seed))
            net = SimNetwork(network.graph, channel=channel)
            p = DistributedSIBroadcast(net, network.graph.nodes())
            p.start(0)
            net.run_phase()
            return p.result(), net.trace.entries

        (r1, t1), (r2, t2) = run(), run()
        assert t1 == t2
        assert r1.received == r2.received
        assert r1.channel == r2.channel


class TestCompositionOrder:
    def test_crash_gates_before_the_channel(self):
        # Node 1 is down before the packet lands: the channel must never
        # be consulted for it — a packet a dead node cannot hear must not
        # count toward collision statistics.
        graph = Graph(edges=[(0, 1), (0, 2)])
        channel = RecordingChannel()
        net = SimNetwork(graph, channel=channel)
        injector = FaultInjector(net)
        apply_schedule(FaultSchedule([NodeDown(time=0.5, node=1)]), injector)
        protocol = DistributedSIBroadcast(net, graph.nodes())
        protocol.start(0)
        net.run_phase()
        receivers = {r for _, r in channel.consulted}
        assert 1 not in receivers
        assert 2 in receivers

    def test_copies_multiply_before_capture(self):
        # A duplication window doubles deliveries; each copy must face the
        # channel separately (two consultations for the same link).
        graph = Graph(edges=[(0, 1)])
        channel = RecordingChannel()
        net = SimNetwork(graph, channel=channel)
        injector = FaultInjector(net, rng=0)
        apply_schedule(
            FaultSchedule([DuplicationWindow(time=0.0, probability=1.0,
                                             duration=100.0)]),
            injector,
        )
        protocol = DistributedSIBroadcast(net, graph.nodes())
        protocol.start(0)
        net.run_phase()
        assert channel.consulted.count((0, 1)) == 2

    def test_crashed_sender_never_reaches_the_mac(self):
        # can_transmit gates first: a crashed radio draws no backoff and
        # reserves no slot.
        graph = Graph(edges=[(0, 1), (1, 2)])
        mac = SlottedCsmaMac(rng=0)
        net = SimNetwork(graph, channel=IdealChannel(mac=mac))
        injector = FaultInjector(net)
        apply_schedule(FaultSchedule([NodeDown(time=0.0, node=1)]), injector)
        protocol = DistributedSIBroadcast(net, graph.nodes())
        protocol.start(0)
        net.run_phase()
        # Only node 0 transmits (1 is down, 2 never hears the packet).
        assert net.trace.total_messages == 1
        assert mac.drops == 0
