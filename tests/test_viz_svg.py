"""Tests for the SVG exporter."""

import xml.etree.ElementTree as ET

import pytest

from repro.backbone.static_backbone import build_static_backbone
from repro.cluster.lowest_id import lowest_id_clustering
from repro.errors import ConfigurationError
from repro.graph.generators import random_geometric_network
from repro.viz.svg import backbone_to_svg, network_to_svg

SVG_NS = "{http://www.w3.org/2000/svg}"


@pytest.fixture(scope="module")
def net():
    return random_geometric_network(20, 8.0, rng=3)


class TestNetworkSvg:
    def test_well_formed_xml(self, net):
        root = ET.fromstring(network_to_svg(net))
        assert root.tag == f"{SVG_NS}svg"

    def test_one_circle_per_node(self, net):
        root = ET.fromstring(network_to_svg(net, labels=False))
        circles = root.findall(f".//{SVG_NS}circle")
        assert len(circles) == net.num_nodes

    def test_one_line_per_edge(self, net):
        root = ET.fromstring(network_to_svg(net, labels=False))
        lines = root.findall(f".//{SVG_NS}g/{SVG_NS}line")
        assert len(lines) == net.graph.num_edges

    def test_labels_optional(self, net):
        with_labels = network_to_svg(net, labels=True)
        without = network_to_svg(net, labels=False)
        assert with_labels.count("<text") == net.num_nodes
        assert without.count("<text") == 0

    def test_bad_scale_rejected(self, net):
        with pytest.raises(ConfigurationError):
            network_to_svg(net, scale=0)

    def test_bad_highlight_edge_rejected(self, net):
        missing = None
        nodes = net.graph.nodes()
        for u in nodes:
            for v in nodes:
                if u < v and not net.graph.has_edge(u, v):
                    missing = (u, v)
                    break
            if missing:
                break
        assert missing is not None
        with pytest.raises(ConfigurationError):
            network_to_svg(net, highlight_edges=[missing])


class TestBackboneSvg:
    def test_roles_colour_coded(self, net):
        cs = lowest_id_clustering(net.graph)
        bb = build_static_backbone(cs)
        svg = backbone_to_svg(net, bb, labels=False)
        root = ET.fromstring(svg)
        fills = [c.get("fill") for c in root.findall(f".//{SVG_NS}circle")]
        assert fills.count("#1a1a1a") == len(cs.clusterheads)
        assert fills.count("#9aa0a6") == len(bb.gateways)

    def test_connector_edges_highlighted(self, net):
        cs = lowest_id_clustering(net.graph)
        bb = build_static_backbone(cs)
        svg = backbone_to_svg(net, bb, labels=False)
        assert 'stroke="#2f6fab"' in svg
