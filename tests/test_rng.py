"""Tests for repro.rng."""

import numpy as np
import pytest

from repro.rng import DEFAULT_SEED, derive_seed, ensure_rng, spawn


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_seed_is_deterministic(self):
        a = ensure_rng(7).random()
        b = ensure_rng(7).random()
        assert a == b

    def test_different_seeds_differ(self):
        assert ensure_rng(1).random() != ensure_rng(2).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_seed(self):
        assert isinstance(ensure_rng(np.int64(5)), np.random.Generator)

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")  # type: ignore[arg-type]


class TestSpawn:
    def test_spawn_count(self):
        assert len(spawn(0, 5)) == 5

    def test_spawn_zero(self):
        assert spawn(0, 0) == []

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(0, -1)

    def test_children_are_independent_and_reproducible(self):
        kids_a = spawn(42, 3)
        kids_b = spawn(42, 3)
        for a, b in zip(kids_a, kids_b):
            assert a.random() == b.random()
        values = {round(k.random(), 12) for k in spawn(42, 3)}
        assert len(values) == 3  # distinct streams


class TestDeriveSeed:
    def test_range(self):
        s = derive_seed(3)
        assert 0 <= s < 2**63

    def test_deterministic(self):
        assert derive_seed(3) == derive_seed(3)

    def test_default_seed_is_stable(self):
        assert DEFAULT_SEED == 20030422
