"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from repro.cluster.lowest_id import lowest_id_clustering
from repro.graph.adjacency import Graph
from repro.graph.connectivity import is_connected
from repro.graph.generators import paper_figure3_graph, random_geometric_network


@pytest.fixture
def fig3_graph() -> Graph:
    """The paper's Figure 3 example network (ids 1..10)."""
    return paper_figure3_graph()


@pytest.fixture
def fig3_clustering(fig3_graph):
    """Lowest-ID clustering of the Figure 3 network."""
    return lowest_id_clustering(fig3_graph)


@pytest.fixture
def small_net():
    """A reproducible small connected geometric network (n=30, d=6)."""
    return random_geometric_network(30, 6.0, rng=12345)


@pytest.fixture
def dense_net():
    """A reproducible dense connected geometric network (n=50, d=14)."""
    return random_geometric_network(50, 14.0, rng=54321)
