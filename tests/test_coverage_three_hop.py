"""Tests for the 3-hop coverage set."""

import pytest
from hypothesis import given, settings

from repro.cluster.lowest_id import lowest_id_clustering
from repro.coverage.three_hop import three_hop_coverage
from repro.coverage.two_five_hop import two_five_hop_coverage
from repro.errors import CoverageError
from repro.graph.adjacency import Graph
from repro.graph.traversal import bfs_distances

from strategies import connected_graphs


class TestFigure3Example:
    def test_c1_includes_distance3_head4(self, fig3_clustering):
        # Under 3-hop coverage, head 1 must also cover head 4 (distance 3
        # via 5-9 or 7-3... via nodes 7,3? 3 is a head; via (5,9)).
        cov = three_hop_coverage(fig3_clustering, 1)
        assert cov.c2 == frozenset({2, 3})
        assert cov.c3 == frozenset({4})

    def test_c1_witness_pair(self, fig3_clustering):
        cov = three_hop_coverage(fig3_clustering, 1)
        assert (5, 9) in cov.indirect_witnesses[4]

    def test_c4_same_as_two_five(self, fig3_clustering):
        # For head 4 the two definitions coincide on this topology.
        c3h = three_hop_coverage(fig3_clustering, 4)
        c25 = two_five_hop_coverage(fig3_clustering, 4)
        assert c3h.all_targets == c25.all_targets


class TestGuards:
    def test_non_head_rejected(self, fig3_clustering):
        with pytest.raises(CoverageError):
            three_hop_coverage(fig3_clustering, 9)

    def test_isolated_head(self):
        cs = lowest_id_clustering(Graph(nodes=[0]))
        assert three_hop_coverage(cs, 0).size == 0


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(graph=connected_graphs())
    def test_c3_is_exactly_distance_three_heads(self, graph):
        cs = lowest_id_clustering(graph)
        for head in cs.sorted_heads():
            cov = three_hop_coverage(cs, head)
            dist = bfs_distances(graph, head, max_depth=3)
            assert cov.c3 == {
                h for h in cs.clusterheads if dist.get(h) == 3
            }

    @settings(max_examples=50, deadline=None)
    @given(graph=connected_graphs())
    def test_superset_of_two_five_hop(self, graph):
        cs = lowest_id_clustering(graph)
        for head in cs.sorted_heads():
            assert (
                two_five_hop_coverage(cs, head).all_targets
                <= three_hop_coverage(cs, head).all_targets
            )

    @settings(max_examples=50, deadline=None)
    @given(graph=connected_graphs())
    def test_symmetry(self, graph):
        # "When the 3-hop coverage set is applied ... both directed links
        # (v, w) and (w, v) exist."
        cs = lowest_id_clustering(graph)
        covs = {h: three_hop_coverage(cs, h) for h in cs.sorted_heads()}
        for v, cov in covs.items():
            for w in cov.all_targets:
                assert v in covs[w].all_targets

    @settings(max_examples=40, deadline=None)
    @given(graph=connected_graphs())
    def test_witness_paths_are_real(self, graph):
        cs = lowest_id_clustering(graph)
        for head in cs.sorted_heads():
            cov = three_hop_coverage(cs, head)
            for ch, pairs in cov.indirect_witnesses.items():
                assert pairs
                for v, w in pairs:
                    assert graph.has_edge(head, v)
                    assert graph.has_edge(v, w)
                    assert graph.has_edge(w, ch)

    @settings(max_examples=40, deadline=None)
    @given(graph=connected_graphs())
    def test_maintenance_cost_at_least_two_five(self, graph):
        # The paper's motivation for 2.5-hop: cheaper maintenance.
        cs = lowest_id_clustering(graph)
        for head in cs.sorted_heads():
            assert (
                three_hop_coverage(cs, head).maintenance_cost()
                >= two_five_hop_coverage(cs, head).maintenance_cost()
            )
