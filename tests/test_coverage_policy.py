"""Tests for the coverage-policy dispatcher."""

import pytest

from repro.coverage.policy import compute_all_coverage_sets, compute_coverage_set
from repro.types import CoveragePolicy


class TestDispatch:
    def test_two_five_hop(self, fig3_clustering):
        cov = compute_coverage_set(fig3_clustering, 4,
                                   CoveragePolicy.TWO_FIVE_HOP)
        assert cov.policy is CoveragePolicy.TWO_FIVE_HOP
        assert cov.c3 == frozenset({1})

    def test_three_hop(self, fig3_clustering):
        cov = compute_coverage_set(fig3_clustering, 1,
                                   CoveragePolicy.THREE_HOP)
        assert cov.policy is CoveragePolicy.THREE_HOP
        assert cov.c3 == frozenset({4})

    def test_default_policy_is_two_five(self, fig3_clustering):
        assert compute_coverage_set(fig3_clustering, 1).policy is \
            CoveragePolicy.TWO_FIVE_HOP

    def test_bad_policy_rejected(self, fig3_clustering):
        with pytest.raises(ValueError):
            compute_coverage_set(fig3_clustering, 1, "4-hop")  # type: ignore


class TestComputeAll:
    def test_covers_every_head(self, fig3_clustering):
        covs = compute_all_coverage_sets(fig3_clustering)
        assert set(covs) == {1, 2, 3, 4}
        for head, cov in covs.items():
            assert cov.head == head

    def test_deterministic_key_order(self, fig3_clustering):
        covs = compute_all_coverage_sets(fig3_clustering)
        assert list(covs) == [1, 2, 3, 4]
