"""Tests for random-assessment-delay (RAD) broadcasting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broadcast.flooding import blind_flooding
from repro.broadcast.rad import broadcast_rad
from repro.errors import ConfigurationError, NodeNotFoundError
from repro.graph.adjacency import Graph
from repro.graph.generators import star_graph

from strategies import connected_graphs, geometric_networks


class TestRad:
    def test_figure5_triangle(self):
        # The paper's Figure 5: u broadcasts; with the assessment delay at
        # least one of v, w hears the other's relay and resigns — never all
        # three transmit... unless both delays expire simultaneously-first;
        # with u covering both, each of v/w sees only the *other* uncovered.
        g = Graph(edges=[(0, 1), (0, 2), (1, 2)])
        r = broadcast_rad(g, 0, rng=0)
        assert r.result.delivered_to_all(g)
        assert r.result.num_forward_nodes <= 2  # saves >= 1 transmission

    def test_star_leaves_all_resign(self):
        g = star_graph(8)
        r = broadcast_rad(g, 0, rng=1)
        assert r.result.forward_nodes == frozenset({0})
        assert len(r.cancelled) == 8
        assert r.cancellation_ratio == pytest.approx(8 / 9)

    def test_unknown_source(self):
        with pytest.raises(NodeNotFoundError):
            broadcast_rad(star_graph(2), 99)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            broadcast_rad(star_graph(2), 0, max_delay=-1.0)

    def test_zero_delay_close_to_flooding(self):
        # Without assessment time only same-instant knowledge helps.
        g = star_graph(5)
        r = broadcast_rad(g, 0, max_delay=0.0, rng=2)
        assert r.result.delivered_to_all(g)

    def test_deterministic_given_seed(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)])
        a = broadcast_rad(g, 0, rng=7)
        b = broadcast_rad(g, 0, rng=7)
        assert a.result.forward_nodes == b.result.forward_nodes

    @settings(max_examples=40, deadline=None)
    @given(graph=connected_graphs(), seed=st.integers(0, 1000))
    def test_full_delivery_always(self, graph, seed):
        r = broadcast_rad(graph, 0, rng=seed)
        assert r.result.delivered_to_all(graph)

    @settings(max_examples=15, deadline=None)
    @given(net=geometric_networks(), seed=st.integers(0, 1000))
    def test_never_more_forwards_than_flooding(self, net, seed):
        rad = broadcast_rad(net.graph, 0, rng=seed)
        flood = blind_flooding(net.graph, 0)
        assert rad.result.num_forward_nodes <= flood.num_forward_nodes

    @settings(max_examples=15, deadline=None)
    @given(net=geometric_networks(min_nodes=20), seed=st.integers(0, 1000))
    def test_saves_in_dense_networks(self, net, seed):
        # With average degree >= 10 some neighbourhood is always covered.
        from repro.graph.properties import degree_stats

        if degree_stats(net.graph).mean < 10:
            return
        rad = broadcast_rad(net.graph, 0, rng=seed)
        assert rad.result.num_forward_nodes < net.num_nodes
